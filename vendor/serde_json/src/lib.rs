//! Offline stand-in for `serde_json`: pretty-printing and parsing of the
//! shim [`serde::Value`] tree, plus the `to_string_pretty` / `from_str`
//! entry points the workspace uses.

#![forbid(unsafe_code)]

use serde::{Number, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n)?,
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) -> Result<()> {
    use std::fmt::Write as _;
    match n {
        Number::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("non-finite float {x} is not valid JSON")));
            }
            // Rust's float Display is shortest-round-trip, and never uses
            // exponent notation, so the output is always valid JSON.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}"); // keep a ".0" so floats re-parse as floats
            } else {
                let _ = write!(out, "{x}");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            b'n' => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by \uXXXX low surrogate.
                                self.expect_literal("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F64(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Object(vec![
            ("lambda".into(), Value::Num(Number::F64(1e-4))),
            ("next_doc".into(), Value::Num(Number::U64(18_446_744_073_709_551_615))),
            ("name".into(), Value::Str("a \"quoted\"\nline\t\u{1F600}".into())),
            (
                "items".into(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::Num(Number::I64(-3))]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0).unwrap();
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0).unwrap();
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
    }

    #[test]
    fn floats_keep_precision_and_type() {
        let v = Value::Num(Number::F64(2.0));
        let mut s = String::new();
        write_value(&mut s, &v, None, 0).unwrap();
        assert_eq!(s, "2.0", "whole floats keep a decimal point");
        assert_eq!(parse_value("2.0").unwrap(), v);
        assert_eq!(parse_value("0.30000000000000004").unwrap(), Value::Num(Number::F64(0.1 + 0.2)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        let mut s = String::new();
        assert!(write_value(&mut s, &Value::Num(Number::F64(f64::NAN)), None, 0).is_err());
    }
}
