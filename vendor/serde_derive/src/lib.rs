//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim. Implemented directly on `proc_macro` token trees (no syn/quote,
//! since the build environment cannot download crates).
//!
//! Supported shapes — exactly what this workspace derives on:
//! * structs with named fields (serialized as objects in declaration order);
//! * tuple structs (newtypes serialize transparently, wider ones as arrays);
//! * enums with unit variants only (serialized as the variant name string).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        Kind::UnitEnum(variants) => {
            let arms =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect::<String>();
            format!("::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect::<String>();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let inits = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect::<String>();
            format!(
                "let items = v.as_array()?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Kind::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect::<String>();
            format!(
                "match v.as_str()? {{\n\
                     {arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }
    let kind = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::UnitEnum(parse_unit_variants(g.stream(), &name))
        }
        _ => panic!("serde_derive shim: unsupported item shape for {name}"),
    };
    Item { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

/// Advance past a type, stopping after the comma (if any) that ends it.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        i += 1; // ':'
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        variants.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive shim: enum {enum_name} has a non-unit variant \
                 (unexpected {other:?}); only unit variants are supported"
            ),
        }
    }
    variants
}
