//! Offline stand-in for `crossbeam`, exposing the channel subset this
//! workspace uses. Backed by `std::sync::mpsc` (which since Rust 1.67 *is*
//! crossbeam-channel's implementation), with one unified `Sender` type over
//! the bounded/unbounded flavors like the real crate.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a channel (bounded or unbounded).
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails only when all receivers have disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Send a message without blocking. On a full bounded channel the
        /// message comes straight back as [`TrySendError::Full`]; an
        /// unbounded channel is never full, so there only disconnection
        /// fails.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg).map_err(|e| TrySendError::Disconnected(e.0)),
                Flavor::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when all senders have
        /// disconnected and the channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// A channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// A channel holding at most `cap` in-flight messages (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// The message could not be delivered because the channel disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Outcome of a failed [`Sender::try_send`]: the message comes back so
    /// the caller can retry or report it.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers have disconnected.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the failure was a full channel (backpressure), not a
        /// disconnection.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// The channel is empty and all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a failed [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn unbounded_round_trip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_reply_channel_pattern() {
        let (tx, rx) = bounded::<u64>(1);
        std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err(), "sender dropped");
    }

    #[test]
    fn try_send_reports_full_then_recovers() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        let err = tx.try_send(2).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2, "the rejected message comes back");
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn try_send_on_unbounded_never_reports_full() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..1000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.recv(), Ok(0));
    }
}
