//! Offline stand-in for `serde`, exposing the subset this workspace uses:
//! the [`Serialize`] / [`Deserialize`] traits and their derive macros.
//!
//! Unlike real serde's visitor architecture, this shim serializes through an
//! owned JSON-like [`Value`] tree — `vendor/serde_json` then prints/parses
//! that tree. The data model covers what the workspace's types need:
//! numbers, booleans, strings, sequences, objects, options and tuples.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every [`Serialize`] impl produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order follows struct declaration).
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Look up a field of an object, `None` when absent (or when `self` is
    /// not an object). The forgiving twin of [`Value::field`] for optional
    /// wire fields.
    pub fn get<'a>(&'a self, name: &str) -> Option<&'a Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a field of an object, or fail with a descriptive error.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => {
                Err(Error::custom(format!("expected object with field `{name}`, got {other:?}")))
            }
        }
    }

    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Num(Number::F64(x)) => Ok(*x),
            Value::Num(Number::U64(x)) => Ok(*x as f64),
            Value::Num(Number::I64(x)) => Ok(*x as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }

    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::Num(Number::U64(x)) => Ok(*x),
            Value::Num(Number::I64(x)) if *x >= 0 => Ok(*x as u64),
            Value::Num(Number::F64(x))
                if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 =>
            {
                Ok(*x as u64)
            }
            other => Err(Error::custom(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Num(Number::I64(x)) => Ok(*x),
            Value::Num(Number::U64(x)) if *x <= i64::MAX as u64 => Ok(*x as i64),
            Value::Num(Number::F64(x)) if x.fract() == 0.0 => Ok(*x as i64),
            other => Err(Error::custom(format!("expected integer, got {other:?}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` passes through both traits unchanged, so callers that need a
// schema-free view of a JSON document (e.g. a wire front-end inspecting
// optional request fields) can deserialize into `Value` directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(Error::custom(format!(
                        "expected {arity}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
