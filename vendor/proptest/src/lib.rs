//! Offline stand-in for `proptest`, exposing the subset this workspace's
//! property tests use: the `proptest!` macro, range/tuple/vec/select/option
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED=<u64>`), so CI failures reproduce locally. Unlike real
//! proptest there is **no shrinking**: a failure reports the case number
//! and message, not a minimized input.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// The generator handed to [`Strategy::sample`].
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe producing random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` whose length is uniform over `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "proptest::collection::vec: empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirrors `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Some` from the inner strategy three times in four, else `None`
    /// (the real crate's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen_bool(0.75).then(|| self.inner.sample(rng))
        }
    }
}

/// Mirrors `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly choose one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "proptest::sample::select: no options");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Derive the RNG for one test: deterministic per test name, overridable
/// with `PROPTEST_SEED` for replaying a whole run with different cases.
pub fn rng_for_test(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D);
    // FNV-1a over the test name so each property gets distinct cases.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(base ^ hash)
}

/// Marker message distinguishing `prop_assume!` rejections from failures.
pub const ASSUME_REJECTED: &str = "__proptest_shim_assume_rejected__";

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut case: u32 = 0;
                let mut rejected: u32 = 0;
                while case < config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err(msg) if msg == $crate::ASSUME_REJECTED => {
                            // Like real proptest: a rejected case is retried
                            // with fresh inputs, up to a global budget.
                            rejected += 1;
                            ::std::assert!(
                                rejected <= config.cases * 8 + 256,
                                "proptest: too many prop_assume! rejections \
                                 ({} for {} cases)",
                                rejected,
                                config.cases
                            );
                        }
                        ::std::result::Result::Err(msg) => {
                            ::std::panic!(
                                "proptest case {}/{} failed: {}",
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3u32..10,
            v in prop::collection::vec((0u64..5, 0.0f64..1.0), 0..8),
            pick in prop::sample::select(vec![1i32, 3, 5]),
            maybe in prop::option::of(2u32..6),
        ) {
            if let Some(m) = maybe {
                prop_assert!((2..6).contains(&m));
            }
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 8);
            for (a, b) in &v {
                prop_assert!(*a < 5, "a = {}", a);
                prop_assert!((0.0..1.0).contains(b));
            }
            prop_assert!([1, 3, 5].contains(&pick));
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in 0usize..4) {
            prop_assert!(y < 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert_eq!(x, 99u32, "forced failure x={}", x);
            }
        }
        always_fails();
    }
}
