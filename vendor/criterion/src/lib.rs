//! Offline stand-in for `criterion`, exposing the subset this workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `BenchmarkId::from_parameter`, and `Bencher::iter`. Measurement is a
//! plain wall-clock sampling loop reporting mean/median per iteration —
//! enough for relative comparisons, without the real crate's statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state, created by `criterion_main!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_benchmark_id().0, sample_size, f);
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the benchmark closure; owns the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, black-boxing its output so the work isn't optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the iteration count until one sample takes ≥ 1 ms
        // (or the workload is clearly slow enough to time individually).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: bencher closure never called iter)");
        return;
    }
    let per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_secs_f64() * 1e9 / b.iters_per_sample as f64).collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut sorted = per_iter.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<40} time: [mean {} median {}]  ({} samples x {} iters)",
        format_ns(mean),
        format_ns(median),
        per_iter.len(),
        b.iters_per_sample,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// An opaque wrapper preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
