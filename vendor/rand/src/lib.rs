//! Offline stand-in for the `rand` crate, exposing the 0.8-compatible
//! subset this workspace uses: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_range, gen_bool}`](Rng).
//!
//! The build environment has no crates.io access; replacing this shim with
//! the real crate only requires editing the workspace dependency table.

#![forbid(unsafe_code)]

pub mod rngs;

pub use rngs::StdRng;

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value uniform over the type's natural range (`[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`, which must be non-empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their natural range.
pub trait SampleStandard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = <$t as SampleStandard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..4096).map(|_| rng.gen()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
