//! # ctk-stream
//!
//! Document-stream substrate: everything needed to *simulate* the paper's
//! experimental inputs (7M Wikipedia pages and the Connected / Uniform
//! synthetic query workloads) on a laptop, deterministically.
//!
//! * [`alias`] — Walker alias method: O(1) sampling from any discrete
//!   distribution after O(n) setup;
//! * [`zipf`] — Zipfian rank distributions (term frequencies in natural
//!   language are Zipf-distributed; this is the skew that drives all the
//!   pruning behaviour);
//! * [`corpus`] — document generators: a flat Zipf model and a topic-mixture
//!   model with realistic term co-occurrence;
//! * [`queries`] — the paper's two query workloads: **Uniform** (terms drawn
//!   i.i.d. from the vocabulary) and **Connected** (terms co-sampled from a
//!   single document, i.e. words that actually co-occur);
//! * [`clock`] — arrival-time processes (fixed-rate and Poisson);
//! * [`driver`] — glue that turns a generator + clock into a reproducible
//!   stream of [`ctk_common::Document`]s.
//!
//! Everything is seeded; the same configuration always yields the same
//! stream, which the cross-algorithm equivalence tests rely on.

pub mod alias;
pub mod clock;
pub mod corpus;
pub mod driver;
pub mod queries;
pub mod zipf;

pub use alias::AliasTable;
pub use clock::ArrivalClock;
pub use corpus::{CorpusConfig, CorpusModel, DocumentGenerator};
pub use driver::StreamDriver;
pub use queries::{QueryGenerator, QueryWorkload, WorkloadConfig};
pub use zipf::ZipfSampler;
