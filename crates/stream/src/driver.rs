//! The stream driver: generator + clock → a reproducible document stream.

use crate::clock::ArrivalClock;
use crate::corpus::{CorpusConfig, DocumentGenerator};
use ctk_common::{DocId, Document, Timestamp};
use rand::{rngs::StdRng, SeedableRng};

/// Produces the document stream: monotone ids, non-decreasing timestamps.
pub struct StreamDriver {
    generator: DocumentGenerator,
    clock: ArrivalClock,
    clock_rng: StdRng,
    now: Timestamp,
    next_id: u64,
}

impl StreamDriver {
    pub fn new(corpus: CorpusConfig, clock: ArrivalClock) -> Self {
        let clock_seed = corpus.seed.rotate_left(17) ^ 0xDEAD_BEEF;
        StreamDriver {
            generator: DocumentGenerator::new(corpus),
            clock,
            clock_rng: StdRng::seed_from_u64(clock_seed),
            now: 0.0,
            next_id: 0,
        }
    }

    /// Current stream time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of documents emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_id
    }

    /// Produce the next document.
    pub fn next_document(&mut self) -> Document {
        self.now += self.clock.next_gap(&mut self.clock_rng);
        let id = DocId(self.next_id);
        self.next_id += 1;
        self.generator.generate(id, self.now)
    }

    /// Produce a batch of `n` documents.
    pub fn take_batch(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_document()).collect()
    }

    /// Turn the (infinite) stream into an iterator of fixed-size batches —
    /// the shape the batched ingestion paths (`ShardedMonitor::run_pipelined`,
    /// `ContinuousTopK::process_batch`) consume. Bound it with `.take(n)`.
    pub fn batches(self, batch_size: usize) -> Batches {
        assert!(batch_size >= 1);
        Batches { driver: self, batch_size }
    }
}

/// Iterator adapter yielding the stream in fixed-size batches.
pub struct Batches {
    driver: StreamDriver,
    batch_size: usize,
}

impl Batches {
    /// The wrapped driver (stream position, emitted count).
    pub fn driver(&self) -> &StreamDriver {
        &self.driver
    }
}

impl Iterator for Batches {
    type Item = Vec<Document>;

    fn next(&mut self) -> Option<Vec<Document>> {
        Some(self.driver.take_batch(self.batch_size))
    }
}

impl Iterator for StreamDriver {
    type Item = Document;

    fn next(&mut self) -> Option<Document> {
        Some(self.next_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_times_are_monotone() {
        let mut d = StreamDriver::new(CorpusConfig::small_flat(1000, 40, 1), ArrivalClock::unit());
        let docs = d.take_batch(20);
        for w in docs.windows(2) {
            assert!(w[1].id > w[0].id);
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert_eq!(d.emitted(), 20);
        assert_eq!(d.now(), 20.0);
    }

    #[test]
    fn reproducible_across_instances() {
        let mk = || StreamDriver::new(CorpusConfig::small_flat(500, 30, 9), ArrivalClock::unit());
        let a = mk().take_batch(10);
        let b = mk().take_batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn batches_chunk_the_same_stream() {
        let mk = || StreamDriver::new(CorpusConfig::small_flat(500, 30, 7), ArrivalClock::unit());
        let flat = mk().take_batch(24);
        let chunked: Vec<Document> = mk().batches(8).take(3).flatten().collect();
        assert_eq!(flat, chunked, "batching must not perturb the stream");
    }

    #[test]
    fn poisson_clock_advances_time() {
        let mut d = StreamDriver::new(
            CorpusConfig::small_flat(500, 30, 9),
            ArrivalClock::Poisson { rate: 2.0 },
        );
        let docs = d.take_batch(50);
        assert!(docs.last().unwrap().arrival > 0.0);
        let gaps_equal = docs.windows(2).all(|w| (w[1].arrival - w[0].arrival - 0.5).abs() < 1e-12);
        assert!(!gaps_equal, "poisson gaps must vary");
    }
}
