//! Arrival-time processes for the stream.
//!
//! The scoring model only needs non-decreasing timestamps; the clock decides
//! how densely events pack, which (together with λ) controls how quickly old
//! results decay relative to the event rate.

use rand::Rng;

/// Inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalClock {
    /// Fixed spacing: event `i` arrives at `i * dt`.
    Fixed { dt: f64 },
    /// Poisson arrivals with the given mean rate (events per time unit).
    Poisson { rate: f64 },
}

impl ArrivalClock {
    /// One logical event per time unit.
    pub fn unit() -> Self {
        ArrivalClock::Fixed { dt: 1.0 }
    }

    /// Sample the next inter-arrival gap.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ArrivalClock::Fixed { dt } => {
                assert!(dt >= 0.0);
                dt
            }
            ArrivalClock::Poisson { rate } => {
                assert!(rate > 0.0);
                // Inverse-CDF exponential; clamp u away from 0.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / rate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fixed_gaps_are_constant() {
        let c = ArrivalClock::Fixed { dt: 0.25 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(c.next_gap(&mut rng), 0.25);
        }
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let c = ArrivalClock::Poisson { rate: 4.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| c.next_gap(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gaps_are_nonnegative() {
        let c = ArrivalClock::Poisson { rate: 0.5 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(c.next_gap(&mut rng) >= 0.0);
        }
    }
}
