//! Zipfian term-rank sampling.
//!
//! Natural-language term frequencies follow a Zipf law: the r-th most common
//! term has probability ∝ 1/r^s (s ≈ 1 for English). The skew matters
//! enormously for this system — popular terms produce long postings lists
//! and high document weights, which is exactly where ID-ordering's jumps pay
//! off. Built on the alias table for O(1) draws.

use crate::alias::AliasTable;
use rand::Rng;

/// O(1) sampler of ranks `0..n` with `P(r) ∝ 1/(r+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    table: AliasTable,
    exponent: f64,
}

impl ZipfSampler {
    /// `n >= 1` outcomes, exponent `s >= 0` (s = 0 is uniform).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1);
        assert!(exponent >= 0.0 && exponent.is_finite());
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
        ZipfSampler { table: AliasTable::new(&weights), exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draw a rank in `0..n` (0 = most frequent).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rank_zero_dominates() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut zero = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // H_1000 ≈ 7.49, so P(0) ≈ 0.133.
        let got = zero as f64 / n as f64;
        assert!((got - 0.133).abs() < 0.02, "{got}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.01, "{p}");
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(13);
        let skew = |s: f64, rng: &mut StdRng| {
            let z = ZipfSampler::new(100, s);
            let mut zero = 0;
            for _ in 0..20_000 {
                if z.sample(rng) == 0 {
                    zero += 1;
                }
            }
            zero
        };
        let lo = skew(0.5, &mut rng);
        let hi = skew(1.5, &mut rng);
        assert!(hi > lo * 2, "{hi} vs {lo}");
    }

    #[test]
    fn all_ranks_reachable() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(14);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
