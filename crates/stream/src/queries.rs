//! The paper's two synthetic query workloads (§IV).
//!
//! * **Uniform** — query terms drawn i.i.d. uniformly from the vocabulary.
//!   Most queries then pair rare terms that barely co-occur with real
//!   documents, so scores are low and thresholds stay loose.
//! * **Connected** — query terms co-sampled from a *single generated
//!   document*, i.e. words with realistic co-occurrence. Queries match the
//!   stream often, thresholds tighten, and far more queries are affected per
//!   event — the paper's Fig. 1(b) shows uniformly higher response times.

use crate::corpus::{CorpusConfig, DocumentGenerator};
use ctk_common::{QuerySpec, TermId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Which workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryWorkload {
    Uniform,
    Connected,
}

impl QueryWorkload {
    pub fn name(self) -> &'static str {
        match self {
            QueryWorkload::Uniform => "Uniform",
            QueryWorkload::Connected => "Connected",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub workload: QueryWorkload,
    /// Inclusive range of distinct terms per query (papers use 2–5ish).
    pub terms_min: usize,
    pub terms_max: usize,
    /// Result size requested by every query.
    pub k: usize,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            workload: QueryWorkload::Uniform,
            terms_min: 2,
            terms_max: 5,
            k: 10,
            seed: 0xBEEF,
        }
    }
}

/// Deterministic generator of [`QuerySpec`]s over a given corpus.
pub struct QueryGenerator {
    cfg: WorkloadConfig,
    vocab_size: usize,
    /// Private document generator used by the Connected workload to find
    /// co-occurring terms (seeded independently of the stream's generator).
    seed_docs: DocumentGenerator,
    rng: StdRng,
}

impl QueryGenerator {
    /// `corpus` must be the same configuration the stream uses, so that
    /// Connected queries co-occur with real stream documents.
    pub fn new(cfg: WorkloadConfig, corpus: &CorpusConfig) -> Self {
        assert!(cfg.terms_min >= 1 && cfg.terms_min <= cfg.terms_max);
        assert!(cfg.k >= 1);
        let mut doc_cfg = corpus.clone();
        // Decorrelate from the stream itself but keep the same distribution.
        doc_cfg.seed = corpus.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(cfg.seed);
        QueryGenerator {
            vocab_size: corpus.vocab_size,
            seed_docs: DocumentGenerator::new(doc_cfg),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generate one query spec.
    pub fn generate(&mut self) -> QuerySpec {
        let n = self.rng.gen_range(self.cfg.terms_min..=self.cfg.terms_max);
        let mut pairs: Vec<(TermId, f32)> = Vec::with_capacity(n);
        match self.cfg.workload {
            QueryWorkload::Uniform => {
                while pairs.len() < n {
                    let t = TermId(self.rng.gen_range(0..self.vocab_size) as u32);
                    if !pairs.iter().any(|&(x, _)| x == t) {
                        pairs.push((t, self.rng.gen_range(0.5..1.0)));
                    }
                }
            }
            QueryWorkload::Connected => {
                // Terms of one synthetic document, weighted by their doc
                // weight so hot co-occurring words dominate.
                let doc_terms = self.seed_docs.sample_term_pairs();
                let total: f32 = doc_terms.iter().map(|&(_, w)| w).sum();
                while pairs.len() < n.min(doc_terms.len()) {
                    // Roulette selection by weight.
                    let mut pick = self.rng.gen_range(0.0..total);
                    let mut chosen = doc_terms.len() - 1;
                    for (i, &(_, w)) in doc_terms.iter().enumerate() {
                        if pick < w {
                            chosen = i;
                            break;
                        }
                        pick -= w;
                    }
                    let (t, _) = doc_terms[chosen];
                    if !pairs.iter().any(|&(x, _)| x == t) {
                        pairs.push((t, self.rng.gen_range(0.5..1.0)));
                    }
                }
            }
        }
        QuerySpec::new(pairs, self.cfg.k).expect("generator produces valid specs")
    }

    /// Generate a batch.
    pub fn generate_batch(&mut self, count: usize) -> Vec<QuerySpec> {
        (0..count).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, Document};

    fn corpus() -> CorpusConfig {
        CorpusConfig::default()
    }

    #[test]
    fn specs_are_valid_and_sized() {
        for wl in [QueryWorkload::Uniform, QueryWorkload::Connected] {
            let cfg = WorkloadConfig { workload: wl, terms_min: 2, terms_max: 5, k: 7, seed: 1 };
            let mut g = QueryGenerator::new(cfg, &corpus());
            for _ in 0..50 {
                let q = g.generate();
                assert!(q.vector.len() >= 2 && q.vector.len() <= 5);
                assert_eq!(q.k, 7);
                assert!(q.vector.is_normalized());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = WorkloadConfig { seed: 42, ..WorkloadConfig::default() };
        let mut a = QueryGenerator::new(cfg.clone(), &corpus());
        let mut b = QueryGenerator::new(cfg, &corpus());
        for _ in 0..10 {
            assert_eq!(a.generate(), b.generate());
        }
    }

    #[test]
    fn connected_queries_match_stream_better() {
        // The defining property of the two workloads: Connected queries
        // score higher against the corpus than Uniform ones.
        let corpus_cfg = corpus();
        let mut stream = DocumentGenerator::new(corpus_cfg.clone());
        let docs: Vec<Document> = (0..30).map(|i| stream.generate(DocId(i), 0.0)).collect();

        let avg_best = |wl: QueryWorkload| {
            let cfg = WorkloadConfig { workload: wl, seed: 5, ..WorkloadConfig::default() };
            let mut g = QueryGenerator::new(cfg, &corpus_cfg);
            let mut total = 0.0;
            for _ in 0..60 {
                let q = g.generate();
                let best = docs.iter().map(|d| q.vector.dot(&d.vector)).fold(0.0f64, f64::max);
                total += best;
            }
            total / 60.0
        };

        let uni = avg_best(QueryWorkload::Uniform);
        let con = avg_best(QueryWorkload::Connected);
        assert!(con > uni * 1.5, "connected {con} should beat uniform {uni}");
    }
}
