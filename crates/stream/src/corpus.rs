//! Synthetic document generators.
//!
//! Substitute for the paper's 7M-page Wikipedia stream (DESIGN.md §3). The
//! algorithms are sensitive to three corpus properties, all controlled here:
//!
//! 1. **term-frequency skew** — tokens are drawn from a Zipf distribution;
//! 2. **document sparsity** — token counts per document are sampled around a
//!    configurable mean;
//! 3. **term co-occurrence** — the [`CorpusModel::TopicMixture`] model draws
//!    most of a document's tokens from one of `num_topics` topical
//!    sub-vocabularies, so words cluster the way they do in real text (this
//!    is what makes the *Connected* query workload meaningfully different
//!    from *Uniform*).
//!
//! Term weights use log-scaled term frequency (`1 + ln(tf)`), L2-normalized
//! by [`ctk_common::Document::new`], i.e. standard cosine retrieval weights.

use crate::zipf::ZipfSampler;
use ctk_common::{DocId, Document, FxHashMap, TermId, Timestamp};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Which generative model produces documents.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusModel {
    /// Every token i.i.d. Zipf over the whole vocabulary.
    FlatZipf,
    /// Wikipedia-like: each document mixes one topic's sub-vocabulary with
    /// global background terms.
    TopicMixture {
        /// Number of topics.
        num_topics: usize,
        /// Distinct terms per topic.
        terms_per_topic: usize,
        /// Fraction of tokens drawn from the topic (rest are background).
        in_topic_fraction: f64,
    },
}

/// Full corpus configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Dictionary size.
    pub vocab_size: usize,
    /// Mean number of tokens per document.
    pub avg_tokens: usize,
    /// Token counts are uniform in `[avg*(1-jitter), avg*(1+jitter)]`.
    pub length_jitter: f64,
    /// Zipf exponent of the term distribution (≈1 for natural language).
    pub zipf_exponent: f64,
    pub model: CorpusModel,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            // Wikipedia-like dictionary: the paper's 7M-page corpus has
            // over a million distinct terms; sparse lists are what make
            // identifier-ordered skipping effective.
            vocab_size: 400_000,
            avg_tokens: 300,
            length_jitter: 0.5,
            zipf_exponent: 1.0,
            model: CorpusModel::TopicMixture {
                num_topics: 500,
                terms_per_topic: 600,
                in_topic_fraction: 0.7,
            },
            seed: 0xC0FFEE,
        }
    }
}

impl CorpusConfig {
    /// A small flat-Zipf corpus, handy in unit tests.
    pub fn small_flat(vocab_size: usize, avg_tokens: usize, seed: u64) -> Self {
        CorpusConfig {
            vocab_size,
            avg_tokens,
            length_jitter: 0.3,
            zipf_exponent: 1.0,
            model: CorpusModel::FlatZipf,
            seed,
        }
    }
}

struct Topic {
    terms: Vec<u32>,
    sampler: ZipfSampler,
}

/// Deterministic generator of stream documents.
pub struct DocumentGenerator {
    cfg: CorpusConfig,
    global: ZipfSampler,
    topics: Vec<Topic>,
    topic_pick: Option<ZipfSampler>,
    rng: StdRng,
    // Reused token-count buffer.
    counts: FxHashMap<u32, u32>,
}

impl DocumentGenerator {
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.vocab_size >= 2);
        assert!(cfg.avg_tokens >= 1);
        assert!((0.0..1.0).contains(&cfg.length_jitter));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let global = ZipfSampler::new(cfg.vocab_size, cfg.zipf_exponent);

        let (topics, topic_pick) = match cfg.model {
            CorpusModel::FlatZipf => (Vec::new(), None),
            CorpusModel::TopicMixture { num_topics, terms_per_topic, in_topic_fraction } => {
                assert!(num_topics >= 1);
                assert!((0.0..=1.0).contains(&in_topic_fraction));
                let mut topics = Vec::with_capacity(num_topics);
                for _ in 0..num_topics {
                    // A topic's vocabulary: distinct terms drawn from the
                    // global Zipf, so topics share hot words but own their
                    // tails — which is where co-occurrence comes from.
                    let mut seen = FxHashMap::default();
                    let mut terms = Vec::with_capacity(terms_per_topic);
                    while terms.len() < terms_per_topic.min(cfg.vocab_size) {
                        let t = global.sample(&mut rng) as u32;
                        if seen.insert(t, ()).is_none() {
                            terms.push(t);
                        }
                    }
                    // Within a topic, earlier-drawn (globally hotter) terms
                    // stay hotter.
                    let sampler = ZipfSampler::new(terms.len(), 0.8);
                    topics.push(Topic { terms, sampler });
                }
                // Topic popularity is itself skewed.
                (topics, Some(ZipfSampler::new(num_topics, 0.7)))
            }
        };

        DocumentGenerator { cfg, global, topics, topic_pick, rng, counts: FxHashMap::default() }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Sample the raw `(term, log-tf weight)` pairs of one document.
    /// Exposed so the *Connected* query workload can co-sample terms.
    pub fn sample_term_pairs(&mut self) -> Vec<(TermId, f32)> {
        let avg = self.cfg.avg_tokens as f64;
        let j = self.cfg.length_jitter;
        let lo = ((avg * (1.0 - j)) as usize).max(1);
        let hi = ((avg * (1.0 + j)) as usize).max(lo + 1);
        let tokens = self.rng.gen_range(lo..hi);

        self.counts.clear();
        match (&self.topic_pick, self.topics.is_empty()) {
            (Some(pick), false) => {
                let CorpusModel::TopicMixture { in_topic_fraction, .. } = self.cfg.model else {
                    unreachable!()
                };
                let topic = &self.topics[pick.sample(&mut self.rng)];
                for _ in 0..tokens {
                    let t = if self.rng.gen::<f64>() < in_topic_fraction {
                        topic.terms[topic.sampler.sample(&mut self.rng)]
                    } else {
                        self.global.sample(&mut self.rng) as u32
                    };
                    *self.counts.entry(t).or_insert(0) += 1;
                }
            }
            _ => {
                for _ in 0..tokens {
                    let t = self.global.sample(&mut self.rng) as u32;
                    *self.counts.entry(t).or_insert(0) += 1;
                }
            }
        }

        self.counts.iter().map(|(&t, &tf)| (TermId(t), 1.0 + (tf as f32).ln())).collect()
    }

    /// Generate one full (normalized) document.
    pub fn generate(&mut self, id: DocId, arrival: Timestamp) -> Document {
        let pairs = self.sample_term_pairs();
        Document::new(id, pairs, arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DocumentGenerator::new(CorpusConfig::small_flat(1000, 50, 7));
        let mut b = DocumentGenerator::new(CorpusConfig::small_flat(1000, 50, 7));
        for i in 0..5 {
            assert_eq!(a.generate(DocId(i), i as f64), b.generate(DocId(i), i as f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DocumentGenerator::new(CorpusConfig::small_flat(1000, 50, 7));
        let mut b = DocumentGenerator::new(CorpusConfig::small_flat(1000, 50, 8));
        assert_ne!(a.generate(DocId(0), 0.0), b.generate(DocId(0), 0.0));
    }

    #[test]
    fn documents_are_normalized_and_sized() {
        let mut g = DocumentGenerator::new(CorpusConfig::small_flat(5000, 100, 1));
        for i in 0..20 {
            let d = g.generate(DocId(i), 0.0);
            assert!(d.vector.is_normalized());
            // Distinct terms <= tokens; lower bound loose because hot Zipf
            // terms repeat.
            assert!(d.vector.len() >= 10, "suspiciously few terms: {}", d.vector.len());
            assert!(d.vector.len() <= 131);
        }
    }

    #[test]
    fn zipf_skew_shows_in_term_popularity() {
        let mut g = DocumentGenerator::new(CorpusConfig::small_flat(2000, 200, 2));
        let mut hot = 0usize;
        let mut total = 0usize;
        for i in 0..50 {
            let d = g.generate(DocId(i), 0.0);
            total += 1;
            if d.vector.weight(TermId(0)) > 0.0 {
                hot += 1;
            }
        }
        // Term 0 (rank 0) should appear in almost every document.
        assert!(hot as f64 / total as f64 > 0.9, "{hot}/{total}");
    }

    #[test]
    fn topic_mixture_produces_co_occurrence() {
        let cfg = CorpusConfig {
            vocab_size: 10_000,
            avg_tokens: 120,
            length_jitter: 0.2,
            zipf_exponent: 1.0,
            model: CorpusModel::TopicMixture {
                num_topics: 20,
                terms_per_topic: 100,
                in_topic_fraction: 0.9,
            },
            seed: 3,
        };
        let mut g = DocumentGenerator::new(cfg);
        // Co-occurrence proxy: in a topical corpus, pairwise similarities
        // are *bimodal* — same-topic pairs share whole sub-vocabularies,
        // cross-topic pairs share only background terms. A flat Zipf corpus
        // has a uniform similarity level. Compare the spread (std dev).
        let docs: Vec<Document> = (0..40).map(|i| g.generate(DocId(i), 0.0)).collect();
        let mut flat_g = DocumentGenerator::new(CorpusConfig::small_flat(10_000, 120, 3));
        let flat: Vec<Document> = (0..40).map(|i| flat_g.generate(DocId(i), 0.0)).collect();
        let cos_spread = |ds: &[Document]| {
            let mut sims = Vec::new();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    sims.push(ds[i].vector.dot(&ds[j].vector));
                }
            }
            let mean = sims.iter().sum::<f64>() / sims.len() as f64;
            let var = sims.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sims.len() as f64;
            var.sqrt()
        };
        let (topical, flat) = (cos_spread(&docs), cos_spread(&flat));
        assert!(topical > flat * 2.0, "topical spread {topical} vs flat spread {flat}");
    }
}
