//! Walker's alias method: O(1) sampling from a discrete distribution.
//!
//! The corpus generator samples hundreds of terms per document from a
//! vocabulary-sized distribution; inverse-CDF sampling would cost O(log V)
//! per draw and the naive method O(V). The alias table costs O(V) once and
//! O(1) per draw.

use rand::Rng;

/// Precomputed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own outcome (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alternative outcome of each column.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized). At least
    /// one weight must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Split columns into under- and over-full, then pair them.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Column s keeps prob[s]; the remainder of its unit column is
            // filled by outcome l.
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: both stacks drain to exactly-1 columns.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_weights_sample_everything() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[t.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "outcome {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[7.0]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn large_skewed_table_is_consistent() {
        let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / i as f64).collect();
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(5);
        let mut top_count = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if t.sample(&mut rng) == 0 {
                top_count += 1;
            }
        }
        let h: f64 = weights.iter().sum();
        let expect = 1.0 / h;
        let got = top_count as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "{got} vs {expect}");
    }
}
