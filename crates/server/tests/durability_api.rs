//! In-process durability API tests: the journal knobs on `ServerBuilder`,
//! the `/readyz` split, journal fields in `/stats`, and — the guard this
//! file exists for — rejection of checkpoints and snapshots written by a
//! *newer* build than this one, with errors a human can act on.

use continuous_topk::EngineKind;
use ctk_server::{FsyncPolicy, HttpClient, ServerBuilder};
use serde::Value;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ctk-durapi-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn builder() -> ServerBuilder {
    ServerBuilder::new(EngineKind::Mrio).lambda(1e-3)
}

fn ok(outcome: std::io::Result<(u16, String)>, expect: u16) -> String {
    let (status, body) = outcome.expect("request io");
    assert_eq!(status, expect, "unexpected status, body: {body}");
    body
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).expect("valid JSON body")
}

fn field_u64(value: &Value, name: &str) -> u64 {
    value.get(name).and_then(|v| v.as_u64().ok()).unwrap_or_else(|| panic!("no {name}"))
}

#[test]
fn journal_state_survives_a_graceful_restart() {
    let dir = temp_dir("graceful");
    let server = builder()
        .journal_dir(&dir)
        .fsync(FsyncPolicy::Never) // graceful shutdown syncs lazily-fsynced journals
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    assert!(!server.is_warming());
    ok(client.get("/readyz"), 200);

    let qid = field_u64(
        &parse(&ok(client.post("/queries", r#"{"terms": [[1, 1.0]], "k": 3}"#), 200)),
        "query",
    );
    ok(client.post("/publish", r#"{"terms": [[1, 0.8]], "arrival": 1.0}"#), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert!(field_u64(&stats, "journal_bytes") > 0, "appends must show in /stats");
    assert_eq!(field_u64(&stats, "last_checkpoint"), 0, "no checkpoint yet");
    server.shutdown();

    let server = builder().journal_dir(&dir).bind("127.0.0.1:0").unwrap();
    // Poll readiness rather than assuming: replay runs on the ingest thread.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut client = loop {
        assert!(std::time::Instant::now() < deadline, "server never became ready");
        let mut client =
            HttpClient::connect_with_retry(server.addr(), std::time::Duration::from_secs(5))
                .unwrap();
        if let Ok((200, _)) = client.get("/readyz") {
            break client;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "replayed_records"), 2, "register + publish");
    assert!(field_u64(&stats, "last_checkpoint") > 0, "recovery re-checkpoints");
    let results = parse(&ok(client.get(&format!("/queries/{qid}/results")), 200));
    let results = results.get("results").unwrap();
    assert!(matches!(results, Value::Array(items) if !items.is_empty()));
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_checkpoints_and_restore_reanchors_the_journal() {
    let dir = temp_dir("checkpointing");
    let server = builder().journal_dir(&dir).bind("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    ok(client.post("/queries", r#"{"terms": [[1, 1.0]], "k": 3}"#), 200);
    ok(client.post("/publish", r#"{"terms": [[1, 0.8]], "arrival": 1.0}"#), 200);

    // `POST /snapshot` is the checkpoint: journal truncates, watermark set.
    let snapshot_body = ok(client.post("/snapshot", ""), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "journal_bytes"), 0);
    assert_eq!(field_u64(&stats, "last_checkpoint"), 2);
    assert!(dir.join("checkpoint.json").exists());

    // `POST /restore` replaces the monitor wholesale; with a journal active
    // the restored state is checkpointed so it is durable immediately.
    ok(client.post("/publish", r#"{"terms": [[1, 0.4]], "arrival": 2.0}"#), 200);
    ok(client.post("/restore", &snapshot_body), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "journal_bytes"), 0, "restore checkpoints");
    assert_eq!(field_u64(&stats, "queries"), 1);
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn readyz_reports_draining_as_not_ready() {
    let server = builder().bind("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    ok(client.get("/readyz"), 200);
    ok(client.post("/admin/drain", ""), 202);
    // Drained: alive (liveness 200) but no longer ready (readiness 503) —
    // the split that lets an orchestrator stop routing without restarting.
    let ready = parse(&ok(client.get("/readyz"), 503));
    assert!(!ready.get("ready").unwrap().as_bool().unwrap());
    assert!(ready.get("draining").unwrap().as_bool().unwrap());
    ok(client.get("/healthz"), 200);
    server.shutdown();
}

#[test]
fn restore_rejects_snapshots_from_a_newer_build() {
    let server = builder().bind("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let snapshot = ok(client.post("/snapshot", ""), 200);
    let future = snapshot.replacen(
        &format!("\"version\": {}", ctk_core::SNAPSHOT_VERSION),
        "\"version\": 99",
        1,
    );
    assert_ne!(snapshot, future, "fixture must actually bump the version");
    let body = ok(client.post("/restore", &future), 400);
    assert!(
        body.contains("unsupported snapshot version 99"),
        "the error must name the offending version: {body}"
    );
    server.shutdown();
}

#[test]
fn bind_rejects_a_checkpoint_from_a_newer_build() {
    // First, a valid checkpoint on disk...
    let dir = temp_dir("future");
    let server = builder().journal_dir(&dir).bind("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    ok(client.post("/queries", r#"{"terms": [[1, 1.0]], "k": 3}"#), 200);
    ok(client.post("/snapshot", ""), 200);
    server.shutdown();

    // ...then pretend a newer build wrote it. (Checkpoints are compact
    // JSON, unlike the pretty `/snapshot` body above.)
    let path = dir.join("checkpoint.json");
    let checkpoint = fs::read_to_string(&path).unwrap();
    let future = checkpoint.replacen(
        &format!("\"version\":{}", ctk_core::SNAPSHOT_VERSION),
        "\"version\":99",
        1,
    );
    assert_ne!(checkpoint, future);
    fs::write(&path, future).unwrap();

    // Startup replay must refuse loudly at bind — not serve an empty
    // monitor over data it cannot read.
    let err = match builder().journal_dir(&dir).bind("127.0.0.1:0") {
        Ok(server) => {
            server.shutdown();
            panic!("bind must refuse a checkpoint from a newer build");
        }
        Err(err) => err,
    };
    assert!(
        err.to_string().contains("unsupported snapshot version 99"),
        "bind error must explain the version mismatch: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
