//! End-to-end crash recovery: SIGKILL a live `ctk-serve` daemon mid-burst,
//! restart it on the same journal directory, and assert that every acked
//! publish survived — with result sets bit-identical to an uncrashed oracle
//! server fed the same commands.
//!
//! These tests drive the real binary (`CARGO_BIN_EXE_ctk-serve`) over real
//! sockets, because the property under test is exactly the one a unit test
//! can't fake: the ack left the process before the process died.

use continuous_topk::EngineKind;
use ctk_server::{HttpClient, ServerBuilder};
use serde::Value;
use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const LAMBDA: f64 = 1e-3; // the binary's default; the oracle must match

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ctk-crash-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A spawned `ctk-serve` process. Killed (hard) on drop so a failing test
/// never leaks a daemon.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(journal_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ctk-serve"))
            .args(["--port", "0", "--fsync", "always", "--journal-dir"])
            .arg(journal_dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn ctk-serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read ctk-serve banner");
        let addr = line
            .trim()
            .rsplit("http://")
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("no address in ctk-serve banner {line:?}"));
        Daemon { child, addr }
    }

    /// SIGKILL — no drain, no journal sync, the crash under test.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// Reconnect until `GET /readyz` answers 200 — the restart path a real
/// client follows: refused connections first, `503 warming` during replay,
/// ready last.
fn await_ready(addr: SocketAddr) -> HttpClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "daemon at {addr} never became ready");
        let Ok(mut client) = HttpClient::connect_with_retry(addr, Duration::from_secs(5)) else {
            continue;
        };
        match client.get("/readyz") {
            Ok((200, _)) => return client,
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn ok(outcome: std::io::Result<(u16, String)>, expect: u16) -> String {
    let (status, body) = outcome.expect("request io");
    assert_eq!(status, expect, "unexpected status, body: {body}");
    body
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).expect("valid JSON body")
}

fn field_u64(value: &Value, name: &str) -> u64 {
    value.get(name).and_then(|v| v.as_u64().ok()).unwrap_or_else(|| panic!("no {name}"))
}

/// The deterministic burst: `n` single-document publish bodies with fixed
/// weights and arrivals, so the oracle can replay any acked prefix exactly.
fn publish_bodies(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let term = 1 + (i % 3);
            let weight = 0.2 + (i % 7) as f64 * 0.1;
            let arrival = i as f64 * 0.5;
            format!(r#"{{"terms": [[{term}, {weight}]], "arrival": {arrival}}}"#)
        })
        .collect()
}

/// Every `"qid"` in a snapshot JSON tree — the live query ids, whatever id
/// space a restore mapped them into.
fn collect_qids(value: &Value, out: &mut Vec<u64>) {
    match value {
        Value::Object(entries) => {
            for (key, val) in entries {
                if key == "qid" {
                    if let Ok(qid) = val.as_u64() {
                        out.push(qid);
                    }
                }
                collect_qids(val, out);
            }
        }
        Value::Array(items) => items.iter().for_each(|v| collect_qids(v, out)),
        _ => {}
    }
}

/// The `"results"` arrays of every query on a server, re-serialized and
/// sorted — comparable across servers even when a restore remapped ids.
fn result_sets(client: &mut HttpClient, qids: &[u64]) -> Vec<String> {
    let mut sets: Vec<String> = qids
        .iter()
        .map(|qid| {
            let body = ok(client.get(&format!("/queries/{qid}/results")), 200);
            let results = parse(&body).get("results").expect("results array").clone();
            serde_json::to_string(&results).expect("results serialize")
        })
        .collect();
    sets.sort();
    sets
}

/// An uncrashed in-process oracle fed the same registers and the first
/// `published` bodies of the burst; returns its sorted result sets.
fn oracle_result_sets(bodies: &[String], published: usize) -> Vec<String> {
    let server = ServerBuilder::new(EngineKind::Mrio)
        .lambda(LAMBDA)
        .bind("127.0.0.1:0")
        .expect("bind oracle");
    let mut client = HttpClient::connect(server.addr()).expect("connect oracle");
    let qa = field_u64(&parse(&ok(client.post("/queries", REGISTER_A), 200)), "query");
    let qb = field_u64(&parse(&ok(client.post("/queries", REGISTER_B), 200)), "query");
    for body in &bodies[..published] {
        ok(client.post("/publish", body), 200);
    }
    let sets = result_sets(&mut client, &[qa, qb]);
    server.shutdown();
    sets
}

const REGISTER_A: &str = r#"{"terms": [[1, 1.0], [2, 0.5]], "k": 4}"#;
const REGISTER_B: &str = r#"{"terms": [[2, 1.0], [3, 0.5]], "k": 4}"#;

/// Append garbage to the newest journal segment, simulating the torn final
/// record a mid-append crash leaves behind.
fn tear_newest_segment(dir: &Path) {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".log"))
        .collect();
    segments.sort();
    let newest = segments.pop().expect("a journal segment");
    let mut bytes = fs::read(&newest).expect("read segment");
    bytes.extend_from_slice(&[0x9e, 0x01, 0x00, 0x00, 0x07, 0x2a, 0x55]);
    fs::write(&newest, &bytes).expect("tear segment");
}

#[test]
fn sigkill_mid_burst_loses_no_acked_publish() {
    let dir = temp_dir("burst");
    let bodies = publish_bodies(26);
    let acked = 25;

    let mut daemon = Daemon::spawn(&dir);
    let mut client = await_ready(daemon.addr);
    ok(client.post("/queries", REGISTER_A), 200);
    ok(client.post("/queries", REGISTER_B), 200);
    for body in &bodies[..acked] {
        ok(client.post("/publish", body), 200);
    }

    // One more publish races the SIGKILL from its own connection: it may be
    // acked, torn mid-append, or never sent — all three must recover
    // cleanly. (`fsync=always` means the 25 acked ones are non-negotiable.)
    let racer = {
        let addr = daemon.addr;
        let body = bodies[acked].clone();
        std::thread::spawn(move || {
            if let Ok(mut c) = HttpClient::connect(addr) {
                let _ = c.post("/publish", &body);
            }
        })
    };
    std::thread::sleep(Duration::from_millis(2));
    daemon.kill9();
    let _ = racer.join();
    // However the race landed, pile a torn record onto the newest segment:
    // restart must truncate it, not refuse to start.
    tear_newest_segment(&dir);

    let daemon = Daemon::spawn(&dir);
    let mut client = await_ready(daemon.addr);

    // Health splits from readiness: alive the whole time, ready only now.
    let health = parse(&ok(client.get("/healthz"), 200));
    assert!(health.get("ok").unwrap().as_bool().unwrap());

    let stats = parse(&ok(client.get("/stats"), 200));
    let replayed = field_u64(&stats, "replayed_records");
    assert!(replayed >= 2 + acked as u64, "replayed only {replayed} records");
    assert!(field_u64(&stats, "last_checkpoint") > 0, "recovery must re-checkpoint");
    assert_eq!(field_u64(&stats, "journal_bytes"), 0);

    // The snapshot tells us how many burst documents actually survived
    // (the racer's doc may or may not have been durable): 25 acked is the
    // floor, 26 the ceiling.
    let snapshot = parse(&ok(client.post("/snapshot", ""), 200));
    let recovered = field_u64(&snapshot, "next_doc") as usize;
    assert!((acked..=acked + 1).contains(&recovered), "recovered {recovered} docs");
    assert_eq!(replayed, 2 + recovered as u64);

    // Bit-identical to an oracle that published exactly the recovered
    // prefix, never crashed, and never touched a journal.
    let mut qids = Vec::new();
    collect_qids(&snapshot, &mut qids);
    assert_eq!(qids.len(), 2);
    let recovered_sets = result_sets(&mut client, &qids);
    assert!(recovered_sets.iter().any(|s| s != "[]"), "burst must produce results");
    assert_eq!(recovered_sets, oracle_result_sets(&bodies, recovered));

    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_replays_only_past_the_checkpoint() {
    let dir = temp_dir("checkpoint");
    let bodies = publish_bodies(25);

    let mut daemon = Daemon::spawn(&dir);
    let mut client = await_ready(daemon.addr);
    ok(client.post("/queries", REGISTER_A), 200);
    ok(client.post("/queries", REGISTER_B), 200);
    for body in &bodies[..10] {
        ok(client.post("/publish", body), 200);
    }

    // Checkpoint mid-burst: the snapshot response doubles as the journal's
    // truncation point.
    ok(client.post("/snapshot", ""), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "last_checkpoint"), 12, "2 registers + 10 publishes");
    assert_eq!(field_u64(&stats, "journal_bytes"), 0);

    for body in &bodies[10..] {
        ok(client.post("/publish", body), 200);
    }
    daemon.kill9();

    let daemon = Daemon::spawn(&dir);
    let mut client = await_ready(daemon.addr);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert_eq!(field_u64(&stats, "replayed_records"), 15, "only the post-checkpoint tail replays");

    let snapshot = parse(&ok(client.post("/snapshot", ""), 200));
    assert_eq!(field_u64(&snapshot, "next_doc"), 25);
    let mut qids = Vec::new();
    collect_qids(&snapshot, &mut qids);
    assert_eq!(qids.len(), 2);
    let recovered_sets = result_sets(&mut client, &qids);
    assert!(recovered_sets.iter().any(|s| s != "[]"));
    assert_eq!(recovered_sets, oracle_result_sets(&bodies, 25));

    // And the daemon is fully live after recovery: a fresh publish acks and
    // lands in the journal.
    ok(client.post("/publish", r#"{"terms": [[1, 0.9]], "arrival": 99.0}"#), 200);
    let stats = parse(&ok(client.get("/stats"), 200));
    assert!(field_u64(&stats, "journal_bytes") > 0);

    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}
