//! Property-based tests over the journal's on-disk record format, plus a
//! byte-for-byte fixture pin.
//!
//! The properties mirror what a crash can actually do to the file: any
//! command sequence must round-trip through append/recover exactly, and any
//! truncation point — a crash mid-append — must recover precisely the
//! records that were fully written before it, never more, never garbage.
//!
//! The fixture (`tests/fixtures/journal_v1.wal`) pins the byte format the
//! same way `tests/fixtures/snapshot_v2.json` pins the snapshot format: a
//! daemon upgraded in place must still replay the journal its predecessor
//! wrote. Regenerate deliberately with `UPDATE_FIXTURES=1` (and bump the
//! checkpoint format) — never by accident.

use ctk_common::{QueryId, TermId};
use ctk_core::{EvictionPolicy, ReplayCommand, RetentionPolicy};
use ctk_server::{decode_records, encode_record, FsyncPolicy, Journal, JournalConfig, TailState};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ctk-jprops-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Build one command from an opcode plus a few free integers — the whole
/// `ReplayCommand` surface, deterministically derived so the generated
/// sequence is reproducible from the proptest seed.
fn command(kind: u8, a: u32, b: u64) -> ReplayCommand {
    let spec = ctk_common::QuerySpec::uniform(
        &[TermId(1 + a % 40), TermId(50 + a % 9)],
        (1 + a % 8) as usize,
    )
    .expect("distinct terms, k >= 1");
    match kind % 5 {
        0 => ReplayCommand::Publish {
            docs: (0..1 + (a % 3) as usize)
                .map(|i| {
                    let term = TermId(1 + (a + i as u32) % 50);
                    let weight = 0.1 + (b % 10) as f32 * 0.05;
                    (vec![(term, weight)], b as f64 * 0.25 + i as f64)
                })
                .collect(),
        },
        1 => ReplayCommand::Register {
            assigned: QueryId(a),
            spec,
            namespace: if a.is_multiple_of(2) {
                String::new()
            } else {
                format!("tenant-{}", a % 7)
            },
            max_age: if b.is_multiple_of(3) { None } else { Some(b as f64 * 0.5) },
        },
        2 => ReplayCommand::Unregister { qid: QueryId(a) },
        3 => ReplayCommand::SetRetention {
            namespace: format!("ns-{}", a % 5),
            policy: RetentionPolicy {
                max_age: if b.is_multiple_of(2) { Some(b as f64) } else { None },
                max_queries: if a.is_multiple_of(2) { Some(1 + b % 100) } else { None },
                eviction: if a.is_multiple_of(2) {
                    EvictionPolicy::Oldest
                } else {
                    EvictionPolicy::LowestScore
                },
            },
        },
        _ => ReplayCommand::Forget { namespace: format!("ns-{}", a % 5) },
    }
}

fn encode_all(commands: &[ReplayCommand]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (i, command) in commands.iter().enumerate() {
        let payload = serde_json::to_string(command).expect("commands serialize");
        bytes.extend_from_slice(&encode_record(i as u64 + 1, payload.as_bytes()));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Append any command sequence, drop the journal, reopen: recovery
    /// returns exactly that sequence, in order.
    #[test]
    fn any_command_sequence_round_trips_through_the_journal(
        ops in prop::collection::vec((0u8..5, 0u32..200, 0u64..1000), 1..20),
        max_segment in 96u64..4096,
    ) {
        let commands: Vec<ReplayCommand> =
            ops.iter().map(|&(k, a, b)| command(k, a, b)).collect();
        let dir = temp_dir("roundtrip");
        let cfg = JournalConfig::new(&dir)
            .fsync(FsyncPolicy::Never)
            .max_segment_bytes(max_segment);
        let (mut journal, recovery) = Journal::open(cfg.clone()).expect("open fresh");
        prop_assert!(recovery.is_empty());
        for command in &commands {
            journal.append(command).expect("append");
        }
        journal.sync().expect("sync");
        drop(journal);
        let (_journal, recovery) = Journal::open(cfg).expect("reopen");
        prop_assert_eq!(recovery.commands, commands);
        prop_assert_eq!(recovery.truncated_bytes, 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Truncate the encoded byte stream anywhere: the decoder yields exactly
    /// the records that were fully written before the cut, and flags the
    /// tail torn iff the cut landed inside a record.
    #[test]
    fn any_truncation_recovers_exactly_the_complete_prefix(
        ops in prop::collection::vec((0u8..5, 0u32..200, 0u64..1000), 1..12),
        cut_fraction in 0.0f64..1.0,
    ) {
        let commands: Vec<ReplayCommand> =
            ops.iter().map(|&(k, a, b)| command(k, a, b)).collect();
        let bytes = encode_all(&commands);

        // Record boundaries, so we know what a given cut *should* recover.
        let mut boundaries = vec![0usize];
        for command in &commands {
            let payload = serde_json::to_string(command).expect("serialize");
            boundaries.push(boundaries.last().unwrap() + 16 + payload.len());
        }

        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let (records, tail) = decode_records(&bytes[..cut]);
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(records.len(), complete, "cut at {} of {}", cut, bytes.len());
        let on_boundary = boundaries.contains(&cut);
        prop_assert_eq!(tail == TailState::Clean, on_boundary);
        // The recovered prefix parses back to the original commands.
        for (i, (seq, payload)) in records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            let parsed: ReplayCommand =
                serde_json::from_str(std::str::from_utf8(payload).expect("utf8"))
                    .expect("payload parses");
            prop_assert_eq!(&parsed, &commands[i]);
        }
    }

    /// Bit flips never pass the checksum: corrupt any single byte of a
    /// record and the decoder stops at (or before) that record rather than
    /// returning corrupted data.
    #[test]
    fn single_byte_corruption_never_yields_a_wrong_record(
        ops in prop::collection::vec((0u8..5, 0u32..200, 0u64..1000), 1..8),
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let commands: Vec<ReplayCommand> =
            ops.iter().map(|&(k, a, b)| command(k, a, b)).collect();
        let mut bytes = encode_all(&commands);
        let position = (((bytes.len() - 1) as f64) * position_fraction) as usize;
        bytes[position] ^= flip;
        let (records, _) = decode_records(&bytes);
        // Every record the decoder *does* return must be one of the
        // originals, verbatim, in order. (A corrupted length field can hide
        // later records; it must never fabricate one.)
        for (i, (seq, payload)) in records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            let parsed: ReplayCommand =
                serde_json::from_str(std::str::from_utf8(payload).expect("utf8"))
                    .expect("payload parses");
            prop_assert_eq!(&parsed, &commands[i]);
        }
    }
}

/// Pin the exact bytes of the journal format, the way
/// `tests/fixtures/snapshot_v2.json` pins the snapshot format. If this test
/// fails, a new daemon can no longer replay an old daemon's journal:
/// that is a format break and needs a `JOURNAL_FORMAT` bump plus a
/// migration path, not a fixture refresh.
#[test]
fn fixture_pins_the_on_disk_byte_format() {
    let commands = vec![
        ReplayCommand::Register {
            assigned: QueryId(1),
            spec: ctk_common::QuerySpec::uniform(&[TermId(3), TermId(7)], 2).unwrap(),
            namespace: "tenant-a".to_string(),
            max_age: Some(30.0),
        },
        ReplayCommand::Publish {
            docs: vec![
                (vec![(TermId(3), 0.5), (TermId(9), 0.25)], 1.5),
                (vec![(TermId(7), 1.0)], 2.0),
            ],
        },
        ReplayCommand::SetRetention {
            namespace: "tenant-a".to_string(),
            policy: RetentionPolicy {
                max_age: Some(60.0),
                max_queries: Some(100),
                eviction: EvictionPolicy::LowestScore,
            },
        },
        ReplayCommand::Unregister { qid: QueryId(1) },
        ReplayCommand::Forget { namespace: "tenant-a".to_string() },
    ];
    let bytes = encode_all(&commands);

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal_v1.wal");
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &bytes).unwrap();
    }
    let fixture = fs::read(&path)
        .expect("tests/fixtures/journal_v1.wal missing; regenerate with UPDATE_FIXTURES=1");
    assert_eq!(
        fixture, bytes,
        "journal byte format drifted from the v1 fixture — old journals would no longer replay"
    );

    // And the pinned bytes still decode to the same commands.
    let (records, tail) = decode_records(&fixture);
    assert_eq!(tail, TailState::Clean);
    let decoded: Vec<ReplayCommand> = records
        .iter()
        .map(|(_, payload)| serde_json::from_str(std::str::from_utf8(payload).unwrap()).unwrap())
        .collect();
    assert_eq!(decoded, commands);
}
