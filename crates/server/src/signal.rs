//! Minimal SIGTERM/SIGINT latching for the daemon binary, with no libc
//! crate: one `signal(2)` registration that flips an atomic the serve loop
//! polls. On non-Unix targets both calls are no-ops and shutdown is driven
//! some other way (e.g. `POST /admin/drain` plus process exit).

/// Install handlers for SIGTERM and SIGINT. Call once, before the serve
/// loop; later calls are harmless.
pub fn install() {
    imp::install();
}

/// True once a termination signal has arrived. Latches: it never resets.
pub fn requested() -> bool {
    imp::requested()
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn latch(_signum: i32) {
        // The only thing a handler may safely do here: one atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that is async-signal-safe (a
        // single lock-free atomic store, no allocation, no locks). We
        // ignore the return value: on the platforms this daemon targets
        // these two signals always accept a handler.
        unsafe {
            signal(SIGTERM, latch);
            signal(SIGINT, latch);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

#[cfg(all(test, unix))]
mod tests {
    #[test]
    fn install_is_idempotent_and_starts_unlatched() {
        super::install();
        super::install();
        assert!(!super::requested());
    }
}
