//! The change-notification fan-out: per-subscriber bounded buffers fed by
//! publish receipts, drained by long-polls.
//!
//! The paper's product surface is the *push* side — subscribers hold
//! standing top-k queries and are told when their result sets change. The
//! ingest thread calls [`SubscriberRegistry::fanout`] with each
//! [`PublishReceipt`]; its grouped `changes_by_query` view is routed to
//! every subscriber whose filter matches. Each subscriber owns a **bounded**
//! ring of pending [`ChangeEvent`]s: a slow poller cannot grow server
//! memory, it loses its *oldest* events instead, and the next poll reports
//! the gap (`dropped` count) so the client knows to re-read
//! `GET /queries/{id}/results` for the authoritative state. Sequence
//! numbers are per-subscriber and gap-free *except* across a reported drop.

use ctk_common::QueryId;
use ctk_core::{PublishReceipt, ResultChange};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One pushed change notification: a per-subscriber sequence number plus
/// the result change itself, exactly as the publish receipt reported it.
#[derive(Debug, Clone, Serialize)]
pub struct ChangeEvent {
    /// Per-subscriber sequence number, starting at 0. Consecutive unless
    /// the poll that delivered this event also reported a non-zero gap.
    pub seq: u64,
    /// The result-set change, bit-identical to the receipt's entry.
    pub change: ResultChange,
}

/// What one long-poll returns.
#[derive(Debug, Clone, Serialize)]
pub struct PollOutcome {
    /// Delivered events, oldest first.
    pub events: Vec<ChangeEvent>,
    /// Events lost to buffer overflow since the previous poll. Non-zero
    /// means the subscriber fell behind; re-read the affected results.
    pub dropped: u64,
    /// True once the server started draining: no further publishes will be
    /// accepted, so once `events` is empty the stream is complete.
    pub draining: bool,
}

struct Subscriber {
    /// `None` subscribes to every query's changes.
    filter: Option<Vec<QueryId>>,
    buffer: VecDeque<ChangeEvent>,
    /// Events dropped (oldest-first) since the last poll reported them.
    dropped: u64,
    next_seq: u64,
}

#[derive(Default)]
struct RegistryState {
    subscribers: Vec<(u64, Subscriber)>,
    next_id: u64,
    draining: bool,
    total_dropped: u64,
    total_delivered: u64,
}

/// The shared subscriber table. All methods take `&self`; the ingest thread
/// fans out while connection handlers poll.
pub struct SubscriberRegistry {
    state: Mutex<RegistryState>,
    wakeup: Condvar,
    /// Per-subscriber buffered-event cap (drop-oldest beyond it).
    capacity: usize,
}

impl SubscriberRegistry {
    pub fn new(capacity: usize) -> SubscriberRegistry {
        assert!(capacity >= 1, "a subscriber buffer needs at least one slot");
        SubscriberRegistry {
            state: Mutex::new(RegistryState::default()),
            wakeup: Condvar::new(),
            capacity,
        }
    }

    /// Add a subscriber; `filter` of `None` receives every change.
    pub fn subscribe(&self, filter: Option<Vec<QueryId>>) -> u64 {
        let mut state = self.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        state
            .subscribers
            .push((id, Subscriber { filter, buffer: VecDeque::new(), dropped: 0, next_seq: 0 }));
        id
    }

    /// Remove a subscriber. False when the id is unknown.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut state = self.state.lock().unwrap();
        let before = state.subscribers.len();
        state.subscribers.retain(|(sid, _)| *sid != id);
        let removed = state.subscribers.len() < before;
        if removed {
            // A poller blocked on this subscriber must notice it vanished.
            self.wakeup.notify_all();
        }
        removed
    }

    /// Route a receipt's changes to every matching subscriber. Returns the
    /// number of events buffered (sum over subscribers).
    pub fn fanout(&self, receipt: &PublishReceipt) -> u64 {
        if receipt.changes.is_empty() {
            return 0;
        }
        let grouped = receipt.changes_by_query();
        let mut state = self.state.lock().unwrap();
        if state.subscribers.is_empty() {
            return 0;
        }
        let capacity = self.capacity;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for (_, sub) in &mut state.subscribers {
            for (qid, group) in &grouped {
                if let Some(filter) = &sub.filter {
                    if !filter.contains(qid) {
                        continue;
                    }
                }
                for change in group {
                    if sub.buffer.len() == capacity {
                        sub.buffer.pop_front();
                        sub.dropped += 1;
                        dropped += 1;
                    }
                    sub.buffer.push_back(ChangeEvent { seq: sub.next_seq, change: *change });
                    sub.next_seq += 1;
                    delivered += 1;
                }
            }
        }
        state.total_delivered += delivered;
        state.total_dropped += dropped;
        drop(state);
        if delivered > 0 {
            self.wakeup.notify_all();
        }
        delivered
    }

    /// Long-poll one subscriber: block until it has buffered events, the
    /// server drains, or `timeout` elapses — whichever comes first — then
    /// drain up to `max_events` of them. `None` when the subscriber is
    /// unknown (or was unsubscribed mid-poll).
    pub fn poll(&self, id: u64, max_events: usize, timeout: Duration) -> Option<PollOutcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            let draining = state.draining;
            let sub = match state.subscribers.iter_mut().find(|(sid, _)| *sid == id) {
                None => return None,
                Some((_, sub)) => sub,
            };
            if !sub.buffer.is_empty() || sub.dropped > 0 || draining {
                let take = sub.buffer.len().min(max_events);
                let events: Vec<ChangeEvent> = sub.buffer.drain(..take).collect();
                let dropped = std::mem::take(&mut sub.dropped);
                return Some(PollOutcome { events, dropped, draining });
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(PollOutcome { events: Vec::new(), dropped: 0, draining });
            }
            let (next, timed_out) = self.wakeup.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if timed_out.timed_out() {
                // Fall through one more pass so a race with fanout still
                // delivers what arrived at the deadline.
            }
        }
    }

    /// Rewrite every subscriber filter through a restore's old-id → new-id
    /// mapping (sorted by old id). A filtered id that survived the restore
    /// follows its query to the new id; ids the snapshot did not carry are
    /// dropped from the filter — the queries they named no longer exist, so
    /// keeping them would subscribe to whatever query is registered into
    /// that slot next. Unfiltered (`None`) subscribers are untouched.
    pub fn remap_filters(&self, mapping: &[(QueryId, QueryId)]) {
        let mut state = self.state.lock().unwrap();
        for (_, sub) in &mut state.subscribers {
            if let Some(filter) = &mut sub.filter {
                filter.retain_mut(|qid| match mapping.binary_search_by_key(qid, |&(old, _)| old) {
                    Ok(i) => {
                        *qid = mapping[i].1;
                        true
                    }
                    Err(_) => false,
                });
            }
        }
    }

    /// Begin draining: wake every blocked poller. Buffered events remain
    /// readable — polls drain them with `draining: true` — but no new ones
    /// will arrive.
    pub fn begin_drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.wakeup.notify_all();
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().subscribers.len()
    }

    /// True when no subscriber is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(delivered, dropped)` lifetime totals across all subscribers.
    pub fn totals(&self) -> (u64, u64) {
        let state = self.state.lock().unwrap();
        (state.total_delivered, state.total_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, ScoredDoc};

    fn receipt(changes: Vec<(u32, u64)>) -> PublishReceipt {
        PublishReceipt {
            doc_ids: changes.iter().map(|&(_, d)| DocId(d)).collect(),
            changes: changes
                .into_iter()
                .map(|(q, d)| ResultChange {
                    query: QueryId(q),
                    inserted: ScoredDoc::new(DocId(d), 1.0),
                    evicted: None,
                })
                .collect(),
            stats: Vec::new(),
        }
    }

    #[test]
    fn fanout_respects_filters_and_orders_events() {
        let reg = SubscriberRegistry::new(16);
        let all = reg.subscribe(None);
        let only_q1 = reg.subscribe(Some(vec![QueryId(1)]));
        let delivered = reg.fanout(&receipt(vec![(2, 10), (1, 11), (1, 12)]));
        assert_eq!(delivered, 5, "3 to the unfiltered subscriber, 2 to the filtered one");

        let out = reg.poll(all, 64, Duration::ZERO).unwrap();
        assert_eq!(out.events.len(), 3);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        // changes_by_query order: ascending query id, doc order within.
        assert_eq!(out.events[0].change.query, QueryId(1));
        assert_eq!(out.events[0].change.inserted.doc, DocId(11));
        assert_eq!(out.events[2].change.query, QueryId(2));

        let out = reg.poll(only_q1, 64, Duration::ZERO).unwrap();
        assert_eq!(out.events.len(), 2);
        assert!(out.events.iter().all(|e| e.change.query == QueryId(1)));
    }

    #[test]
    fn overflow_drops_oldest_and_reports_the_gap() {
        let reg = SubscriberRegistry::new(2);
        let id = reg.subscribe(None);
        reg.fanout(&receipt(vec![(1, 1), (1, 2), (1, 3), (1, 4)]));
        let out = reg.poll(id, 64, Duration::ZERO).unwrap();
        assert_eq!(out.dropped, 2, "two oldest events were displaced");
        assert_eq!(out.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(out.events[0].change.inserted.doc, DocId(3));
        // The gap is reported once.
        let out = reg.poll(id, 64, Duration::ZERO).unwrap();
        assert_eq!((out.events.len(), out.dropped), (0, 0));
    }

    #[test]
    fn poll_blocks_until_fanout() {
        let reg = std::sync::Arc::new(SubscriberRegistry::new(16));
        let id = reg.subscribe(None);
        let poller = {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || reg.poll(id, 64, Duration::from_secs(10)).unwrap())
        };
        // Give the poller a moment to block, then wake it with an event.
        std::thread::sleep(Duration::from_millis(30));
        reg.fanout(&receipt(vec![(1, 5)]));
        let out = poller.join().unwrap();
        assert_eq!(out.events.len(), 1);
        assert!(!out.draining);
    }

    #[test]
    fn drain_wakes_pollers_and_flushes_buffers() {
        let reg = std::sync::Arc::new(SubscriberRegistry::new(16));
        let id = reg.subscribe(None);
        reg.fanout(&receipt(vec![(1, 5)]));
        reg.begin_drain();
        // Buffered events still drain out, flagged as draining.
        let out = reg.poll(id, 64, Duration::from_secs(10)).unwrap();
        assert_eq!(out.events.len(), 1);
        assert!(out.draining);
        // An empty post-drain poll returns immediately instead of blocking.
        let start = Instant::now();
        let out = reg.poll(id, 64, Duration::from_secs(10)).unwrap();
        assert!(out.events.is_empty() && out.draining);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn remap_follows_mapping_and_drops_strays() {
        let reg = SubscriberRegistry::new(16);
        let filtered = reg.subscribe(Some(vec![QueryId(0), QueryId(2), QueryId(5)]));
        let all = reg.subscribe(None);
        // Restore mapped 0→0 and 2→1; query 5 did not survive the snapshot.
        reg.remap_filters(&[(QueryId(0), QueryId(0)), (QueryId(2), QueryId(1))]);
        reg.fanout(&receipt(vec![(1, 10), (2, 11), (5, 12)]));
        let out = reg.poll(filtered, 64, Duration::ZERO).unwrap();
        assert_eq!(out.events.len(), 1, "only remapped id 1 matches now");
        assert_eq!(out.events[0].change.query, QueryId(1));
        let out = reg.poll(all, 64, Duration::ZERO).unwrap();
        assert_eq!(out.events.len(), 3, "unfiltered subscribers are untouched");
    }

    #[test]
    fn unknown_and_removed_subscribers_are_none() {
        let reg = SubscriberRegistry::new(4);
        assert!(reg.poll(7, 1, Duration::ZERO).is_none());
        let id = reg.subscribe(None);
        assert!(reg.unsubscribe(id));
        assert!(!reg.unsubscribe(id));
        assert!(reg.poll(id, 1, Duration::ZERO).is_none());
        assert!(reg.is_empty());
    }
}
