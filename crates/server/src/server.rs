//! The daemon itself: one ingest thread owning the backend, an accept loop
//! spawning per-connection handlers, and the route table tying the wire API
//! to both.
//!
//! # Threading model
//!
//! Every backend operation is linearized through a single **ingest thread**
//! that owns the `Box<dyn MonitorBackend + Send>`. Connection handlers
//! never touch the backend; they enqueue a `Command` carrying a
//! one-shot reply channel onto a *bounded* crossbeam channel and block on
//! the reply. The bound is the backpressure mechanism: when publishers
//! outrun the monitor, their handler threads block in `send`, which blocks
//! their sockets, which pushes back on the clients — no queue ever grows
//! without bound. Fan-out to subscribers happens on the ingest thread
//! *before* the publisher gets its receipt, so publish-then-poll is
//! deterministic: once `POST /publish` returns, every subscriber can see
//! the receipt's changes.
//!
//! # Drain and shutdown
//!
//! [`CtkServer::drain`] is the graceful half: new publishes (and restores)
//! are refused with 503, a barrier command flushes everything already
//! queued, and long-pollers are woken to read out their buffered events
//! with `draining: true`. Reads (`results`, `stats`, `snapshot`) keep
//! working — a drained server is exactly the right moment to snapshot.
//! [`CtkServer::shutdown`] drains, stops the ingest thread, unblocks the
//! accept loop and joins both.

use crate::http::{Request, Response};
use crate::subscribers::SubscriberRegistry;
use crate::wire;
use continuous_topk::{EngineKind, MonitorBuilder};
use crossbeam::channel::{self, Receiver, Sender};
use ctk_common::{Namespace, QueryId, ScoredDoc};
use ctk_core::{
    DocPruning, NamespaceStats, PostingsStorage, PublishReceipt, PublishRequest, QueryOptions,
    RetentionPolicy, ShardingMode, Snapshot, StorageStats,
};
use serde::{Number, Serialize, Value};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Longest a single long-poll may block server-side, whatever the client
/// asks for. Clients needing more re-issue the poll; this bounds how long a
/// handler thread can sit in the registry's condvar.
const MAX_POLL_TIMEOUT: Duration = Duration::from_secs(30);

/// Idle-read timeout on keep-alive connections: how often a parked handler
/// thread re-checks whether the server is stopping.
const IDLE_RECHECK: Duration = Duration::from_secs(5);

/// Configures and starts a [`CtkServer`]. Forwards every [`MonitorBuilder`]
/// knob, then adds the server-side ones (queue depth, subscriber buffers).
///
/// ```no_run
/// use ctk_server::ServerBuilder;
/// use continuous_topk::EngineKind;
///
/// let server = ServerBuilder::new(EngineKind::Mrio)
///     .lambda(1e-3)
///     .shards(4)
///     .queue_depth(32)
///     .bind("127.0.0.1:0")
///     .unwrap();
/// println!("listening on {}", server.addr());
/// ```
#[derive(Clone)]
pub struct ServerBuilder {
    monitor: MonitorBuilder,
    engine: EngineKind,
    queue_depth: usize,
    subscriber_buffer: usize,
    max_poll_events: usize,
}

impl ServerBuilder {
    /// Start from an engine choice with default knobs everywhere.
    pub fn new(engine: EngineKind) -> ServerBuilder {
        ServerBuilder {
            monitor: MonitorBuilder::new(engine),
            engine,
            queue_depth: 16,
            subscriber_buffer: 1024,
            max_poll_events: 512,
        }
    }

    // --- MonitorBuilder knobs, forwarded verbatim. ---

    /// Decay parameter λ (see [`MonitorBuilder::lambda`]).
    pub fn lambda(mut self, lambda: f64) -> ServerBuilder {
        self.monitor = self.monitor.lambda(lambda);
        self
    }

    /// Shard count; more than 1 builds a sharded backend.
    pub fn shards(mut self, shards: usize) -> ServerBuilder {
        self.monitor = self.monitor.shards(shards);
        self
    }

    /// Work-partitioning mode for sharded backends.
    pub fn sharding(mut self, mode: ShardingMode) -> ServerBuilder {
        self.monitor = self.monitor.sharding(mode);
        self
    }

    /// Ingestion batch size of sharded backends.
    pub fn batch_size(mut self, batch_size: usize) -> ServerBuilder {
        self.monitor = self.monitor.batch_size(batch_size);
        self
    }

    /// Pipelining window of sharded backends.
    pub fn pipeline_window(mut self, window: usize) -> ServerBuilder {
        self.monitor = self.monitor.pipeline_window(window);
        self
    }

    /// Index compaction threshold.
    pub fn compact_at(mut self, ratio: f64) -> ServerBuilder {
        self.monitor = self.monitor.compact_at(ratio);
        self
    }

    /// Document-epoch pruning mode.
    pub fn doc_pruning(mut self, pruning: DocPruning) -> ServerBuilder {
        self.monitor = self.monitor.doc_pruning(pruning);
        self
    }

    /// Postings-storage backend (see [`MonitorBuilder::postings_storage`]).
    pub fn postings_storage(mut self, storage: PostingsStorage) -> ServerBuilder {
        self.monitor = self.monitor.postings_storage(storage);
        self
    }

    /// RAM budget for paged storage (see [`MonitorBuilder::page_budget`]).
    pub fn page_budget(mut self, bytes: usize) -> ServerBuilder {
        self.monitor = self.monitor.page_budget(bytes);
        self
    }

    // --- Server-side knobs. ---

    /// In-flight command bound of the ingest queue. Publish handlers block
    /// once this many commands are queued — the backpressure knob.
    pub fn queue_depth(mut self, depth: usize) -> ServerBuilder {
        assert!(depth >= 1, "the ingest queue needs at least one slot");
        self.queue_depth = depth;
        self
    }

    /// Per-subscriber buffered-change cap; beyond it the oldest events are
    /// dropped and the gap is reported on the next poll.
    pub fn subscriber_buffer(mut self, capacity: usize) -> ServerBuilder {
        self.subscriber_buffer = capacity;
        self
    }

    /// Most events one `GET /changes` response may carry.
    pub fn max_poll_events(mut self, max: usize) -> ServerBuilder {
        assert!(max >= 1, "a poll must be able to deliver at least one event");
        self.max_poll_events = max;
        self
    }

    /// Bind a listener, spawn the ingest and accept threads, and return the
    /// running server. Bind to port 0 for an ephemeral port (tests).
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<CtkServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let backend = self.monitor.build();
        let (tx, rx) = channel::bounded::<Command>(self.queue_depth);
        let shared = Arc::new(Shared {
            commands: tx,
            subscribers: SubscriberRegistry::new(self.subscriber_buffer),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            max_poll_events: self.max_poll_events,
            engine: self.engine,
        });

        let ingest = {
            let shared = Arc::clone(&shared);
            let builder = self.monitor.clone();
            thread::Builder::new()
                .name("ctk-ingest".to_string())
                .spawn(move || ingest_loop(rx, backend, builder, &shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ctk-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))?
        };
        Ok(CtkServer { addr, shared, ingest: Some(ingest), accept: Some(accept) })
    }
}

/// A running daemon. Dropping it without [`CtkServer::shutdown`] leaves the
/// threads running for the life of the process (what a daemon `main` wants);
/// tests call `shutdown` for a clean join.
pub struct CtkServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ingest: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl CtkServer {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`CtkServer::drain`] has run (or `POST /admin/drain`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Gracefully drain: refuse new publishes with 503, finish the ones
    /// already queued, then wake every long-poller so it can flush its
    /// buffered events. Idempotent. Blocks until in-flight publishes have
    /// fanned out.
    pub fn drain(&self) {
        drain(&self.shared);
    }

    /// Drain, then stop and join the ingest and accept threads. Connection
    /// handlers are detached; any still parked on an idle keep-alive socket
    /// notice `stopping` within the idle-recheck interval and exit.
    pub fn shutdown(mut self) {
        self.drain();
        self.shared.stopping.store(true, Ordering::SeqCst);
        let _ = self.shared.commands.send(Command::Stop);
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join();
        }
        // The accept loop is parked in `accept`; poke it with a connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// State shared by the accept loop, every connection handler, and the
/// ingest thread.
struct Shared {
    commands: Sender<Command>,
    subscribers: SubscriberRegistry,
    draining: AtomicBool,
    stopping: AtomicBool,
    max_poll_events: usize,
    engine: EngineKind,
}

/// One backend operation, linearized through the ingest queue. Each carries
/// a one-shot reply channel; a handler whose reply channel dies (ingest
/// thread already stopped) reports 503.
enum Command {
    Register(wire::RegisterRequest, Sender<QueryId>),
    Unregister(QueryId, Sender<bool>),
    Publish(PublishRequest, Sender<PublishReceipt>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Stats(Sender<BackendStats>),
    Snapshot(Sender<Snapshot>),
    Restore(Box<Snapshot>, Sender<RestoreOutcome>),
    /// Install a namespace's retention policy (interning the name).
    SetRetention(String, RetentionPolicy, Sender<()>),
    /// Read a namespace's policy; outer `None` = unknown namespace, inner
    /// `None` = known but no policy installed.
    GetRetention(String, Sender<Option<Option<RetentionPolicy>>>),
    /// Bulk-remove a namespace's queries (`dry_run` only counts them);
    /// `None` = unknown namespace.
    Forget {
        namespace: String,
        dry_run: bool,
        reply: Sender<Option<usize>>,
    },
    /// Replies once everything queued before it has been processed.
    Barrier(Sender<()>),
    Stop,
}

/// The ingest thread's answer to a stats request.
struct BackendStats {
    queries: usize,
    shards: usize,
    sharding: ShardingMode,
    lambda: f64,
    publishes: u64,
    docs_published: u64,
    expired: u64,
    evicted: u64,
    namespaces: Vec<NamespaceStats>,
    storage: StorageStats,
}

/// The ingest thread's answer to a restore: the new backend's query count
/// plus the captured-id → new-id mapping, sorted by captured id.
struct RestoreOutcome {
    queries: usize,
    mapping: Vec<(QueryId, QueryId)>,
}

fn ingest_loop(
    rx: Receiver<Command>,
    mut backend: Box<dyn ctk_core::MonitorBackend + Send>,
    builder: MonitorBuilder,
    shared: &Shared,
) {
    let mut publishes = 0u64;
    let mut docs_published = 0u64;
    while let Ok(command) = rx.recv() {
        match command {
            Command::Stop => break,
            Command::Register(req, reply) => {
                let namespace = match req.namespace.as_deref() {
                    None => Namespace::DEFAULT,
                    Some(name) => backend.intern_namespace(name),
                };
                let opts = QueryOptions { namespace, max_age: req.max_age };
                let _ = reply.send(backend.register_with(req.spec, opts));
            }
            Command::Unregister(qid, reply) => {
                let _ = reply.send(backend.unregister(qid));
            }
            Command::Publish(request, reply) => {
                publishes += 1;
                docs_published += request.len() as u64;
                let receipt = backend.publish_request(request);
                // Fan out before acking: once the publisher has its
                // receipt, every subscriber buffer already holds the
                // changes.
                shared.subscribers.fanout(&receipt);
                let _ = reply.send(receipt);
            }
            Command::Results(qid, reply) => {
                let _ = reply.send(backend.results(qid));
            }
            Command::Stats(reply) => {
                let (expired, evicted) = backend.lifecycle_totals();
                let _ = reply.send(BackendStats {
                    queries: backend.num_queries(),
                    shards: backend.shards(),
                    sharding: backend.sharding_mode(),
                    lambda: backend.lambda(),
                    publishes,
                    docs_published,
                    expired,
                    evicted,
                    namespaces: backend.namespace_stats(),
                    storage: backend.storage_stats(),
                });
            }
            Command::Snapshot(reply) => {
                let _ = reply.send(backend.snapshot());
            }
            Command::Restore(snapshot, reply) => {
                let (restored, mapping) = builder.restore(&snapshot);
                backend = restored;
                let mut mapping: Vec<(QueryId, QueryId)> = mapping.into_iter().collect();
                mapping.sort_unstable_by_key(|&(old, _)| old);
                // Follow the surviving queries to their new ids before the
                // restorer gets its ack — a subscriber filtered on an old id
                // must never see (or miss) a post-restore change because its
                // filter still spoke the pre-restore id space.
                shared.subscribers.remap_filters(&mapping);
                let _ = reply.send(RestoreOutcome { queries: backend.num_queries(), mapping });
            }
            Command::SetRetention(name, policy, reply) => {
                let ns = backend.intern_namespace(&name);
                backend.set_retention(ns, policy);
                let _ = reply.send(());
            }
            Command::GetRetention(name, reply) => {
                let _ = reply.send(backend.find_namespace(&name).map(|ns| backend.retention(ns)));
            }
            Command::Forget { namespace, dry_run, reply } => {
                let outcome = backend.find_namespace(&namespace).map(|ns| {
                    if dry_run {
                        backend
                            .namespace_stats()
                            .into_iter()
                            .find(|s| s.namespace == namespace)
                            .map_or(0, |s| s.live as usize)
                    } else {
                        backend.forget_namespace(ns)
                    }
                });
                let _ = reply.send(outcome);
            }
            Command::Barrier(reply) => {
                let _ = reply.send(());
            }
        }
    }
}

fn drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Everything queued before this barrier — publishes included — has been
    // processed and fanned out by the time it acks.
    let (tx, rx) = channel::bounded(1);
    if shared.commands.send(Command::Barrier(tx)).is_ok() {
        let _ = rx.recv();
    }
    shared.subscribers.begin_drain();
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        // Handlers are detached: they die with the connection (or notice
        // `stopping` at the next idle recheck).
        let _ = thread::Builder::new()
            .name("ctk-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_RECHECK));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let request = match Request::read_from(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) => {
                let _ = Response::error(400, e).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = !request.wants_close();
        let response = route(&request, shared);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Issue one command and wait for the reply. `None` (→ 503) when the ingest
/// thread is gone.
fn ask<T>(shared: &Shared, make: impl FnOnce(Sender<T>) -> Command) -> Option<T> {
    let (tx, rx) = channel::bounded(1);
    shared.commands.send(make(tx)).ok()?;
    rx.recv().ok()
}

fn unavailable() -> Response {
    Response::error(503, "server is shutting down")
}

fn route(request: &Request, shared: &Shared) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            object(vec![
                ("ok", Value::Bool(true)),
                ("draining", Value::Bool(shared.draining.load(Ordering::SeqCst))),
            ]),
        ),
        ("GET", ["stats"]) => handle_stats(shared),
        ("POST", ["queries"]) => handle_register(request, shared),
        ("DELETE", ["queries", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(qid) => match ask(shared, |tx| Command::Unregister(QueryId(qid), tx)) {
                None => unavailable(),
                Some(true) => Response::json(200, object(vec![("removed", Value::Bool(true))])),
                Some(false) => Response::error(404, format!("unknown query {qid}")),
            },
        },
        ("GET", ["queries", id, "results"]) => match parse_id(id) {
            Err(response) => response,
            Ok(qid) => match ask(shared, |tx| Command::Results(QueryId(qid), tx)) {
                None => unavailable(),
                Some(None) => Response::error(404, format!("unknown query {qid}")),
                Some(Some(results)) => Response::json(
                    200,
                    object(vec![
                        ("query", Value::Num(Number::U64(qid.into()))),
                        ("results", results.to_value()),
                    ]),
                ),
            },
        },
        ("POST", ["publish"]) => handle_publish(request, shared),
        ("POST", ["subscriptions"]) => handle_subscribe(request, shared),
        ("DELETE", ["subscriptions", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(id) => {
                if shared.subscribers.unsubscribe(id.into()) {
                    Response::json(200, object(vec![("removed", Value::Bool(true))]))
                } else {
                    Response::error(404, format!("unknown subscriber {id}"))
                }
            }
        },
        ("GET", ["changes"]) => handle_changes(request, shared),
        ("POST", ["snapshot"]) => match ask(shared, Command::Snapshot) {
            None => unavailable(),
            Some(snapshot) => match serde_json::to_string(&snapshot) {
                Ok(body) => Response::json(200, body),
                Err(e) => Response::error(500, e),
            },
        },
        ("POST", ["restore"]) => handle_restore(request, shared),
        ("PUT", ["namespaces", ns, "retention"]) => handle_set_retention(ns, request, shared),
        ("GET", ["namespaces", ns, "retention"]) => handle_get_retention(ns, shared),
        ("POST", ["forget"]) => handle_forget(request, shared),
        ("POST", ["admin", "drain"]) => {
            drain(shared);
            Response::json(202, object(vec![("draining", Value::Bool(true))]))
        }
        (
            _,
            ["healthz" | "stats" | "queries" | "publish" | "subscriptions" | "changes" | "snapshot"
            | "restore" | "namespaces" | "forget" | "admin", ..],
        ) => Response::error(405, format!("{} is not supported here", request.method)),
        _ => Response::error(404, format!("no route for {}", request.path)),
    }
}

fn handle_stats(shared: &Shared) -> Response {
    let backend = match ask(shared, Command::Stats) {
        None => return unavailable(),
        Some(stats) => stats,
    };
    let (delivered, dropped) = shared.subscribers.totals();
    let stats = ServerStats {
        engine: shared.engine.to_string(),
        lambda: backend.lambda,
        shards: backend.shards,
        sharding: backend.sharding.to_string(),
        queries: backend.queries,
        publishes: backend.publishes,
        docs_published: backend.docs_published,
        expired: backend.expired,
        evicted: backend.evicted,
        namespaces: backend.namespaces,
        index_bytes: backend.storage.index_bytes,
        hot_pages: backend.storage.hot_pages,
        cold_pages: backend.storage.cold_pages,
        page_faults: backend.storage.page_faults,
        subscribers: shared.subscribers.len(),
        events_delivered: delivered,
        events_dropped: dropped,
        draining: shared.draining.load(Ordering::SeqCst),
    };
    match serde_json::to_string(&stats) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, e),
    }
}

/// The `GET /stats` response body.
#[derive(Debug, Clone, Serialize)]
pub struct ServerStats {
    pub engine: String,
    pub lambda: f64,
    pub shards: usize,
    pub sharding: String,
    pub queries: usize,
    pub publishes: u64,
    pub docs_published: u64,
    /// Queries removed by TTL expiry, lifetime total.
    pub expired: u64,
    /// Queries removed by retention-cap eviction, lifetime total.
    pub evicted: u64,
    /// Per-namespace live/expired/evicted counts, handle order (the default
    /// namespace — the empty name — is always first).
    pub namespaces: Vec<NamespaceStats>,
    /// Estimated heap bytes of the query index(es), summed across shards;
    /// paged storage excludes spilled payloads.
    pub index_bytes: u64,
    /// Sealed-block pages currently RAM-resident (paged storage only).
    pub hot_pages: u64,
    /// Sealed-block pages spilled to disk (paged storage only).
    pub cold_pages: u64,
    /// Reads that faulted a page back from the spill file, lifetime total.
    pub page_faults: u64,
    pub subscribers: usize,
    pub events_delivered: u64,
    pub events_dropped: u64,
    pub draining: bool,
}

fn handle_register(request: &Request, shared: &Shared) -> Response {
    let req = match parse_json_body(request).and_then(|body| wire::parse_register(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(req) => req,
    };
    let namespace = req.namespace.clone().unwrap_or_default();
    match ask(shared, |tx| Command::Register(req, tx)) {
        None => unavailable(),
        Some(qid) => Response::json(
            200,
            object(vec![
                ("query", Value::Num(Number::U64(qid.0.into()))),
                ("namespace", Value::Str(namespace)),
            ]),
        ),
    }
}

fn handle_set_retention(ns: &str, request: &Request, shared: &Shared) -> Response {
    let policy = match parse_json_body(request).and_then(|body| wire::parse_retention(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(policy) => policy,
    };
    match ask(shared, |tx| Command::SetRetention(ns.to_string(), policy, tx)) {
        None => unavailable(),
        Some(()) => Response::json(200, retention_body(ns, Some(policy))),
    }
}

fn handle_get_retention(ns: &str, shared: &Shared) -> Response {
    match ask(shared, |tx| Command::GetRetention(ns.to_string(), tx)) {
        None => unavailable(),
        Some(None) => Response::error(404, format!("unknown namespace {ns:?}")),
        Some(Some(policy)) => Response::json(200, retention_body(ns, policy)),
    }
}

/// The `{PUT,GET} /namespaces/{ns}/retention` response body; `retention` is
/// `null` for a namespace with no installed policy.
fn retention_body(ns: &str, policy: Option<RetentionPolicy>) -> String {
    let retention = match policy {
        None => Value::Null,
        Some(p) => object_value(vec![
            ("max_age", p.max_age.map_or(Value::Null, |a| Value::Num(Number::F64(a)))),
            ("max_queries", p.max_queries.map_or(Value::Null, |c| Value::Num(Number::U64(c)))),
            ("eviction", Value::Str(wire::eviction_token(p.eviction).to_string())),
        ]),
    };
    object(vec![("namespace", Value::Str(ns.to_string())), ("retention", retention)])
}

fn handle_forget(request: &Request, shared: &Shared) -> Response {
    let req = match parse_json_body(request).and_then(|body| wire::parse_forget(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(req) => req,
    };
    if !req.dry_run && shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; destructive forgets are refused");
    }
    let dry_run = req.dry_run;
    let namespace = req.namespace.clone();
    match ask(shared, |tx| Command::Forget { namespace: req.namespace, dry_run, reply: tx }) {
        None => unavailable(),
        Some(None) => Response::error(404, format!("unknown namespace {namespace:?}")),
        Some(Some(count)) => Response::json(
            200,
            object(vec![
                ("namespace", Value::Str(namespace)),
                ("dry_run", Value::Bool(dry_run)),
                ("removed", Value::Num(Number::U64(count as u64))),
            ]),
        ),
    }
}

fn handle_publish(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; publishes are refused");
    }
    let publish = match parse_json_body(request).and_then(|body| wire::parse_publish(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(publish) => publish,
    };
    match ask(shared, |tx| Command::Publish(publish, tx)) {
        None => unavailable(),
        Some(receipt) => match serde_json::to_string(&receipt) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, e),
        },
    }
}

fn handle_subscribe(request: &Request, shared: &Shared) -> Response {
    let filter = match parse_json_body(request).and_then(|body| wire::parse_subscribe(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(filter) => filter,
    };
    let id = shared.subscribers.subscribe(filter);
    Response::json(200, object(vec![("subscriber", Value::Num(Number::U64(id)))]))
}

fn handle_changes(request: &Request, shared: &Shared) -> Response {
    let id = match request.query_param("subscriber") {
        None => return Response::error(400, "missing \"subscriber\" query parameter"),
        Some(raw) => match raw.parse::<u64>() {
            Err(_) => return Response::error(400, format!("bad subscriber id {raw:?}")),
            Ok(id) => id,
        },
    };
    let timeout = match request.query_param("timeout_ms") {
        None => Duration::ZERO,
        Some(raw) => match raw.parse::<u64>() {
            Err(_) => return Response::error(400, format!("bad timeout_ms {raw:?}")),
            Ok(ms) => Duration::from_millis(ms).min(MAX_POLL_TIMEOUT),
        },
    };
    let max_events = match request.query_param("max") {
        None => shared.max_poll_events,
        Some(raw) => match raw.parse::<usize>() {
            Err(_) | Ok(0) => return Response::error(400, format!("bad max {raw:?}")),
            Ok(max) => max.min(shared.max_poll_events),
        },
    };
    match shared.subscribers.poll(id, max_events, timeout) {
        None => Response::error(404, format!("unknown subscriber {id}")),
        Some(outcome) => match serde_json::to_string(&outcome) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, e),
        },
    }
}

fn handle_restore(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; restores are refused");
    }
    let body = match request.body_str() {
        Err(message) => return Response::error(400, message),
        Ok(body) => body,
    };
    // `from_json`, not a plain parse: the wire accepts any snapshot version
    // this build can migrate (v0–v2 captures restore into a v3 server).
    let snapshot: Snapshot = match Snapshot::from_json(body) {
        Err(e) => return Response::error(400, format!("invalid snapshot: {e}")),
        Ok(snapshot) => snapshot,
    };
    match ask(shared, |tx| Command::Restore(Box::new(snapshot), tx)) {
        None => unavailable(),
        Some(outcome) => {
            let mapping = outcome
                .mapping
                .into_iter()
                .map(|(old, new)| {
                    Value::Array(vec![
                        Value::Num(Number::U64(old.0.into())),
                        Value::Num(Number::U64(new.0.into())),
                    ])
                })
                .collect();
            Response::json(
                200,
                object(vec![
                    ("queries", Value::Num(Number::U64(outcome.queries as u64))),
                    ("mapping", Value::Array(mapping)),
                ]),
            )
        }
    }
}

fn parse_json_body(request: &Request) -> Result<Value, String> {
    wire::parse_body(request.body_str()?)
}

fn parse_id(raw: &str) -> Result<u32, Response> {
    raw.parse::<u32>().map_err(|_| Response::error(400, format!("bad id {raw:?} in path")))
}

/// Serialize an ad-hoc JSON object body.
fn object(fields: Vec<(&str, Value)>) -> String {
    serde_json::to_string(&object_value(fields)).expect("value trees always serialize")
}

/// An ad-hoc JSON object as a [`Value`] (for nesting inside [`object`]).
fn object_value(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}
