//! The daemon itself: one ingest thread owning the backend, an accept loop
//! spawning per-connection handlers, and the route table tying the wire API
//! to both.
//!
//! # Threading model
//!
//! Every backend operation is linearized through a single **ingest thread**
//! that owns the `Box<dyn MonitorBackend + Send>`. Connection handlers
//! never touch the backend; they enqueue a `Command` carrying a
//! one-shot reply channel onto a *bounded* crossbeam channel and block on
//! the reply. The bound is the backpressure mechanism: when publishers
//! outrun the monitor, their handler threads block in `send`, which blocks
//! their sockets, which pushes back on the clients — no queue ever grows
//! without bound. Fan-out to subscribers happens on the ingest thread
//! *before* the publisher gets its receipt, so publish-then-poll is
//! deterministic: once `POST /publish` returns, every subscriber can see
//! the receipt's changes.
//!
//! # Drain and shutdown
//!
//! [`CtkServer::drain`] is the graceful half: new publishes (and restores)
//! are refused with 503, a barrier command flushes everything already
//! queued, and long-pollers are woken to read out their buffered events
//! with `draining: true`. Reads (`results`, `stats`, `snapshot`) keep
//! working — a drained server is exactly the right moment to snapshot.
//! [`CtkServer::shutdown`] drains, stops the ingest thread, unblocks the
//! accept loop and joins both.
//!
//! # Durability
//!
//! With [`ServerBuilder::journal_dir`] set, every mutating command is
//! appended to a write-ahead [`Journal`] *before* it is acked (registers
//! journal right after the id is assigned, rolling back on a failed
//! append). On startup the ingest thread restores the latest checkpoint,
//! replays the journal tail, re-checkpoints so the on-disk state speaks
//! the new process's id space, and only then reports ready — `GET /readyz`
//! answers `503 warming` until replay finishes, while `GET /healthz` stays
//! pure liveness.

use crate::http::{self, Request, Response};
use crate::journal::{FsyncPolicy, Journal, JournalConfig, Recovery};
use crate::subscribers::SubscriberRegistry;
use crate::wire;
use continuous_topk::{EngineKind, MonitorBuilder};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use ctk_common::{Namespace, QueryId, ScoredDoc};
use ctk_core::{
    AdaptiveConfig, Admission, DocPruning, IndexConfig, IngestConfig, NamespaceStats,
    PostingsStorage, PublishReceipt, PublishRequest, QueryOptions, ReplayCommand, Replayer,
    RetentionPolicy, ShardingMode, Snapshot, SnapshotWriter, StorageStats,
};
use serde::{Number, Serialize, Value};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Longest a single long-poll may block server-side, whatever the client
/// asks for. Clients needing more re-issue the poll; this bounds how long a
/// handler thread can sit in the registry's condvar.
const MAX_POLL_TIMEOUT: Duration = Duration::from_secs(30);

/// Idle-read timeout on keep-alive connections: how often a parked handler
/// thread re-checks whether the server is stopping.
const IDLE_RECHECK: Duration = Duration::from_secs(5);

/// What a publish handler does when the bounded ingest queue is full — the
/// server's typed backpressure policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdmissionPolicy {
    /// Block the handler thread in `send` until a slot frees (the classic
    /// TCP-backpressure behavior: a slow monitor pushes back on publishers
    /// through their own sockets). The default.
    #[default]
    Block,
    /// Refuse immediately with HTTP 429 + `Retry-After` and an
    /// [`Admission::Overloaded`] body instead of blocking. `retry_after` is
    /// the hint (in seconds) sent to the client.
    Reject {
        /// Seconds the client should wait before retrying (also sent as the
        /// `Retry-After` header, rounded up to whole seconds, minimum 1).
        retry_after: f64,
    },
}

impl AdmissionPolicy {
    /// The `Retry-After` header value: whole seconds, rounded up, min 1.
    fn retry_after_secs(retry_after: f64) -> u64 {
        retry_after.ceil().max(1.0) as u64
    }
}

/// The server-side knobs as one value — the daemon counterpart of the
/// monitor's [`IngestConfig`]/[`IndexConfig`]: ingest-queue bound, admission
/// policy, and subscriber delivery limits. The flat [`ServerBuilder`]
/// methods write through to the same fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// In-flight command bound of the ingest queue (must be ≥ 1). Publish
    /// handlers block — or are refused, per
    /// [`ServeConfig::admission`] — once this many commands are queued.
    pub queue_depth: usize,
    /// Per-subscriber buffered-change cap; beyond it the oldest events are
    /// dropped and the gap is reported on the next poll.
    pub subscriber_buffer: usize,
    /// Most events one `GET /changes` response may carry (must be ≥ 1).
    pub max_poll_events: usize,
    /// Full-queue behavior on the publish path.
    pub admission: AdmissionPolicy,
    /// Directory for the write-ahead publish journal; `None` (the default)
    /// runs without durability, exactly as before.
    pub journal_dir: Option<PathBuf>,
    /// When journal appends reach the disk (ignored without
    /// [`ServeConfig::journal_dir`]).
    pub fsync: FsyncPolicy,
    /// Journal segment rotation threshold in bytes.
    pub journal_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 16,
            subscriber_buffer: 1024,
            max_poll_events: 512,
            admission: AdmissionPolicy::Block,
            journal_dir: None,
            fsync: FsyncPolicy::Always,
            journal_max_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServeConfig {
    /// Set the ingest-queue bound.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "the ingest queue needs at least one slot");
        self.queue_depth = depth;
        self
    }

    /// Set the per-subscriber buffered-change cap.
    pub fn subscriber_buffer(mut self, capacity: usize) -> Self {
        self.subscriber_buffer = capacity;
        self
    }

    /// Set the per-poll event cap.
    pub fn max_poll_events(mut self, max: usize) -> Self {
        assert!(max >= 1, "a poll must be able to deliver at least one event");
        self.max_poll_events = max;
        self
    }

    /// Set the full-queue publish behavior.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enable the write-ahead journal in `dir`.
    pub fn journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Set the journal fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the journal segment rotation threshold.
    pub fn journal_max_bytes(mut self, bytes: u64) -> Self {
        self.journal_max_bytes = bytes;
        self
    }
}

/// Configures and starts a [`CtkServer`]. Forwards every [`MonitorBuilder`]
/// knob, then adds the server-side ones (queue depth, admission policy,
/// subscriber buffers) — flat per-knob methods or whole profiles via
/// [`ServerBuilder::serve`]/[`ServerBuilder::ingest`]/[`ServerBuilder::index`].
///
/// ```no_run
/// use ctk_server::{AdmissionPolicy, ServerBuilder};
/// use continuous_topk::EngineKind;
///
/// let server = ServerBuilder::new(EngineKind::Mrio)
///     .lambda(1e-3)
///     .shards(4)
///     .queue_depth(32)
///     .admission(AdmissionPolicy::Reject { retry_after: 0.25 })
///     .bind("127.0.0.1:0")
///     .unwrap();
/// println!("listening on {}", server.addr());
/// ```
#[derive(Clone)]
pub struct ServerBuilder {
    monitor: MonitorBuilder,
    engine: EngineKind,
    serve: ServeConfig,
}

impl ServerBuilder {
    /// Start from an engine choice with default knobs everywhere.
    pub fn new(engine: EngineKind) -> ServerBuilder {
        ServerBuilder {
            monitor: MonitorBuilder::new(engine),
            engine,
            serve: ServeConfig::default(),
        }
    }

    // --- MonitorBuilder knobs, forwarded verbatim. ---

    /// Decay parameter λ (see [`MonitorBuilder::lambda`]).
    pub fn lambda(mut self, lambda: f64) -> ServerBuilder {
        self.monitor = self.monitor.lambda(lambda);
        self
    }

    /// Shard count; more than 1 builds a sharded backend.
    pub fn shards(mut self, shards: usize) -> ServerBuilder {
        self.monitor = self.monitor.shards(shards);
        self
    }

    /// Work-partitioning mode for sharded backends.
    pub fn sharding(mut self, mode: ShardingMode) -> ServerBuilder {
        self.monitor = self.monitor.sharding(mode);
        self
    }

    /// Ingestion batch size of sharded backends.
    pub fn batch_size(mut self, batch_size: usize) -> ServerBuilder {
        self.monitor = self.monitor.batch_size(batch_size);
        self
    }

    /// Pipelining window of sharded backends.
    pub fn pipeline_window(mut self, window: usize) -> ServerBuilder {
        self.monitor = self.monitor.pipeline_window(window);
        self
    }

    /// AIMD adaptive ingest chunking on sharded backends (see
    /// [`MonitorBuilder::adaptive_batching`]).
    pub fn adaptive_batching(mut self, cfg: AdaptiveConfig) -> ServerBuilder {
        self.monitor = self.monitor.adaptive_batching(cfg);
        self
    }

    /// Replace the backend's whole ingestion profile (see
    /// [`MonitorBuilder::ingest`]).
    pub fn ingest(mut self, ingest: IngestConfig) -> ServerBuilder {
        self.monitor = self.monitor.ingest(ingest);
        self
    }

    /// Replace the backend's whole index profile (see
    /// [`MonitorBuilder::index`]).
    pub fn index(mut self, index: IndexConfig) -> ServerBuilder {
        self.monitor = self.monitor.index(index);
        self
    }

    /// Index compaction threshold.
    pub fn compact_at(mut self, ratio: f64) -> ServerBuilder {
        self.monitor = self.monitor.compact_at(ratio);
        self
    }

    /// Document-epoch pruning mode.
    pub fn doc_pruning(mut self, pruning: DocPruning) -> ServerBuilder {
        self.monitor = self.monitor.doc_pruning(pruning);
        self
    }

    /// Postings-storage backend (see [`MonitorBuilder::postings_storage`]).
    pub fn postings_storage(mut self, storage: PostingsStorage) -> ServerBuilder {
        self.monitor = self.monitor.postings_storage(storage);
        self
    }

    /// RAM budget for paged storage (see [`MonitorBuilder::page_budget`]).
    pub fn page_budget(mut self, bytes: usize) -> ServerBuilder {
        self.monitor = self.monitor.page_budget(bytes);
        self
    }

    // --- Server-side knobs. ---

    /// In-flight command bound of the ingest queue. Publish handlers block
    /// (or are refused, per [`ServerBuilder::admission`]) once this many
    /// commands are queued — the backpressure knob.
    pub fn queue_depth(mut self, depth: usize) -> ServerBuilder {
        self.serve = self.serve.queue_depth(depth);
        self
    }

    /// Per-subscriber buffered-change cap; beyond it the oldest events are
    /// dropped and the gap is reported on the next poll.
    pub fn subscriber_buffer(mut self, capacity: usize) -> ServerBuilder {
        self.serve = self.serve.subscriber_buffer(capacity);
        self
    }

    /// Most events one `GET /changes` response may carry.
    pub fn max_poll_events(mut self, max: usize) -> ServerBuilder {
        self.serve = self.serve.max_poll_events(max);
        self
    }

    /// Full-queue behavior on the publish path (see [`AdmissionPolicy`]).
    pub fn admission(mut self, policy: AdmissionPolicy) -> ServerBuilder {
        self.serve = self.serve.admission(policy);
        self
    }

    /// Enable the write-ahead publish journal in `dir`: every mutating
    /// command becomes durable (per [`ServerBuilder::fsync`]) before it is
    /// acked, and a restart replays the tail past the latest checkpoint.
    pub fn journal_dir(mut self, dir: impl Into<PathBuf>) -> ServerBuilder {
        self.serve = self.serve.journal_dir(dir);
        self
    }

    /// Journal fsync policy (see [`FsyncPolicy`]; default `always`).
    pub fn fsync(mut self, policy: FsyncPolicy) -> ServerBuilder {
        self.serve = self.serve.fsync(policy);
        self
    }

    /// Journal segment rotation threshold in bytes (default 64 MiB).
    pub fn journal_max_bytes(mut self, bytes: u64) -> ServerBuilder {
        self.serve = self.serve.journal_max_bytes(bytes);
        self
    }

    /// Replace the whole server-side profile at once (see [`ServeConfig`]).
    pub fn serve(mut self, serve: ServeConfig) -> ServerBuilder {
        self.serve = serve;
        self
    }

    /// Bind a listener, spawn the ingest and accept threads, and return the
    /// running server. Bind to port 0 for an ephemeral port (tests).
    ///
    /// With a journal configured, the journal directory is opened and
    /// validated *here* — an unreadable checkpoint, a snapshot from a newer
    /// build, or mid-journal corruption fail the bind with a descriptive
    /// error (a torn final record does not; it is truncated). The
    /// restore-and-replay work itself happens on the ingest thread after
    /// `bind` returns: the server answers `503 warming` (and `GET /readyz`
    /// stays 503) until replay finishes.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<CtkServer> {
        assert!(self.serve.queue_depth >= 1, "the ingest queue needs at least one slot");
        assert!(self.serve.max_poll_events >= 1, "a poll must deliver at least one event");
        let journal = match &self.serve.journal_dir {
            None => None,
            Some(dir) => {
                let config = JournalConfig::new(dir)
                    .fsync(self.serve.fsync)
                    .max_segment_bytes(self.serve.journal_max_bytes);
                Some(Journal::open(config)?)
            }
        };
        let warming = journal.as_ref().is_some_and(|(_, recovery)| !recovery.is_empty());
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let backend = self.monitor.build();
        let (tx, rx) = channel::bounded::<Command>(self.serve.queue_depth);
        let shared = Arc::new(Shared {
            commands: tx,
            queue: QueueGauge {
                capacity: self.serve.queue_depth,
                depth: AtomicUsize::new(0),
                highwater: AtomicUsize::new(0),
            },
            admission: self.serve.admission,
            subscribers: SubscriberRegistry::new(self.serve.subscriber_buffer),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            warming: AtomicBool::new(warming),
            max_poll_events: self.serve.max_poll_events,
            engine: self.engine,
        });

        let ingest = {
            let shared = Arc::clone(&shared);
            let builder = self.monitor.clone();
            thread::Builder::new()
                .name("ctk-ingest".to_string())
                .spawn(move || ingest_loop(rx, backend, builder, journal, &shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ctk-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))?
        };
        Ok(CtkServer { addr, shared, ingest: Some(ingest), accept: Some(accept) })
    }
}

/// A running daemon. Dropping it without [`CtkServer::shutdown`] leaves the
/// threads running for the life of the process (what a daemon `main` wants);
/// tests call `shutdown` for a clean join.
pub struct CtkServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ingest: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl CtkServer {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`CtkServer::drain`] has run (or `POST /admin/drain`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// True while the ingest thread is still restoring the journal's
    /// checkpoint and replaying its tail (`GET /readyz` answers 503).
    pub fn is_warming(&self) -> bool {
        self.shared.warming.load(Ordering::SeqCst)
    }

    /// Gracefully drain: refuse new publishes with 503, finish the ones
    /// already queued, then wake every long-poller so it can flush its
    /// buffered events. Idempotent. Blocks until in-flight publishes have
    /// fanned out.
    pub fn drain(&self) {
        drain(&self.shared);
    }

    /// Drain, then stop and join the ingest and accept threads. Connection
    /// handlers are detached; any still parked on an idle keep-alive socket
    /// notice `stopping` within the idle-recheck interval and exit.
    pub fn shutdown(mut self) {
        self.drain();
        self.shared.stopping.store(true, Ordering::SeqCst);
        let _ = self.shared.enqueue(Command::Stop);
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join();
        }
        // The accept loop is parked in `accept`; poke it with a connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Occupancy of the bounded ingest queue, maintained handler-side: the
/// vendored channel exposes no `len`, so handlers count commands in (at
/// enqueue, blocked senders included) and the ingest thread counts them
/// out (at receive). Feeds `GET /stats` and the `Enqueued { depth }`
/// admission state.
struct QueueGauge {
    capacity: usize,
    depth: AtomicUsize,
    highwater: AtomicUsize,
}

/// State shared by the accept loop, every connection handler, and the
/// ingest thread.
struct Shared {
    commands: Sender<Command>,
    queue: QueueGauge,
    admission: AdmissionPolicy,
    subscribers: SubscriberRegistry,
    draining: AtomicBool,
    stopping: AtomicBool,
    /// True from bind until the ingest thread has restored the journal's
    /// checkpoint and replayed its tail; every route except `/healthz` and
    /// `/readyz` answers 503 while set.
    warming: AtomicBool,
    max_poll_events: usize,
    engine: EngineKind,
}

impl Shared {
    /// Enqueue a command, blocking while the queue is full. Returns the
    /// number of commands that were ahead of it, or `None` when the ingest
    /// thread is gone. Every producer goes through here (or
    /// [`Shared::try_enqueue`]) so the gauge stays balanced with the ingest
    /// loop's decrement.
    fn enqueue(&self, command: Command) -> Option<usize> {
        let ahead = self.queue.depth.fetch_add(1, Ordering::SeqCst);
        self.queue.highwater.fetch_max(ahead + 1, Ordering::SeqCst);
        if self.commands.send(command).is_err() {
            self.queue.depth.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(ahead)
    }

    /// Enqueue without blocking: `Err(None)` when the queue is full,
    /// `Err(Some(..))` rethrowing disconnection as unavailability.
    fn try_enqueue(&self, command: Command) -> Result<usize, TryEnqueueError> {
        let ahead = self.queue.depth.fetch_add(1, Ordering::SeqCst);
        match self.commands.try_send(command) {
            Ok(()) => {
                self.queue.highwater.fetch_max(ahead + 1, Ordering::SeqCst);
                Ok(ahead)
            }
            Err(e) => {
                self.queue.depth.fetch_sub(1, Ordering::SeqCst);
                match e {
                    TrySendError::Full(_) => Err(TryEnqueueError::Full),
                    TrySendError::Disconnected(_) => Err(TryEnqueueError::Gone),
                }
            }
        }
    }
}

enum TryEnqueueError {
    Full,
    Gone,
}

/// One backend operation, linearized through the ingest queue. Each carries
/// a one-shot reply channel; a handler whose reply channel dies (ingest
/// thread already stopped) reports 503. Mutating commands reply with a
/// `Result`: `Err` means the journal refused the write (→ 500), and the
/// command was **not** applied.
enum Command {
    Register(wire::RegisterRequest, Sender<Result<QueryId, String>>),
    Unregister(QueryId, Sender<Result<bool, String>>),
    Publish(PublishRequest, Sender<Result<PublishReceipt, String>>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Stats(Sender<BackendStats>),
    /// Capture a snapshot; with a journal active this is a checkpoint (the
    /// snapshot lands in `checkpoint.json` and the journal truncates).
    Snapshot(Sender<Result<Snapshot, String>>),
    Restore(Box<Snapshot>, Sender<Result<RestoreOutcome, String>>),
    /// Install a namespace's retention policy (interning the name).
    SetRetention(String, RetentionPolicy, Sender<Result<(), String>>),
    /// Read a namespace's policy; outer `None` = unknown namespace, inner
    /// `None` = known but no policy installed.
    GetRetention(String, Sender<Option<Option<RetentionPolicy>>>),
    /// Bulk-remove a namespace's queries (`dry_run` only counts them);
    /// `None` = unknown namespace.
    Forget {
        namespace: String,
        dry_run: bool,
        reply: Sender<Result<Option<usize>, String>>,
    },
    /// Replies once everything queued before it has been processed.
    Barrier(Sender<()>),
    Stop,
}

/// The ingest thread's answer to a stats request.
struct BackendStats {
    queries: usize,
    shards: usize,
    sharding: ShardingMode,
    lambda: f64,
    publishes: u64,
    docs_published: u64,
    expired: u64,
    evicted: u64,
    namespaces: Vec<NamespaceStats>,
    storage: StorageStats,
    /// Journal bytes appended since the last checkpoint (0 without a
    /// journal).
    journal_bytes: u64,
    /// Sequence number the latest checkpoint covers (0 = none).
    last_checkpoint: u64,
    /// Journal records replayed at startup.
    replayed_records: u64,
}

/// The ingest thread's answer to a restore: the new backend's query count
/// plus the captured-id → new-id mapping, sorted by captured id.
struct RestoreOutcome {
    queries: usize,
    mapping: Vec<(QueryId, QueryId)>,
}

/// Append `command` to the journal, if one is active. `Err` means the
/// command must not be applied (the caller replies 500 and the backend is
/// untouched).
fn journal_append(journal: &mut Option<Journal>, command: &ReplayCommand) -> Result<(), String> {
    match journal.as_mut() {
        None => Ok(()),
        Some(j) => j
            .append(command)
            .map(|_| ())
            .map_err(|e| format!("journal append failed ({} refused): {e}", command.op())),
    }
}

/// Restore the checkpoint and replay the journal tail into a fresh backend,
/// then re-checkpoint. The final checkpoint is not cosmetic: journal records
/// written *after* it will name query ids from **this** process's id space,
/// so the on-disk state must be re-anchored in that space before the first
/// new append — otherwise a second crash could replay new records against
/// the old checkpoint's ids.
fn recover(
    backend: &mut Box<dyn ctk_core::MonitorBackend + Send>,
    builder: &MonitorBuilder,
    journal: &mut Journal,
    recovery: Recovery,
) -> io::Result<u64> {
    let mut replayer = match recovery.snapshot {
        None => Replayer::new(),
        Some(snapshot) => {
            let (restored, mapping) = builder.restore(&snapshot);
            *backend = restored;
            Replayer::with_mapping(mapping)
        }
    };
    let replayed = recovery.commands.len() as u64;
    for command in recovery.commands {
        replayer.apply(backend.as_mut(), command);
    }
    journal.checkpoint(&backend.snapshot())?;
    Ok(replayed)
}

fn ingest_loop(
    rx: Receiver<Command>,
    mut backend: Box<dyn ctk_core::MonitorBackend + Send>,
    builder: MonitorBuilder,
    journal: Option<(Journal, Recovery)>,
    shared: &Shared,
) {
    let mut replayed_records = 0u64;
    let mut journal = match journal {
        None => None,
        Some((mut journal, recovery)) => {
            if !recovery.is_empty() {
                match recover(&mut backend, &builder, &mut journal, recovery) {
                    Ok(replayed) => replayed_records = replayed,
                    Err(e) => {
                        // Serving without a coherent checkpoint would let a
                        // later crash replay against the wrong id space;
                        // refuse to run instead.
                        eprintln!("ctk-serve: journal recovery cannot checkpoint: {e}");
                        std::process::exit(1);
                    }
                }
            }
            Some(journal)
        }
    };
    shared.warming.store(false, Ordering::SeqCst);

    let mut publishes = 0u64;
    let mut docs_published = 0u64;
    while let Ok(command) = rx.recv() {
        shared.queue.depth.fetch_sub(1, Ordering::SeqCst);
        match command {
            Command::Stop => {
                if let Some(j) = journal.as_mut() {
                    let _ = j.sync();
                }
                break;
            }
            Command::Register(req, reply) => {
                let name = req.namespace.clone().unwrap_or_default();
                let namespace = match req.namespace.as_deref() {
                    None => Namespace::DEFAULT,
                    Some(name) => backend.intern_namespace(name),
                };
                let opts = QueryOptions { namespace, max_age: req.max_age };
                // Register is the one apply-before-append command: the
                // journal record needs the assigned id. A failed append
                // rolls the registration back before the error is acked.
                let spec = req.spec.clone();
                let qid = backend.register_with(req.spec, opts);
                let record = ReplayCommand::Register {
                    assigned: qid,
                    spec,
                    namespace: name,
                    max_age: req.max_age,
                };
                let _ = reply.send(match journal_append(&mut journal, &record) {
                    Ok(()) => Ok(qid),
                    Err(e) => {
                        backend.unregister(qid);
                        Err(e)
                    }
                });
            }
            Command::Unregister(qid, reply) => {
                // A 404 mutates nothing, so it stays out of the journal —
                // only an unregister that will actually remove a query is
                // appended (and acked) as a record.
                let _ = reply.send(if backend.namespace_of(qid).is_none() {
                    Ok(false)
                } else {
                    journal_append(&mut journal, &ReplayCommand::Unregister { qid })
                        .map(|()| backend.unregister(qid))
                });
            }
            Command::Publish(request, reply) => {
                if let Err(e) = journal_append(&mut journal, &ReplayCommand::publish(&request)) {
                    let _ = reply.send(Err(e));
                    continue;
                }
                publishes += 1;
                docs_published += request.len() as u64;
                let receipt = backend.publish_request(request);
                // Fan out before acking: once the publisher has its
                // receipt, every subscriber buffer already holds the
                // changes.
                shared.subscribers.fanout(&receipt);
                let _ = reply.send(Ok(receipt));
            }
            Command::Results(qid, reply) => {
                let _ = reply.send(backend.results(qid));
            }
            Command::Stats(reply) => {
                let (expired, evicted) = backend.lifecycle_totals();
                let _ = reply.send(BackendStats {
                    queries: backend.num_queries(),
                    shards: backend.shards(),
                    sharding: backend.sharding_mode(),
                    lambda: backend.lambda(),
                    publishes,
                    docs_published,
                    expired,
                    evicted,
                    namespaces: backend.namespace_stats(),
                    storage: backend.storage_stats(),
                    journal_bytes: journal.as_ref().map_or(0, Journal::bytes),
                    last_checkpoint: journal.as_ref().map_or(0, Journal::last_checkpoint),
                    replayed_records,
                });
            }
            Command::Snapshot(reply) => {
                let snapshot = backend.snapshot();
                let outcome = match journal.as_mut() {
                    None => Ok(snapshot),
                    // The snapshot doubles as a checkpoint: once it is on
                    // disk the journal truncates, so a crash now replays
                    // from this snapshot instead of the whole tail.
                    Some(j) => j
                        .checkpoint(&snapshot)
                        .map(|_| snapshot)
                        .map_err(|e| format!("journal checkpoint failed: {e}")),
                };
                let _ = reply.send(outcome);
            }
            Command::Restore(snapshot, reply) => {
                let (restored, mapping) = builder.restore(&snapshot);
                backend = restored;
                let mut mapping: Vec<(QueryId, QueryId)> = mapping.into_iter().collect();
                mapping.sort_unstable_by_key(|&(old, _)| old);
                // Follow the surviving queries to their new ids before the
                // restorer gets its ack — a subscriber filtered on an old id
                // must never see (or miss) a post-restore change because its
                // filter still spoke the pre-restore id space.
                shared.subscribers.remap_filters(&mapping);
                // A restore replaces the whole monitor, so the journal's
                // history no longer describes the live state: checkpoint the
                // restored snapshot rather than journaling the restore.
                let outcome = match journal.as_mut() {
                    None => Ok(()),
                    Some(j) => j
                        .checkpoint(&backend.snapshot())
                        .map(|_| ())
                        .map_err(|e| format!("journal checkpoint failed: {e}")),
                };
                let _ = reply.send(
                    outcome.map(|()| RestoreOutcome { queries: backend.num_queries(), mapping }),
                );
            }
            Command::SetRetention(name, policy, reply) => {
                let record = ReplayCommand::SetRetention { namespace: name.clone(), policy };
                let _ = reply.send(journal_append(&mut journal, &record).map(|()| {
                    let ns = backend.intern_namespace(&name);
                    backend.set_retention(ns, policy);
                }));
            }
            Command::GetRetention(name, reply) => {
                let _ = reply.send(backend.find_namespace(&name).map(|ns| backend.retention(ns)));
            }
            Command::Forget { namespace, dry_run, reply } => {
                // Dry runs and 404s mutate nothing and stay out of the
                // journal; only a forget that will actually remove queries
                // is appended before it is applied and acked.
                let outcome = match backend.find_namespace(&namespace) {
                    None => Ok(None),
                    Some(_) if dry_run => Ok(Some(
                        backend
                            .namespace_stats()
                            .into_iter()
                            .find(|s| s.namespace == namespace)
                            .map_or(0, |s| s.live as usize),
                    )),
                    Some(ns) => {
                        let record = ReplayCommand::Forget { namespace: namespace.clone() };
                        journal_append(&mut journal, &record)
                            .map(|()| Some(backend.forget_namespace(ns)))
                    }
                };
                let _ = reply.send(outcome);
            }
            Command::Barrier(reply) => {
                // A drain barrier is the last thing before a planned stop or
                // snapshot; make lazily-synced journals durable here too.
                if let Some(j) = journal.as_mut() {
                    let _ = j.sync();
                }
                let _ = reply.send(());
            }
        }
    }
}

fn drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Everything queued before this barrier — publishes included — has been
    // processed and fanned out by the time it acks.
    let (tx, rx) = channel::bounded(1);
    if shared.enqueue(Command::Barrier(tx)).is_some() {
        let _ = rx.recv();
    }
    shared.subscribers.begin_drain();
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        // Handlers are detached: they die with the connection (or notice
        // `stopping` at the next idle recheck).
        let _ = thread::Builder::new()
            .name("ctk-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_RECHECK));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let request = match Request::read_from(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) => {
                let _ = Response::error(400, e).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = !request.wants_close();
        if request.method == "POST"
            && request.path == "/snapshot"
            && request.query_param("stream").is_some_and(|v| v == "1")
        {
            // Streamed responses are framed by EOF, so this is always the
            // connection's last exchange.
            let _ = stream_snapshot(&mut writer, shared);
            return;
        }
        let response = route(&request, shared);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// `POST /snapshot?stream=1`: capture the snapshot and stream its JSON to
/// the socket with [`SnapshotWriter`] — per-shard sections serialized
/// concurrently, never materialized as one tree or string. Byte-identical
/// to the buffered `POST /snapshot` body, so `POST /restore` (and
/// `Snapshot::from_json`) accept it unchanged.
fn stream_snapshot<W: Write>(w: &mut W, shared: &Shared) -> io::Result<()> {
    // This path bypasses `route`, so it repeats the warming gate.
    if shared.warming.load(Ordering::SeqCst) {
        return warming().write_to(w, false);
    }
    match ask(shared, Command::Snapshot) {
        None => unavailable().write_to(w, false),
        Some(Err(e)) => Response::error(500, e).write_to(w, false),
        Some(Ok(snapshot)) => {
            http::write_stream_head(w, 200)?;
            SnapshotWriter::new().write(&snapshot, w)?;
            w.flush()
        }
    }
}

/// Issue one command and wait for the reply. `None` (→ 503) when the ingest
/// thread is gone.
fn ask<T>(shared: &Shared, make: impl FnOnce(Sender<T>) -> Command) -> Option<T> {
    let (tx, rx) = channel::bounded(1);
    shared.enqueue(make(tx))?;
    rx.recv().ok()
}

fn unavailable() -> Response {
    Response::error(503, "server is shutting down")
}

fn warming() -> Response {
    Response::error(503, "warming: journal replay in progress")
}

fn route(request: &Request, shared: &Shared) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    // Liveness and readiness stay reachable while the journal is replaying;
    // everything else waits for recovery to finish.
    if shared.warming.load(Ordering::SeqCst)
        && !matches!(segments.as_slice(), ["healthz"] | ["readyz"])
    {
        return warming();
    }
    match (request.method.as_str(), segments.as_slice()) {
        // Pure liveness: 200 for as long as the process can answer at all,
        // replaying or draining included — restarting a warming server
        // because it is "unhealthy" would only make recovery start over.
        ("GET", ["healthz"]) => Response::json(
            200,
            object(vec![
                ("ok", Value::Bool(true)),
                ("draining", Value::Bool(shared.draining.load(Ordering::SeqCst))),
                ("warming", Value::Bool(shared.warming.load(Ordering::SeqCst))),
            ]),
        ),
        // Readiness: route traffic here only once replay is done and the
        // server is not draining away.
        ("GET", ["readyz"]) => {
            let warming = shared.warming.load(Ordering::SeqCst);
            let draining = shared.draining.load(Ordering::SeqCst);
            let ready = !warming && !draining;
            Response::json(
                if ready { 200 } else { 503 },
                object(vec![
                    ("ready", Value::Bool(ready)),
                    ("warming", Value::Bool(warming)),
                    ("draining", Value::Bool(draining)),
                ]),
            )
        }
        ("GET", ["stats"]) => handle_stats(shared),
        ("POST", ["queries"]) => handle_register(request, shared),
        ("DELETE", ["queries", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(qid) => match ask(shared, |tx| Command::Unregister(QueryId(qid), tx)) {
                None => unavailable(),
                Some(Err(e)) => Response::error(500, e),
                Some(Ok(true)) => Response::json(200, object(vec![("removed", Value::Bool(true))])),
                Some(Ok(false)) => Response::error(404, format!("unknown query {qid}")),
            },
        },
        ("GET", ["queries", id, "results"]) => match parse_id(id) {
            Err(response) => response,
            Ok(qid) => match ask(shared, |tx| Command::Results(QueryId(qid), tx)) {
                None => unavailable(),
                Some(None) => Response::error(404, format!("unknown query {qid}")),
                Some(Some(results)) => Response::json(
                    200,
                    object(vec![
                        ("query", Value::Num(Number::U64(qid.into()))),
                        ("results", results.to_value()),
                    ]),
                ),
            },
        },
        ("POST", ["publish"]) => handle_publish(request, shared),
        ("POST", ["subscriptions"]) => handle_subscribe(request, shared),
        ("DELETE", ["subscriptions", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(id) => {
                if shared.subscribers.unsubscribe(id.into()) {
                    Response::json(200, object(vec![("removed", Value::Bool(true))]))
                } else {
                    Response::error(404, format!("unknown subscriber {id}"))
                }
            }
        },
        ("GET", ["changes"]) => handle_changes(request, shared),
        // `to_json` (pretty), not a compact `to_string`: the buffered body
        // is byte-identical to `?stream=1`'s streamed one, so clients can
        // treat the two interchangeably.
        ("POST", ["snapshot"]) => match ask(shared, Command::Snapshot) {
            None => unavailable(),
            Some(Err(e)) => Response::error(500, e),
            Some(Ok(snapshot)) => match snapshot.to_json() {
                Ok(body) => Response::json(200, body),
                Err(e) => Response::error(500, e),
            },
        },
        ("POST", ["restore"]) => handle_restore(request, shared),
        ("PUT", ["namespaces", ns, "retention"]) => handle_set_retention(ns, request, shared),
        ("GET", ["namespaces", ns, "retention"]) => handle_get_retention(ns, shared),
        ("POST", ["forget"]) => handle_forget(request, shared),
        ("POST", ["admin", "drain"]) => {
            drain(shared);
            Response::json(202, object(vec![("draining", Value::Bool(true))]))
        }
        (
            _,
            ["healthz" | "readyz" | "stats" | "queries" | "publish" | "subscriptions" | "changes"
            | "snapshot" | "restore" | "namespaces" | "forget" | "admin", ..],
        ) => Response::error(405, format!("{} is not supported here", request.method)),
        _ => Response::error(404, format!("no route for {}", request.path)),
    }
}

fn handle_stats(shared: &Shared) -> Response {
    let backend = match ask(shared, Command::Stats) {
        None => return unavailable(),
        Some(stats) => stats,
    };
    let (delivered, dropped) = shared.subscribers.totals();
    let stats = ServerStats {
        engine: shared.engine.to_string(),
        lambda: backend.lambda,
        shards: backend.shards,
        sharding: backend.sharding.to_string(),
        queries: backend.queries,
        publishes: backend.publishes,
        docs_published: backend.docs_published,
        expired: backend.expired,
        evicted: backend.evicted,
        namespaces: backend.namespaces,
        index_bytes: backend.storage.index_bytes,
        hot_pages: backend.storage.hot_pages,
        cold_pages: backend.storage.cold_pages,
        page_faults: backend.storage.page_faults,
        queue_capacity: shared.queue.capacity,
        queue_depth: shared.queue.depth.load(Ordering::SeqCst),
        queue_highwater: shared.queue.highwater.load(Ordering::SeqCst),
        subscribers: shared.subscribers.len(),
        events_delivered: delivered,
        events_dropped: dropped,
        draining: shared.draining.load(Ordering::SeqCst),
        warming: shared.warming.load(Ordering::SeqCst),
        journal_bytes: backend.journal_bytes,
        last_checkpoint: backend.last_checkpoint,
        replayed_records: backend.replayed_records,
    };
    match serde_json::to_string(&stats) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, e),
    }
}

/// The `GET /stats` response body.
#[derive(Debug, Clone, Serialize)]
pub struct ServerStats {
    pub engine: String,
    pub lambda: f64,
    pub shards: usize,
    pub sharding: String,
    pub queries: usize,
    pub publishes: u64,
    pub docs_published: u64,
    /// Queries removed by TTL expiry, lifetime total.
    pub expired: u64,
    /// Queries removed by retention-cap eviction, lifetime total.
    pub evicted: u64,
    /// Per-namespace live/expired/evicted counts, handle order (the default
    /// namespace — the empty name — is always first).
    pub namespaces: Vec<NamespaceStats>,
    /// Estimated heap bytes of the query index(es), summed across shards;
    /// paged storage excludes spilled payloads.
    pub index_bytes: u64,
    /// Sealed-block pages currently RAM-resident (paged storage only).
    pub hot_pages: u64,
    /// Sealed-block pages spilled to disk (paged storage only).
    pub cold_pages: u64,
    /// Reads that faulted a page back from the spill file, lifetime total.
    pub page_faults: u64,
    /// Bound of the ingest command queue (the `queue_depth` knob).
    pub queue_capacity: usize,
    /// Commands currently enqueued (blocked senders included) — the live
    /// occupancy behind admission decisions.
    pub queue_depth: usize,
    /// Highest `queue_depth` observed since the server started.
    pub queue_highwater: usize,
    pub subscribers: usize,
    pub events_delivered: u64,
    pub events_dropped: u64,
    pub draining: bool,
    /// True while startup journal replay is still running.
    pub warming: bool,
    /// Journal bytes appended since the last checkpoint (0 without a
    /// journal).
    pub journal_bytes: u64,
    /// Sequence number the latest checkpoint covers (0 = none yet).
    pub last_checkpoint: u64,
    /// Journal records replayed at startup, after the checkpoint.
    pub replayed_records: u64,
}

fn handle_register(request: &Request, shared: &Shared) -> Response {
    let req = match parse_json_body(request).and_then(|body| wire::parse_register(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(req) => req,
    };
    let namespace = req.namespace.clone().unwrap_or_default();
    match ask(shared, |tx| Command::Register(req, tx)) {
        None => unavailable(),
        Some(Err(e)) => Response::error(500, e),
        Some(Ok(qid)) => Response::json(
            200,
            object(vec![
                ("query", Value::Num(Number::U64(qid.0.into()))),
                ("namespace", Value::Str(namespace)),
            ]),
        ),
    }
}

fn handle_set_retention(ns: &str, request: &Request, shared: &Shared) -> Response {
    let policy = match parse_json_body(request).and_then(|body| wire::parse_retention(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(policy) => policy,
    };
    match ask(shared, |tx| Command::SetRetention(ns.to_string(), policy, tx)) {
        None => unavailable(),
        Some(Err(e)) => Response::error(500, e),
        Some(Ok(())) => Response::json(200, retention_body(ns, Some(policy))),
    }
}

fn handle_get_retention(ns: &str, shared: &Shared) -> Response {
    match ask(shared, |tx| Command::GetRetention(ns.to_string(), tx)) {
        None => unavailable(),
        Some(None) => Response::error(404, format!("unknown namespace {ns:?}")),
        Some(Some(policy)) => Response::json(200, retention_body(ns, policy)),
    }
}

/// The `{PUT,GET} /namespaces/{ns}/retention` response body; `retention` is
/// `null` for a namespace with no installed policy.
fn retention_body(ns: &str, policy: Option<RetentionPolicy>) -> String {
    let retention = match policy {
        None => Value::Null,
        Some(p) => object_value(vec![
            ("max_age", p.max_age.map_or(Value::Null, |a| Value::Num(Number::F64(a)))),
            ("max_queries", p.max_queries.map_or(Value::Null, |c| Value::Num(Number::U64(c)))),
            ("eviction", Value::Str(wire::eviction_token(p.eviction).to_string())),
        ]),
    };
    object(vec![("namespace", Value::Str(ns.to_string())), ("retention", retention)])
}

fn handle_forget(request: &Request, shared: &Shared) -> Response {
    let req = match parse_json_body(request).and_then(|body| wire::parse_forget(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(req) => req,
    };
    if !req.dry_run && shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; destructive forgets are refused");
    }
    let dry_run = req.dry_run;
    let namespace = req.namespace.clone();
    match ask(shared, |tx| Command::Forget { namespace: req.namespace, dry_run, reply: tx }) {
        None => unavailable(),
        Some(Err(e)) => Response::error(500, e),
        Some(Ok(None)) => Response::error(404, format!("unknown namespace {namespace:?}")),
        Some(Ok(Some(count))) => Response::json(
            200,
            object(vec![
                ("namespace", Value::Str(namespace)),
                ("dry_run", Value::Bool(dry_run)),
                ("removed", Value::Num(Number::U64(count as u64))),
            ]),
        ),
    }
}

fn handle_publish(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; publishes are refused");
    }
    let publish = match parse_json_body(request).and_then(|body| wire::parse_publish(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(publish) => publish,
    };

    // Admission is decided at enqueue time: how many commands were ahead,
    // or — under `Reject` with a full queue — an immediate 429 with no
    // effects (the publish may be retried verbatim).
    let (reply_tx, reply_rx) = channel::bounded(1);
    let command = Command::Publish(publish, reply_tx);
    let ahead = match shared.admission {
        AdmissionPolicy::Block => match shared.enqueue(command) {
            None => return unavailable(),
            Some(ahead) => ahead,
        },
        AdmissionPolicy::Reject { retry_after } => match shared.try_enqueue(command) {
            Ok(ahead) => ahead,
            Err(TryEnqueueError::Gone) => return unavailable(),
            Err(TryEnqueueError::Full) => {
                let admission = Admission::Overloaded { retry_after };
                let body = object(vec![
                    ("error", Value::Str("ingest queue is full".to_string())),
                    ("admission", admission.to_value()),
                ]);
                return Response::json(429, body).with_header(
                    "retry-after",
                    AdmissionPolicy::retry_after_secs(retry_after).to_string(),
                );
            }
        },
    };
    let admission =
        if ahead == 0 { Admission::Accepted } else { Admission::Enqueued { depth: ahead } };
    match reply_rx.recv() {
        Err(_) => unavailable(),
        Ok(Err(e)) => Response::error(500, e),
        Ok(Ok(receipt)) => {
            // The receipt object plus how the publish was admitted.
            let mut value = receipt.to_value();
            if let Value::Object(entries) = &mut value {
                entries.push(("admission".to_string(), admission.to_value()));
            }
            match serde_json::to_string(&value) {
                Ok(body) => Response::json(200, body),
                Err(e) => Response::error(500, e),
            }
        }
    }
}

fn handle_subscribe(request: &Request, shared: &Shared) -> Response {
    let filter = match parse_json_body(request).and_then(|body| wire::parse_subscribe(&body)) {
        Err(message) => return Response::error(400, message),
        Ok(filter) => filter,
    };
    let id = shared.subscribers.subscribe(filter);
    Response::json(200, object(vec![("subscriber", Value::Num(Number::U64(id)))]))
}

fn handle_changes(request: &Request, shared: &Shared) -> Response {
    let id = match request.query_param("subscriber") {
        None => return Response::error(400, "missing \"subscriber\" query parameter"),
        Some(raw) => match raw.parse::<u64>() {
            Err(_) => return Response::error(400, format!("bad subscriber id {raw:?}")),
            Ok(id) => id,
        },
    };
    let timeout = match request.query_param("timeout_ms") {
        None => Duration::ZERO,
        Some(raw) => match raw.parse::<u64>() {
            Err(_) => return Response::error(400, format!("bad timeout_ms {raw:?}")),
            Ok(ms) => Duration::from_millis(ms).min(MAX_POLL_TIMEOUT),
        },
    };
    let max_events = match request.query_param("max") {
        None => shared.max_poll_events,
        Some(raw) => match raw.parse::<usize>() {
            Err(_) | Ok(0) => return Response::error(400, format!("bad max {raw:?}")),
            Ok(max) => max.min(shared.max_poll_events),
        },
    };
    match shared.subscribers.poll(id, max_events, timeout) {
        None => Response::error(404, format!("unknown subscriber {id}")),
        Some(outcome) => match serde_json::to_string(&outcome) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, e),
        },
    }
}

fn handle_restore(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining; restores are refused");
    }
    let body = match request.body_str() {
        Err(message) => return Response::error(400, message),
        Ok(body) => body,
    };
    // `from_json`, not a plain parse: the wire accepts any snapshot version
    // this build can migrate (v0–v2 captures restore into a v3 server).
    let snapshot: Snapshot = match Snapshot::from_json(body) {
        Err(e) => return Response::error(400, format!("invalid snapshot: {e}")),
        Ok(snapshot) => snapshot,
    };
    match ask(shared, |tx| Command::Restore(Box::new(snapshot), tx)) {
        None => unavailable(),
        Some(Err(e)) => Response::error(500, e),
        Some(Ok(outcome)) => {
            let mapping = outcome
                .mapping
                .into_iter()
                .map(|(old, new)| {
                    Value::Array(vec![
                        Value::Num(Number::U64(old.0.into())),
                        Value::Num(Number::U64(new.0.into())),
                    ])
                })
                .collect();
            Response::json(
                200,
                object(vec![
                    ("queries", Value::Num(Number::U64(outcome.queries as u64))),
                    ("mapping", Value::Array(mapping)),
                ]),
            )
        }
    }
}

fn parse_json_body(request: &Request) -> Result<Value, String> {
    wire::parse_body(request.body_str()?)
}

fn parse_id(raw: &str) -> Result<u32, Response> {
    raw.parse::<u32>().map_err(|_| Response::error(400, format!("bad id {raw:?} in path")))
}

/// Serialize an ad-hoc JSON object body.
fn object(fields: Vec<(&str, Value)>) -> String {
    serde_json::to_string(&object_value(fields)).expect("value trees always serialize")
}

/// An ad-hoc JSON object as a [`Value`] (for nesting inside [`object`]).
fn object_value(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}
