//! A tiny blocking HTTP/1.1 client for the daemon's own wire API.
//!
//! The integration tests and the `http_load` harness drive the server over
//! real loopback sockets; this client is the counterpart of [`crate::http`]
//! — one keep-alive connection, `Content-Length` framing, JSON string
//! bodies. It is intentionally not a general HTTP client (no redirects, no
//! TLS, no chunked encoding): it speaks exactly what [`crate::CtkServer`]
//! serves.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// One keep-alive connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    last_retry_after: Option<f64>,
}

impl HttpClient {
    /// Connect to `addr` (e.g. the value of `CtkServer::addr`).
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { reader: BufReader::new(stream), last_retry_after: None })
    }

    /// Connect with a bound on how long the TCP handshake may take — what a
    /// harness wants against a daemon that might be SIGSTOPped, dropping
    /// SYNs, or behind a dead route where plain `connect` can hang for the
    /// kernel's own timeout (minutes).
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { reader: BufReader::new(stream), last_retry_after: None })
    }

    /// Keep trying [`HttpClient::connect_timeout`] until it succeeds or
    /// `deadline` has elapsed, sleeping between attempts with capped
    /// exponential backoff (10 ms doubling to at most 500 ms). This is the
    /// restart-side counterpart of crash recovery: a monitor coming back up
    /// refuses connections first and answers `503 warming` next, and a
    /// client that wants "reconnect when it's back" should poll patiently
    /// rather than hot-loop. Returns the last connection error if the
    /// deadline passes.
    pub fn connect_with_retry(addr: SocketAddr, deadline: Duration) -> io::Result<HttpClient> {
        let start = Instant::now();
        let mut backoff = Duration::from_millis(10);
        loop {
            let remaining = match deadline.checked_sub(start.elapsed()) {
                None | Some(Duration::ZERO) => {
                    return HttpClient::connect_timeout(addr, Duration::from_millis(1));
                }
                Some(remaining) => remaining,
            };
            match HttpClient::connect_timeout(addr, remaining.min(Duration::from_secs(1))) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if start.elapsed() + backoff >= deadline {
                        return Err(e);
                    }
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        }
    }

    /// The `Retry-After` value (seconds) of the most recent response, if it
    /// carried one — how long a 429'd publisher should back off.
    pub fn retry_after(&self) -> Option<f64> {
        self.last_retry_after
    }

    /// Cap how long a single response may take to arrive. Long-polls block
    /// server-side, so set this above the poll timeout (or `None` for no
    /// limit, the default).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Issue one request and read the full response. Returns
    /// `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        {
            let stream = self.reader.get_mut();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nhost: ctk\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }
        self.read_response()
    }

    /// `GET` a path.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST` a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// `PUT` a JSON body.
    pub fn put(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("PUT", path, body)
    }

    /// `DELETE` a path.
    pub fn delete(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("DELETE", path, "")
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        self.last_retry_after = None;
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid(format!("malformed status line: {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| invalid(format!("bad content-length: {value:?}")))?,
                    );
                } else if name.trim().eq_ignore_ascii_case("retry-after") {
                    self.last_retry_after = value.trim().parse().ok();
                }
            }
        }
        let body = match content_length {
            Some(len) => {
                let mut body = vec![0u8; len];
                self.reader.read_exact(&mut body)?;
                body
            }
            // No `Content-Length` — a streamed response framed by EOF
            // (`POST /snapshot?stream=1`). The server closes the connection
            // after it; further requests on this client will fail, so use a
            // dedicated connection for streams.
            None => {
                let mut body = Vec::new();
                self.reader.read_to_end(&mut body)?;
                body
            }
        };
        String::from_utf8(body).map(|b| (status, b)).map_err(|_| invalid("non-UTF-8 body"))
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}
