//! `ctk-serve`: the installable monitor daemon. A thin flag-parsing shell
//! over [`ServerBuilder`] — the same knobs as the workspace's `serve`
//! example plus the durability ones, because this binary is what the
//! crash-recovery tests and the CI smoke scenario actually SIGKILL.
//!
//! ```text
//! ctk-serve [--host 127.0.0.1] [--port 8722] [--engine mrio]
//!           [--lambda 1e-3] [--shards N] [--queue-depth N]
//!           [--journal-dir DIR] [--fsync always|never|interval:<ms>]
//!           [--journal-max-bytes N]
//! ```
//!
//! Prints `ctk-serve: listening on http://ADDR` on stdout (flushed) once the
//! listener is bound — with `--port 0` that line is how a harness learns the
//! ephemeral port. Runs until SIGTERM/SIGINT, then drains and exits.

use continuous_topk::EngineKind;
use ctk_server::{signal, FsyncPolicy, ServerBuilder};
use std::io::Write;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let raw = arg_value(args, flag)?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("ctk-serve: bad value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let host = arg_value(&args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = parsed(&args, "--port").unwrap_or(8722);
    let engine: EngineKind = parsed(&args, "--engine").unwrap_or(EngineKind::Mrio);

    let mut builder = ServerBuilder::new(engine)
        .lambda(parsed(&args, "--lambda").unwrap_or(1e-3))
        .shards(parsed(&args, "--shards").unwrap_or(1));
    if let Some(depth) = parsed::<usize>(&args, "--queue-depth") {
        builder = builder.queue_depth(depth);
    }
    if let Some(dir) = arg_value(&args, "--journal-dir") {
        builder = builder.journal_dir(dir);
    }
    if let Some(policy) = parsed::<FsyncPolicy>(&args, "--fsync") {
        builder = builder.fsync(policy);
    }
    if let Some(bytes) = parsed::<u64>(&args, "--journal-max-bytes") {
        builder = builder.journal_max_bytes(bytes);
    }

    signal::install();
    let server = match builder.bind((host.as_str(), port)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ctk-serve: cannot start on {host}:{port}: {e}");
            std::process::exit(1);
        }
    };
    // Flushed immediately: harnesses block on this line to learn the port.
    println!("ctk-serve: listening on http://{}", server.addr());
    let _ = std::io::stdout().flush();

    while !signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("ctk-serve: termination signal received; draining");
    server.shutdown();
    eprintln!("ctk-serve: drained and stopped");
}
