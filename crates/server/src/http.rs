//! A minimal HTTP/1.1 server-side codec over blocking `std::io` streams.
//!
//! The build environment vendors every dependency, so there is no hyper or
//! axum here — and none is needed: the daemon speaks a small, fixed route
//! table of JSON request/response pairs plus long-polls that block
//! server-side (on a condvar, not the socket). What this module provides is
//! exactly that subset:
//!
//! * [`Request::read_from`] — request line + headers + `Content-Length`
//!   body (no chunked transfer encoding, no trailers, no upgrades);
//! * [`Response`] — status, `application/json` body, `Content-Length`
//!   framing, keep-alive by default per HTTP/1.1;
//! * query-string splitting on the request target (no percent-decoding —
//!   every parameter the API takes is numeric).
//!
//! Malformed input surfaces as `InvalidData` errors; the connection handler
//! answers 400 and closes.

use std::io::{self, BufRead, Read, Write};

/// Largest accepted request body. Publishing is batched, so bodies scale
/// with batch size; 16 MiB is ~50k generous documents per publish.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Largest accepted request line / header line.
const MAX_LINE: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, target order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// Read one request off a buffered stream. Returns `Ok(None)` on a
    /// clean EOF before the request line (the peer closed a keep-alive
    /// connection), an `InvalidData` error on malformed framing.
    pub fn read_from<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
        let line = match read_line(r)? {
            None => return Ok(None),
            Some(line) => line,
        };
        let mut parts = line.split_whitespace();
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => return Err(bad(format!("malformed request line: {line:?}"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad(format!("unsupported protocol version: {version}")));
        }
        let (path, query) = split_target(target);

        let mut headers = Vec::new();
        loop {
            let line = read_line(r)?.ok_or_else(|| bad("EOF inside header block"))?;
            if line.is_empty() {
                break;
            }
            let (name, value) =
                line.split_once(':').ok_or_else(|| bad(format!("malformed header: {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut req = Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            headers,
            body: Vec::new(),
        };
        if let Some(len) = req.header("content-length") {
            let len: usize =
                len.parse().map_err(|_| bad(format!("bad content-length: {len:?}")))?;
            if len > MAX_BODY {
                return Err(bad(format!("body of {len} bytes exceeds the {MAX_BODY} limit")));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)?;
            req.body = body;
        } else if req.header("transfer-encoding").is_some() {
            return Err(bad("chunked transfer encoding is not supported"));
        }
        Ok(Some(req))
    }

    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First value of a query-string parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error string for the 400 response.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_string())
    }

    /// True when the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|c| c.eq_ignore_ascii_case("close"))
    }
}

/// One HTTP response, always JSON-bodied.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    /// Extra headers beyond the framing set (e.g. `retry-after` on 429s);
    /// names are expected lowercase.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with a pre-serialized JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response { status, body: body.into(), headers: Vec::new() }
    }

    /// An error response with an `{"error": ...}` body.
    pub fn error(status: u16, message: impl std::fmt::Display) -> Response {
        let body = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]))
        .expect("string-only object serializes");
        Response::json(status, body)
    }

    /// Attach an extra response header (lowercase name).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Write the response with `Content-Length` framing. `keep_alive`
    /// controls the `Connection` header; the caller owns actually closing.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            connection
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Write the head of a streamed response: no `Content-Length`, so the body
/// is framed by connection close (EOF). The caller streams the body after
/// this and must then drop the connection.
pub fn write_stream_head<W: Write>(w: &mut W, status: u16) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\nconnection: close\r\n\r\n",
        status,
        reason(status)
    )
}

/// The reason phrase for the status codes this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Read one CRLF- (or LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.take(MAX_LINE as u64 + 1).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE {
        return Err(bad("header line exceeds the size limit"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Split a request target into path and query parameters.
fn split_target(target: &str) -> (&str, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target, Vec::new()),
        Some((path, qs)) => {
            let params = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path, params)
        }
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /changes?subscriber=3&timeout_ms=250 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/changes");
        assert_eq!(req.query_param("subscriber"), Some("3"));
        assert_eq!(req.query_param("timeout_ms"), Some("250"));
        assert_eq!(req.query_param("absent"), None);
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"terms":[[1,1.0]],"k":3}"#;
        let raw = format!(
            "POST /queries HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), body);
        assert!(req.wants_close());
        assert_eq!(req.header("content-type"), Some("application/json"));
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_invalid_data() {
        assert!(parse("").unwrap().is_none());
        assert!(parse("NOT A REQUEST\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!("POST /publish HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn response_framing_round_trips() {
        let mut out = Vec::new();
        Response::json(200, r#"{"ok":true}"#).write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::error(503, "draining").write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with(r#"{"error":"draining"}"#));
    }

    #[test]
    fn extra_headers_and_stream_head_frame_correctly() {
        let mut out = Vec::new();
        Response::error(429, "overloaded")
            .with_header("retry-after", "2")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("\r\n\r\n{\"error\":\"overloaded\"}"));

        let mut out = Vec::new();
        write_stream_head(&mut out, 200).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(!text.contains("content-length"), "streamed bodies are framed by EOF");
        assert!(text.ends_with("\r\n\r\n"));
    }
}
