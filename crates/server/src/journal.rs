//! The durable write-ahead publish journal: every mutating command is
//! appended — length-prefixed, CRC-32-checksummed, fsynced per policy —
//! *before* the ingest thread acks it, so a SIGKILL between snapshots
//! loses nothing that was acknowledged.
//!
//! # On-disk format (version 1)
//!
//! A journal directory holds numbered segment files plus at most one
//! checkpoint:
//!
//! ```text
//! journal/
//!   checkpoint.json          {"format": 1, "last_seq": N, "snapshot": {...}}
//!   wal-00000000000000000042.log
//!   wal-00000000000000000107.log   (named by their first record's seq)
//! ```
//!
//! Each segment is a run of records:
//!
//! ```text
//! | len: u32 LE | seq: u64 LE | crc: u32 LE | payload: len bytes |
//! ```
//!
//! `payload` is the JSON-serialized [`ReplayCommand`]; `crc` is CRC-32
//! (IEEE) over the `len` and `seq` fields' bytes plus the payload, so a
//! corrupted header is caught the same as a corrupted body. Sequence
//! numbers start at 1 and increase by one per record, never resetting —
//! `last_seq` in the checkpoint says which prefix of the history the
//! snapshot already covers, which makes replay idempotent across the
//! crash window between writing a checkpoint and truncating the segments.
//!
//! # Torn tails and failed appends
//!
//! A crash mid-append leaves a torn final record: a short header, a
//! truncated payload, or a checksum mismatch. Recovery tolerates exactly
//! that — a bad record at the tail of the **newest** segment truncates the
//! file there and replays the clean prefix. A bad record anywhere else
//! (an older segment, or with valid data after it) is real corruption and
//! fails recovery with a descriptive error rather than silently dropping
//! acknowledged writes.
//!
//! A *failed* append (ENOSPC mid-write, a refused fsync) is rolled back
//! while the process lives: the segment is truncated to the pre-append
//! offset so the refused record leaves no bytes behind for later appends
//! to bury. If that rollback itself fails, the journal is **poisoned** —
//! every further mutating command is refused until a restart — because
//! acking writes behind unrolled garbage would silently drop them at the
//! next recovery.
//!
//! # Checkpoints
//!
//! [`Journal::checkpoint`] writes the snapshot to `checkpoint.tmp`, fsyncs,
//! renames it over `checkpoint.json`, then starts a fresh segment and
//! deletes the now-redundant old ones. Recovery loads the checkpoint
//! (rejecting snapshot versions newer than this build supports), then
//! replays only records with `seq > last_seq`.

use ctk_common::Crc32;
use ctk_core::{ReplayCommand, Snapshot};
use serde::{Number, Serialize, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bytes of the fixed record header: `len` (4) + `seq` (8) + `crc` (4).
pub const RECORD_HEADER_BYTES: usize = 16;

/// The checkpoint file's `format` field this build writes and reads.
pub const JOURNAL_FORMAT: u32 = 1;

const CHECKPOINT_FILE: &str = "checkpoint.json";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";

/// When appended journal records reach the disk — the durability/throughput
/// trade of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record, before the command is acked: an
    /// acked publish survives SIGKILL *and* power loss. The default, and
    /// what the crash-recovery guarantees assume.
    #[default]
    Always,
    /// Sync at most once per interval: bounded data loss (everything acked
    /// in the last interval) for near-`Never` throughput.
    Interval(Duration),
    /// Never sync explicitly; the OS flushes on its own schedule. Survives
    /// a process SIGKILL (the page cache outlives the process) but not a
    /// kernel panic or power loss.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Accepts `always`, `never`, or `interval:<ms>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:").and_then(|ms| ms.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => Ok(FsyncPolicy::Interval(Duration::from_millis(ms))),
                _ => Err(format!(
                    "bad fsync policy {s:?} (expected \"always\", \"never\", or \"interval:<ms>\")"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Where and how the journal persists.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConfig {
    /// Directory holding the segments and checkpoint (created if missing).
    pub dir: PathBuf,
    /// When appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one would exceed this many
    /// bytes (a record larger than the cap still lands whole in its own
    /// segment — records are never split).
    pub max_segment_bytes: u64,
}

impl JournalConfig {
    /// A config with the default fsync policy (`always`) and segment cap
    /// (64 MiB).
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            max_segment_bytes: 64 * 1024 * 1024,
        }
    }

    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> JournalConfig {
        self.fsync = policy;
        self
    }

    /// Set the segment rotation threshold.
    pub fn max_segment_bytes(mut self, bytes: u64) -> JournalConfig {
        self.max_segment_bytes = bytes.max(RECORD_HEADER_BYTES as u64 + 1);
        self
    }
}

/// What [`Journal::open`] found on disk: the state the ingest thread must
/// rebuild before serving.
#[derive(Debug)]
pub struct Recovery {
    /// The checkpoint snapshot to restore first, if one was written.
    pub snapshot: Option<Snapshot>,
    /// The sequence number the checkpoint covers (0 when none).
    pub checkpoint_seq: u64,
    /// Journaled commands newer than the checkpoint, in append order.
    pub commands: Vec<ReplayCommand>,
    /// Bytes of a torn final record dropped during recovery (0 for a clean
    /// shutdown).
    pub truncated_bytes: u64,
}

impl Recovery {
    /// True when there was nothing on disk (fresh directory).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.commands.is_empty()
    }
}

/// Encode one record: header (`len`, `seq`, `crc`) plus payload. The CRC
/// covers the `len` and `seq` bytes and the payload.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("journal payloads are far below 4 GiB");
    let mut crc = Crc32::new();
    crc.update(&len.to_le_bytes());
    crc.update(&seq.to_le_bytes());
    crc.update(payload);
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How [`decode_records`] left the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// Every byte belonged to a whole, checksum-valid record.
    Clean,
    /// Decoding stopped at a short or checksum-invalid record;
    /// `valid_bytes` is the length of the clean prefix.
    Torn {
        /// Offset of the first bad byte — where a recovering journal
        /// truncates the segment.
        valid_bytes: u64,
    },
}

/// Decode a segment's bytes into `(seq, payload)` records plus the state of
/// its tail. Pure — the fault-injection tests drive this over in-memory
/// buffers byte-by-byte.
pub fn decode_records(bytes: &[u8]) -> (Vec<(u64, Vec<u8>)>, TailState) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < RECORD_HEADER_BYTES {
            return (records, TailState::Torn { valid_bytes: off as u64 });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
        if rest.len() - RECORD_HEADER_BYTES < len {
            return (records, TailState::Torn { valid_bytes: off as u64 });
        }
        let payload = &rest[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len];
        let mut crc = Crc32::new();
        crc.update(&rest[0..12]);
        crc.update(payload);
        if crc.finish() != stored_crc {
            return (records, TailState::Torn { valid_bytes: off as u64 });
        }
        records.push((seq, payload.to_vec()));
        off += RECORD_HEADER_BYTES + len;
    }
    (records, TailState::Clean)
}

/// Test-support writer that fails every write past byte `fail_at`,
/// simulating a crash mid-append: the bytes before the failpoint land, the
/// rest never happen. Used by the fault-injection tests to manufacture torn
/// tails and partial rotations deterministically.
pub struct FailpointWriter<W: Write> {
    inner: W,
    fail_at: u64,
    written: u64,
}

impl<W: Write> FailpointWriter<W> {
    /// Wrap `inner`, killing writes at byte `fail_at`.
    pub fn new(inner: W, fail_at: u64) -> FailpointWriter<W> {
        FailpointWriter { inner, fail_at, written: 0 }
    }

    /// Bytes successfully written before the failpoint.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written >= self.fail_at {
            return Err(io::Error::other("failpoint: write killed"));
        }
        let allow = usize::try_from(self.fail_at - self.written).unwrap_or(usize::MAX);
        let n = self.inner.write(&buf[..buf.len().min(allow)])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn segment_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}")
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Load and validate `checkpoint.json`: `(last_seq, snapshot)`.
///
/// The embedded snapshot goes back through [`Snapshot::from_json`], so a
/// checkpoint written by a newer build fails with the same clear
/// "unsupported snapshot version" error the restore endpoint gives —
/// never a panic or a garbled partial parse.
fn load_checkpoint(path: &Path) -> io::Result<(u64, Snapshot)> {
    let text = fs::read_to_string(path)?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| invalid(format!("corrupt journal checkpoint {}: {e}", path.display())))?;
    let format = doc.get("format").and_then(|v| v.as_u64().ok()).ok_or_else(|| {
        invalid(format!("journal checkpoint {} has no format tag", path.display()))
    })?;
    if format != JOURNAL_FORMAT as u64 {
        return Err(invalid(format!(
            "unsupported journal checkpoint format {format} (this build reads {JOURNAL_FORMAT})"
        )));
    }
    let last_seq = doc
        .get("last_seq")
        .and_then(|v| v.as_u64().ok())
        .ok_or_else(|| invalid(format!("journal checkpoint {} has no last_seq", path.display())))?;
    let snapshot_value = doc
        .get("snapshot")
        .ok_or_else(|| invalid(format!("journal checkpoint {} has no snapshot", path.display())))?;
    let snapshot_json = serde_json::to_string(snapshot_value)
        .map_err(|e| invalid(format!("journal checkpoint snapshot does not serialize: {e}")))?;
    let snapshot = Snapshot::from_json(&snapshot_json)
        .map_err(|e| invalid(format!("journal checkpoint rejected: {e}")))?;
    Ok((last_seq, snapshot))
}

/// The live append side of the journal. One instance is owned by the ingest
/// thread; nothing here is thread-safe (it does not need to be — every
/// mutating command is already linearized through that thread).
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    max_segment_bytes: u64,
    file: File,
    segment_bytes: u64,
    /// Bytes across all live (post-checkpoint) segments — `/stats`'s
    /// `journal_bytes`.
    live_bytes: u64,
    next_seq: u64,
    last_checkpoint: u64,
    last_sync: Instant,
    dirty: bool,
    /// Set when a failed append could not be rolled back: the segment may
    /// hold garbage bytes, so every further mutating call is refused (the
    /// message says why) until the process restarts and recovery truncates
    /// the file. Continuing to ack writes behind unrolled garbage would
    /// silently drop them on the next restart.
    poisoned: Option<String>,
}

impl Journal {
    /// Open (or create) the journal at `config.dir`, returning the append
    /// handle plus everything recovery found. Fails with a descriptive
    /// `InvalidData` error on real corruption (bad record *not* at the
    /// newest segment's tail, unreadable checkpoint, unsupported snapshot
    /// or checkpoint version) — a torn final record is truncated, not
    /// fatal.
    pub fn open(config: JournalConfig) -> io::Result<(Journal, Recovery)> {
        fs::create_dir_all(&config.dir)?;
        // A crash between writing checkpoint.tmp and renaming it leaves the
        // tmp file behind; it was never the checkpoint, so drop it.
        let _ = fs::remove_file(config.dir.join(CHECKPOINT_TMP));

        let checkpoint_path = config.dir.join(CHECKPOINT_FILE);
        let (checkpoint_seq, snapshot) = if checkpoint_path.exists() {
            let (seq, snap) = load_checkpoint(&checkpoint_path)?;
            (seq, Some(snap))
        } else {
            (0, None)
        };

        let mut segments: Vec<PathBuf> = fs::read_dir(&config.dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(SEGMENT_PREFIX) && n.ends_with(SEGMENT_SUFFIX))
            })
            .collect();
        segments.sort();

        let mut commands = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut max_seq = checkpoint_seq;
        let mut live_bytes = 0u64;
        let last_index = segments.len().saturating_sub(1);
        for (i, path) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let (records, tail) = decode_records(&bytes);
            let mut kept_bytes = bytes.len() as u64;
            if let TailState::Torn { valid_bytes } = tail {
                if i != last_index {
                    return Err(invalid(format!(
                        "corrupt journal segment {}: bad record at byte {valid_bytes} with newer \
                         segments after it",
                        path.display()
                    )));
                }
                // The torn tail of the newest segment is the crash artifact
                // recovery exists for: truncate to the clean prefix.
                truncated_bytes = bytes.len() as u64 - valid_bytes;
                OpenOptions::new().write(true).open(path)?.set_len(valid_bytes)?;
                kept_bytes = valid_bytes;
            }
            let mut stale = !records.is_empty();
            for (seq, payload) in records {
                if seq <= max_seq && seq <= checkpoint_seq {
                    // Covered by the checkpoint (crash between checkpoint
                    // rename and segment truncation); skip.
                    continue;
                }
                stale = false;
                if seq != max_seq + 1 {
                    return Err(invalid(format!(
                        "journal sequence gap in {}: expected {} but found {seq}",
                        path.display(),
                        max_seq + 1
                    )));
                }
                max_seq = seq;
                let text = String::from_utf8(payload)
                    .map_err(|_| invalid(format!("journal record {seq} is not UTF-8 JSON")))?;
                let command: ReplayCommand = serde_json::from_str(&text)
                    .map_err(|e| invalid(format!("journal record {seq} does not parse: {e}")))?;
                commands.push(command);
            }
            if stale {
                // Every record predates the checkpoint: the segment is
                // garbage from an interrupted truncation. Drop it.
                let _ = fs::remove_file(path);
            } else {
                live_bytes += kept_bytes;
            }
        }

        let next_seq = max_seq + 1;
        // Append to the newest surviving segment, or start a fresh one.
        let current = segments
            .iter()
            .rev()
            .find(|p| p.exists())
            .cloned()
            .unwrap_or_else(|| config.dir.join(segment_name(next_seq)));
        let file = OpenOptions::new().create(true).append(true).open(&current)?;
        let segment_bytes = file.metadata()?.len();

        let journal = Journal {
            dir: config.dir,
            fsync: config.fsync,
            max_segment_bytes: config.max_segment_bytes,
            file,
            segment_bytes,
            live_bytes,
            next_seq,
            last_checkpoint: checkpoint_seq,
            last_sync: Instant::now(),
            dirty: false,
            poisoned: None,
        };
        let recovery = Recovery { snapshot, checkpoint_seq, commands, truncated_bytes };
        Ok((journal, recovery))
    }

    /// Append one command and make it as durable as the fsync policy
    /// promises. Returns the record's sequence number. The ingest thread
    /// calls this *before* acking the command; an error here means the
    /// command must be refused, not applied — and the segment holds no
    /// trace of it (a partial write is truncated back out, so the refused
    /// record can neither corrupt the tail nor collide with the seq of the
    /// next accepted append).
    pub fn append(&mut self, command: &ReplayCommand) -> io::Result<u64> {
        self.check_poisoned()?;
        let payload = serde_json::to_string(command)
            .map_err(|e| invalid(format!("journal command does not serialize: {e}")))?;
        let record = encode_record(self.next_seq, payload.as_bytes());
        if self.segment_bytes > 0
            && self.segment_bytes + record.len() as u64 > self.max_segment_bytes
        {
            self.rotate()?;
        }
        if let Err(e) = self.write_record(&record) {
            self.rollback_append(&e);
            return Err(e);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.segment_bytes += record.len() as u64;
        self.live_bytes += record.len() as u64;
        Ok(seq)
    }

    /// The failable half of an append: the write plus the policy-driven
    /// sync, as one unit so the caller can roll both back together.
    fn write_record(&mut self, record: &[u8]) -> io::Result<()> {
        self.file.write_all(record)?;
        self.dirty = true;
        match self.fsync {
            FsyncPolicy::Always => {
                self.file.sync_data()?;
                self.dirty = false;
                self.last_sync = Instant::now();
            }
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.file.sync_data()?;
                    self.dirty = false;
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Undo a failed append: truncate the segment back to the pre-append
    /// offset and sync the truncation, so a partial write (ENOSPC mid
    /// `write_all`) leaves no garbage for later appends to bury, and a
    /// fully-written record whose fsync failed cannot survive to collide
    /// with the seq the next accepted append will reuse. If the rollback
    /// itself fails the file's tail is unknowable — poison the journal so
    /// every further mutating command is refused until a restart, whose
    /// recovery truncates at the first bad checksum.
    fn rollback_append(&mut self, cause: &io::Error) {
        match self.file.set_len(self.segment_bytes).and_then(|()| self.file.sync_data()) {
            Ok(()) => {
                self.dirty = false;
                self.last_sync = Instant::now();
            }
            Err(e) => {
                self.poisoned =
                    Some(format!("append failed ({cause}) and rollback truncation failed ({e})"));
            }
        }
    }

    /// `Err` while the journal is poisoned (see [`Journal::rollback_append`]).
    fn check_poisoned(&self) -> io::Result<()> {
        match &self.poisoned {
            None => Ok(()),
            Some(why) => Err(io::Error::other(format!(
                "journal is poisoned and refuses writes until restart: {why}"
            ))),
        }
    }

    /// Seal the current segment and start a new one named by the next seq.
    fn rotate(&mut self) -> io::Result<()> {
        // A sealed segment is never written again; make it durable before
        // moving on so a later torn tail can only be in the newest file.
        self.file.sync_data()?;
        self.dirty = false;
        let path = self.dir.join(segment_name(self.next_seq));
        self.file = OpenOptions::new().create(true).append(true).open(path)?;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Write `snapshot` as the new checkpoint, then truncate the journal:
    /// delete every segment and start fresh. Returns the sequence number
    /// the checkpoint covers. On return, recovery needs only the checkpoint
    /// plus whatever is appended after this call.
    pub fn checkpoint(&mut self, snapshot: &Snapshot) -> io::Result<u64> {
        self.check_poisoned()?;
        let covered = self.next_seq - 1;
        let doc = Value::Object(vec![
            ("format".to_string(), Value::Num(Number::U64(JOURNAL_FORMAT as u64))),
            ("last_seq".to_string(), Value::Num(Number::U64(covered))),
            ("snapshot".to_string(), snapshot.to_value()),
        ]);
        let text = serde_json::to_string(&doc)
            .map_err(|e| invalid(format!("checkpoint snapshot does not serialize: {e}")))?;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        // The rename is the commit point: either the old checkpoint (plus
        // the still-present segments) or the new one is what recovery sees.
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }

        // The fresh segment must be open *before* anything is deleted: if
        // this open fails, `self.file` still points at a live (linked) old
        // segment and appends keep landing somewhere recovery can see —
        // the new checkpoint plus old segments is exactly the crash window
        // the seq filter in `open` already handles.
        let fresh_path = self.dir.join(segment_name(self.next_seq));
        self.file = OpenOptions::new().create(true).append(true).open(&fresh_path)?;
        self.segment_bytes = 0;
        self.live_bytes = 0;
        self.last_checkpoint = covered;
        self.dirty = false;

        // Past the commit point, the old segments are redundant (their
        // records are all <= covered), so deleting them is best-effort
        // cleanup: anything left behind is skipped by seq and removed as
        // stale on the next recovery.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.filter_map(|e| e.ok()) {
                let path = entry.path();
                if path == fresh_path {
                    continue;
                }
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with(SEGMENT_PREFIX) && name.ends_with(SEGMENT_SUFFIX) {
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(covered)
    }

    /// Force everything appended so far to disk, whatever the policy —
    /// called on drain/shutdown so `Interval`/`Never` journals are durable
    /// across a *graceful* exit.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Bytes in live segments (appended since the last checkpoint).
    pub fn bytes(&self) -> u64 {
        self.live_bytes
    }

    /// The sequence number the latest checkpoint covers (0 = none yet).
    pub fn last_checkpoint(&self) -> u64 {
        self.last_checkpoint
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::TermId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ctk-journal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn publish(term: u32, arrival: f64) -> ReplayCommand {
        ReplayCommand::Publish { docs: vec![(vec![(TermId(term), 1.0)], arrival)] }
    }

    #[test]
    fn fsync_policy_parses_and_prints() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!(
            "interval:250".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        for policy in ["always", "never", "interval:5"] {
            assert_eq!(policy.parse::<FsyncPolicy>().unwrap().to_string(), policy);
        }
        assert!("interval:0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("interval:fast".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn records_round_trip_and_tails_tear_cleanly() {
        let payloads: Vec<Vec<u8>> =
            vec![b"alpha".to_vec(), vec![], b"a longer third payload".to_vec()];
        let mut bytes = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        let (records, tail) = decode_records(&bytes);
        assert_eq!(tail, TailState::Clean);
        assert_eq!(records.len(), 3);
        for (i, (seq, payload)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(payload, &payloads[i]);
        }

        // Cutting exactly at the last record's boundary is a clean
        // two-record stream; cutting anywhere *inside* it is a torn tail
        // that recovers exactly the first two records.
        let last_start = bytes.len() - (RECORD_HEADER_BYTES + payloads[2].len());
        let (records, tail) = decode_records(&bytes[..last_start]);
        assert_eq!((records.len(), tail), (2, TailState::Clean));
        for cut in last_start + 1..bytes.len() {
            let (records, tail) = decode_records(&bytes[..cut]);
            assert_eq!(records.len(), 2, "cut at {cut}");
            assert_eq!(tail, TailState::Torn { valid_bytes: last_start as u64 });
        }

        // A flipped bit anywhere in the final record is caught by the CRC.
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        let (records, tail) = decode_records(&corrupt);
        assert_eq!(records.len(), 2);
        assert_eq!(tail, TailState::Torn { valid_bytes: last_start as u64 });
    }

    #[test]
    fn failpoint_writer_kills_mid_record() {
        let r1 = encode_record(1, b"first");
        let r2 = encode_record(2, b"second");
        let total = (r1.len() + r2.len()) as u64;
        // Kill at every byte: the decoded prefix is exactly the records
        // fully written before the failpoint.
        for fail_at in 0..=total {
            let mut w = FailpointWriter::new(Vec::new(), fail_at);
            let mut wrote = w.write_all(&r1).is_ok();
            wrote = wrote && w.write_all(&r2).is_ok();
            assert_eq!(wrote, fail_at >= total);
            assert_eq!(w.written(), fail_at.min(total));
            let buf = w.into_inner();
            let (records, _) = decode_records(&buf);
            let expect = usize::from(fail_at >= r1.len() as u64) + usize::from(fail_at >= total);
            assert_eq!(records.len(), expect, "fail_at {fail_at}");
        }
    }

    #[test]
    fn journal_survives_reopen_checkpoint_and_torn_tail() {
        let dir = temp_dir("cycle");
        let cfg = JournalConfig::new(&dir).fsync(FsyncPolicy::Never);

        // Fresh journal: nothing recovered, appends take seqs from 1.
        let (mut journal, recovery) = Journal::open(cfg.clone()).unwrap();
        assert!(recovery.is_empty());
        assert_eq!(journal.append(&publish(1, 1.0)).unwrap(), 1);
        assert_eq!(journal.append(&publish(2, 2.0)).unwrap(), 2);
        assert!(journal.bytes() > 0);
        journal.sync().unwrap();
        drop(journal);

        // Reopen: both commands come back, seq continues.
        let (mut journal, recovery) = Journal::open(cfg.clone()).unwrap();
        assert_eq!(recovery.commands, vec![publish(1, 1.0), publish(2, 2.0)]);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(journal.next_seq(), 3);

        // Checkpoint truncates: a reopen sees the snapshot and no commands.
        let snapshot = ctk_core::Monitor::new(ctk_core::Naive::new(0.01)).snapshot();
        assert_eq!(journal.checkpoint(&snapshot).unwrap(), 2);
        assert_eq!(journal.bytes(), 0);
        assert_eq!(journal.last_checkpoint(), 2);
        assert_eq!(journal.append(&publish(3, 3.0)).unwrap(), 3);
        journal.sync().unwrap();
        drop(journal);

        let (_journal, recovery) = Journal::open(cfg.clone()).unwrap();
        assert_eq!(recovery.checkpoint_seq, 2);
        assert!(recovery.snapshot.is_some());
        assert_eq!(recovery.commands, vec![publish(3, 3.0)]);

        // Tear the newest segment's tail: recovery truncates, keeps the
        // clean prefix, and the next open is clean again.
        let newest = newest_segment(&dir);
        let mut bytes = fs::read(&newest).unwrap();
        bytes.extend_from_slice(&encode_record(4, b"{\"op\":\"forget\",\"namespace\":\"x\"}")[..9]);
        fs::write(&newest, &bytes).unwrap();
        let (_journal, recovery) = Journal::open(cfg.clone()).unwrap();
        assert_eq!(recovery.truncated_bytes, 9);
        assert_eq!(recovery.commands, vec![publish(3, 3.0)]);
        let (_journal, recovery) = Journal::open(cfg).unwrap();
        assert_eq!(recovery.truncated_bytes, 0, "truncation persisted");

        fs::remove_dir_all(&dir).unwrap();
    }

    fn newest_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.to_string_lossy().contains(SEGMENT_PREFIX))
            .collect();
        segs.sort();
        segs.pop().expect("a segment exists")
    }

    #[test]
    fn rotation_caps_segments_and_replays_across_them() {
        let dir = temp_dir("rotate");
        let cfg = JournalConfig::new(&dir).fsync(FsyncPolicy::Never).max_segment_bytes(128);
        let (mut journal, _) = Journal::open(cfg.clone()).unwrap();
        for i in 0..10 {
            journal.append(&publish(i, i as f64)).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let segments = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(SEGMENT_SUFFIX))
            .count();
        assert!(segments > 1, "128-byte cap must rotate ({segments} segments)");
        let (_journal, recovery) = Journal::open(cfg.clone()).unwrap();
        assert_eq!(recovery.commands.len(), 10);
        assert_eq!(
            recovery.commands,
            (0..10).map(|i| publish(i, i as f64)).collect::<Vec<_>>(),
            "append order survives rotation"
        );

        // Corruption in a *non-final* segment is fatal, not truncated.
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.to_string_lossy().ends_with(SEGMENT_SUFFIX))
            .collect();
        segs.sort();
        let first = &segs[0];
        let mut bytes = fs::read(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(first, &bytes).unwrap();
        let err = Journal::open(cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt journal segment"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_partial_bytes() {
        let dir = temp_dir("rollback");
        let cfg = JournalConfig::new(&dir).fsync(FsyncPolicy::Never);
        let (mut journal, _) = Journal::open(cfg.clone()).unwrap();
        journal.append(&publish(1, 1.0)).unwrap();
        journal.sync().unwrap();

        // Simulate an append dying mid-write: garbage lands in the segment
        // through the journal's own handle, then the rollback runs exactly
        // as `append` runs it on the error path.
        let newest = newest_segment(&dir);
        let clean_len = fs::metadata(&newest).unwrap().len();
        journal.file.write_all(b"partial record garbage").unwrap();
        assert!(fs::metadata(&newest).unwrap().len() > clean_len);
        journal.rollback_append(&io::Error::other("injected: disk full"));
        assert_eq!(fs::metadata(&newest).unwrap().len(), clean_len, "garbage truncated out");
        assert!(journal.poisoned.is_none(), "a successful rollback does not poison");

        // The journal keeps working: the next append takes the seq the
        // refused record would have used, and recovery sees a clean
        // two-record history with nothing torn.
        assert_eq!(journal.append(&publish(2, 2.0)).unwrap(), 2);
        journal.sync().unwrap();
        drop(journal);
        let (_journal, recovery) = Journal::open(cfg).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.commands, vec![publish(1, 1.0), publish(2, 2.0)]);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_journal_refuses_every_mutation() {
        let dir = temp_dir("poison");
        let (mut journal, _) =
            Journal::open(JournalConfig::new(&dir).fsync(FsyncPolicy::Never)).unwrap();
        journal.append(&publish(1, 1.0)).unwrap();
        journal.poisoned = Some("injected rollback failure".to_string());
        let err = journal.append(&publish(2, 2.0)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        let snapshot = ctk_core::Monitor::new(ctk_core::Naive::new(0.01)).snapshot();
        let err = journal.checkpoint(&snapshot).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_keeps_the_fresh_segment_linked() {
        // Two checkpoints in a row: the second's fresh segment has the same
        // name as the first's (no appends between), so the delete pass must
        // not remove the file the journal just opened — appends after it
        // have to land in a *linked* file that recovery can read.
        let dir = temp_dir("ckpt-fresh");
        let cfg = JournalConfig::new(&dir).fsync(FsyncPolicy::Never);
        let (mut journal, _) = Journal::open(cfg.clone()).unwrap();
        journal.append(&publish(1, 1.0)).unwrap();
        let snapshot = ctk_core::Monitor::new(ctk_core::Naive::new(0.01)).snapshot();
        journal.checkpoint(&snapshot).unwrap();
        journal.checkpoint(&snapshot).unwrap();
        journal.append(&publish(2, 2.0)).unwrap();
        journal.sync().unwrap();
        let segments = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(SEGMENT_SUFFIX))
            .count();
        assert_eq!(segments, 1, "one live segment after back-to-back checkpoints");
        drop(journal);
        let (_journal, recovery) = Journal::open(cfg).unwrap();
        assert_eq!(recovery.commands, vec![publish(2, 2.0)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_checkpoint_versions_fail_with_clear_errors() {
        let dir = temp_dir("versions");
        fs::create_dir_all(&dir).unwrap();

        // A checkpoint from a hypothetical newer journal format.
        fs::write(dir.join(CHECKPOINT_FILE), r#"{"format": 2, "last_seq": 0, "snapshot": {}}"#)
            .unwrap();
        let err = Journal::open(JournalConfig::new(&dir)).unwrap_err();
        assert!(err.to_string().contains("unsupported journal checkpoint format 2"), "{err}");

        // A checkpoint embedding a snapshot version newer than this build.
        let snapshot = ctk_core::Monitor::new(ctk_core::Naive::new(0.01)).snapshot();
        let future = snapshot.to_json().unwrap().replacen(
            &format!("\"version\": {}", ctk_core::SNAPSHOT_VERSION),
            "\"version\": 99",
            1,
        );
        fs::write(
            dir.join(CHECKPOINT_FILE),
            format!(r#"{{"format": 1, "last_seq": 3, "snapshot": {future}}}"#),
        )
        .unwrap();
        let err = Journal::open(JournalConfig::new(&dir)).unwrap_err();
        assert!(err.to_string().contains("unsupported snapshot version 99"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }
}
