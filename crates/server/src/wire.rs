//! Request-body shapes of the wire API, parsed by hand from JSON `Value`s.
//!
//! The derive shim errors on any missing field, but most wire fields here
//! are *optional* (`k` defaults, `arrival` defaults, a subscription filter
//! may be absent), so these parsers walk the [`serde::Value`] tree
//! explicitly via the forgiving `Value::get`. Every parse failure is a
//! client error: the string returned becomes the `{"error": ...}` body of
//! a 400 response verbatim, so messages name the offending field.

use ctk_common::{QueryId, QuerySpec, TermId, Timestamp};
use ctk_core::PublishRequest;
use serde::Value;

/// Parse a `(term, weight)` pair list: `[[1, 0.5], [4, 0.25], ...]`.
fn parse_terms(value: &Value, field: &str) -> Result<Vec<(TermId, f32)>, String> {
    let entries = value.as_array().map_err(|_| format!("{field:?} must be an array of pairs"))?;
    let mut pairs = Vec::with_capacity(entries.len());
    for entry in entries {
        let pair = entry
            .as_array()
            .ok()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("each entry of {field:?} must be a [term, weight] pair"))?;
        let term = pair[0]
            .as_u64()
            .ok()
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| format!("term ids in {field:?} must be u32 integers"))?;
        let weight =
            pair[1].as_f64().map_err(|_| format!("weights in {field:?} must be numbers"))? as f32;
        pairs.push((TermId(term), weight));
    }
    Ok(pairs)
}

/// `POST /queries` body: `{"terms": [[t, w], ...], "k": 10}`; `k` defaults
/// to 10 when absent.
pub fn parse_register(body: &Value) -> Result<QuerySpec, String> {
    let terms = body.get("terms").ok_or("missing field \"terms\"")?;
    let pairs = parse_terms(terms, "terms")?;
    let k = match body.get("k") {
        None => 10,
        Some(k) => {
            let k = k.as_u64().map_err(|_| "\"k\" must be a positive integer".to_string())?;
            usize::try_from(k).map_err(|_| "\"k\" is out of range".to_string())?
        }
    };
    QuerySpec::new(pairs, k).map_err(|e| e.to_string())
}

/// One document object: `{"terms": [[t, w], ...], "arrival": 12.5}`;
/// `arrival` defaults to 0 (the backend clamps arrivals monotone).
fn parse_doc(value: &Value) -> Result<(Vec<(TermId, f32)>, Timestamp), String> {
    let terms = value.get("terms").ok_or("each document needs a \"terms\" field")?;
    let pairs = parse_terms(terms, "terms")?;
    let arrival = match value.get("arrival") {
        None => 0.0,
        Some(a) => a.as_f64().map_err(|_| "\"arrival\" must be a number".to_string())?,
    };
    Ok((pairs, arrival))
}

/// `POST /publish` body — either a single document object or a batch
/// `{"docs": [{...}, ...]}`. An empty batch is a client error: a publish
/// must carry at least one document.
pub fn parse_publish(body: &Value) -> Result<PublishRequest, String> {
    let request: PublishRequest = match body.get("docs") {
        Some(docs) => {
            let docs = docs.as_array().map_err(|_| "\"docs\" must be an array of documents")?;
            docs.iter().map(parse_doc).collect::<Result<Vec<_>, _>>()?.into()
        }
        None => PublishRequest::from(parse_doc(body)?),
    };
    if request.is_empty() {
        return Err("a publish must carry at least one document".to_string());
    }
    Ok(request)
}

/// `POST /subscriptions` body: `{}` (or empty) subscribes to every query;
/// `{"queries": [0, 3]}` filters to those public query ids.
pub fn parse_subscribe(body: &Value) -> Result<Option<Vec<QueryId>>, String> {
    match body.get("queries") {
        None => Ok(None),
        Some(queries) => {
            let ids =
                queries.as_array().map_err(|_| "\"queries\" must be an array of query ids")?;
            ids.iter()
                .map(|id| {
                    id.as_u64()
                        .ok()
                        .and_then(|q| u32::try_from(q).ok())
                        .map(QueryId)
                        .ok_or_else(|| "query ids must be u32 integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

/// Parse a request body string as JSON, mapping the error for a 400.
pub fn parse_body(body: &str) -> Result<Value, String> {
    // An empty body is the empty object: several endpoints take all-default
    // parameters and `curl -X POST` sends no body at all.
    if body.trim().is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    serde_json::from_str::<Value>(body).map_err(|e| format!("invalid JSON body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn register_parses_terms_and_defaults_k() {
        let spec = parse_register(&value(r#"{"terms": [[1, 0.6], [2, 0.8]]}"#)).unwrap();
        assert_eq!(spec.k, 10);
        assert_eq!(spec.vector.len(), 2);
        let spec = parse_register(&value(r#"{"terms": [[1, 1.0]], "k": 3}"#)).unwrap();
        assert_eq!(spec.k, 3);
        // Validation errors surface with the QuerySpec message.
        assert!(parse_register(&value(r#"{"terms": [], "k": 3}"#)).is_err());
        assert!(parse_register(&value(r#"{"terms": [[1, 1.0]], "k": 0}"#)).is_err());
        assert!(parse_register(&value(r#"{"k": 3}"#)).unwrap_err().contains("terms"));
        assert!(parse_register(&value(r#"{"terms": [[1]], "k": 3}"#)).is_err());
    }

    #[test]
    fn publish_accepts_single_and_batch() {
        let single = parse_publish(&value(r#"{"terms": [[7, 1.0]], "arrival": 2.5}"#)).unwrap();
        assert_eq!(single.len(), 1);
        let batch = parse_publish(&value(
            r#"{"docs": [{"terms": [[7, 1.0]]}, {"terms": [[8, 0.5]], "arrival": 1.0}]}"#,
        ))
        .unwrap();
        assert_eq!(batch.len(), 2);
        assert!(parse_publish(&value(r#"{"docs": []}"#)).is_err());
        assert!(parse_publish(&value(r#"{"arrival": 1.0}"#)).is_err());
    }

    #[test]
    fn subscribe_filter_is_optional() {
        assert_eq!(parse_subscribe(&value("{}")).unwrap(), None);
        assert_eq!(
            parse_subscribe(&value(r#"{"queries": [0, 4]}"#)).unwrap(),
            Some(vec![QueryId(0), QueryId(4)])
        );
        assert!(parse_subscribe(&value(r#"{"queries": [-1]}"#)).is_err());
    }

    #[test]
    fn empty_body_is_the_empty_object() {
        assert!(matches!(parse_body("").unwrap(), Value::Object(_)));
        assert!(parse_body("{nope").is_err());
    }
}
