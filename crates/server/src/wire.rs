//! Request-body shapes of the wire API, parsed by hand from JSON `Value`s.
//!
//! The derive shim errors on any missing field, but most wire fields here
//! are *optional* (`k` defaults, `arrival` defaults, a subscription filter
//! may be absent), so these parsers walk the [`serde::Value`] tree
//! explicitly via the forgiving `Value::get`. Every parse failure is a
//! client error: the string returned becomes the `{"error": ...}` body of
//! a 400 response verbatim, so messages name the offending field.

use ctk_common::{QueryId, QuerySpec, TermId, Timestamp};
use ctk_core::{EvictionPolicy, PublishRequest, RetentionPolicy};
use serde::Value;

/// Parse a `(term, weight)` pair list: `[[1, 0.5], [4, 0.25], ...]`.
fn parse_terms(value: &Value, field: &str) -> Result<Vec<(TermId, f32)>, String> {
    let entries = value.as_array().map_err(|_| format!("{field:?} must be an array of pairs"))?;
    let mut pairs = Vec::with_capacity(entries.len());
    for entry in entries {
        let pair = entry
            .as_array()
            .ok()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("each entry of {field:?} must be a [term, weight] pair"))?;
        let term = pair[0]
            .as_u64()
            .ok()
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| format!("term ids in {field:?} must be u32 integers"))?;
        let weight =
            pair[1].as_f64().map_err(|_| format!("weights in {field:?} must be numbers"))? as f32;
        pairs.push((TermId(term), weight));
    }
    Ok(pairs)
}

/// A parsed `POST /queries` body: the spec plus its lifecycle options.
#[derive(Debug, Clone)]
pub struct RegisterRequest {
    pub spec: QuerySpec,
    /// Namespace name to intern; `None` registers into the default one.
    pub namespace: Option<String>,
    /// Per-query TTL in stream-time units, overriding the namespace
    /// policy's default.
    pub max_age: Option<f64>,
}

/// `POST /queries` body: `{"terms": [[t, w], ...], "k": 10}` plus optional
/// `"namespace"` and `"max_age"`; `k` defaults to 10 when absent.
pub fn parse_register(body: &Value) -> Result<RegisterRequest, String> {
    let terms = body.get("terms").ok_or("missing field \"terms\"")?;
    let pairs = parse_terms(terms, "terms")?;
    let k = match body.get("k") {
        None => 10,
        Some(k) => {
            let k = k.as_u64().map_err(|_| "\"k\" must be a positive integer".to_string())?;
            usize::try_from(k).map_err(|_| "\"k\" is out of range".to_string())?
        }
    };
    let namespace = match body.get("namespace") {
        None => None,
        Some(ns) => {
            Some(ns.as_str().map_err(|_| "\"namespace\" must be a string".to_string())?.to_string())
        }
    };
    let spec = QuerySpec::new(pairs, k).map_err(|e| e.to_string())?;
    Ok(RegisterRequest { spec, namespace, max_age: parse_max_age(body)? })
}

/// An optional, strictly positive `"max_age"` field (stream-time units).
fn parse_max_age(body: &Value) -> Result<Option<f64>, String> {
    match body.get("max_age") {
        None => Ok(None),
        Some(v) => {
            let age = v.as_f64().map_err(|_| "\"max_age\" must be a number".to_string())?;
            if age.is_nan() || age <= 0.0 {
                return Err("\"max_age\" must be a positive number".to_string());
            }
            Ok(Some(age))
        }
    }
}

/// `PUT /namespaces/{ns}/retention` body: any of `"max_age"` (TTL default
/// for the namespace), `"max_queries"` (live-member cap) and `"eviction"`
/// (`"oldest"`, the default, or `"lowest_score"`).
pub fn parse_retention(body: &Value) -> Result<RetentionPolicy, String> {
    let max_queries = match body.get("max_queries") {
        None => None,
        Some(v) => Some(
            v.as_u64().map_err(|_| "\"max_queries\" must be a non-negative integer".to_string())?,
        ),
    };
    let eviction = match body.get("eviction") {
        None => EvictionPolicy::Oldest,
        Some(v) => match v.as_str().map_err(|_| "\"eviction\" must be a string".to_string())? {
            "oldest" => EvictionPolicy::Oldest,
            "lowest_score" => EvictionPolicy::LowestScore,
            other => {
                return Err(format!(
                    "unknown eviction policy {other:?} (expected \"oldest\" or \"lowest_score\")"
                ))
            }
        },
    };
    Ok(RetentionPolicy { max_age: parse_max_age(body)?, max_queries, eviction })
}

/// The wire token of an eviction policy — the same strings
/// [`parse_retention`] accepts, so `GET` answers round-trip through `PUT`.
pub fn eviction_token(policy: EvictionPolicy) -> &'static str {
    match policy {
        EvictionPolicy::Oldest => "oldest",
        EvictionPolicy::LowestScore => "lowest_score",
    }
}

/// A parsed `POST /forget` body.
#[derive(Debug, Clone)]
pub struct ForgetRequest {
    pub namespace: String,
    /// Report what would be removed without removing anything.
    pub dry_run: bool,
}

/// `POST /forget` body: `{"namespace": "tenant", "dry_run": true}` previews,
/// `{"namespace": "tenant", "confirm": true}` removes. Exactly one of the
/// two flags must be set — a bulk delete is never the default.
pub fn parse_forget(body: &Value) -> Result<ForgetRequest, String> {
    let namespace = body
        .get("namespace")
        .ok_or("missing field \"namespace\"")?
        .as_str()
        .map_err(|_| "\"namespace\" must be a string".to_string())?
        .to_string();
    let flag = |name: &str| match body.get(name) {
        None => Ok(false),
        Some(v) => v.as_bool().map_err(|_| format!("{name:?} must be a boolean")),
    };
    match (flag("confirm")?, flag("dry_run")?) {
        (true, false) => Ok(ForgetRequest { namespace, dry_run: false }),
        (false, true) => Ok(ForgetRequest { namespace, dry_run: true }),
        (true, true) => Err("\"confirm\" and \"dry_run\" are mutually exclusive".to_string()),
        (false, false) => {
            Err("pass \"dry_run\": true to preview or \"confirm\": true to remove".to_string())
        }
    }
}

/// One document object: `{"terms": [[t, w], ...], "arrival": 12.5}`;
/// `arrival` defaults to 0 (the backend clamps arrivals monotone).
fn parse_doc(value: &Value) -> Result<(Vec<(TermId, f32)>, Timestamp), String> {
    let terms = value.get("terms").ok_or("each document needs a \"terms\" field")?;
    let pairs = parse_terms(terms, "terms")?;
    let arrival = match value.get("arrival") {
        None => 0.0,
        Some(a) => a.as_f64().map_err(|_| "\"arrival\" must be a number".to_string())?,
    };
    Ok((pairs, arrival))
}

/// `POST /publish` body — either a single document object or a batch
/// `{"docs": [{...}, ...]}`. An empty batch is a client error: a publish
/// must carry at least one document.
pub fn parse_publish(body: &Value) -> Result<PublishRequest, String> {
    let request: PublishRequest = match body.get("docs") {
        Some(docs) => {
            let docs = docs.as_array().map_err(|_| "\"docs\" must be an array of documents")?;
            docs.iter().map(parse_doc).collect::<Result<Vec<_>, _>>()?.into()
        }
        None => PublishRequest::from(parse_doc(body)?),
    };
    if request.is_empty() {
        return Err("a publish must carry at least one document".to_string());
    }
    Ok(request)
}

/// `POST /subscriptions` body: `{}` (or empty) subscribes to every query;
/// `{"queries": [0, 3]}` filters to those public query ids.
pub fn parse_subscribe(body: &Value) -> Result<Option<Vec<QueryId>>, String> {
    match body.get("queries") {
        None => Ok(None),
        Some(queries) => {
            let ids =
                queries.as_array().map_err(|_| "\"queries\" must be an array of query ids")?;
            ids.iter()
                .map(|id| {
                    id.as_u64()
                        .ok()
                        .and_then(|q| u32::try_from(q).ok())
                        .map(QueryId)
                        .ok_or_else(|| "query ids must be u32 integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

/// Parse a request body string as JSON, mapping the error for a 400.
pub fn parse_body(body: &str) -> Result<Value, String> {
    // An empty body is the empty object: several endpoints take all-default
    // parameters and `curl -X POST` sends no body at all.
    if body.trim().is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    serde_json::from_str::<Value>(body).map_err(|e| format!("invalid JSON body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn register_parses_terms_and_defaults_k() {
        let req = parse_register(&value(r#"{"terms": [[1, 0.6], [2, 0.8]]}"#)).unwrap();
        assert_eq!(req.spec.k, 10);
        assert_eq!(req.spec.vector.len(), 2);
        assert_eq!(req.namespace, None);
        assert_eq!(req.max_age, None);
        let req = parse_register(&value(r#"{"terms": [[1, 1.0]], "k": 3}"#)).unwrap();
        assert_eq!(req.spec.k, 3);
        // Validation errors surface with the QuerySpec message.
        assert!(parse_register(&value(r#"{"terms": [], "k": 3}"#)).is_err());
        assert!(parse_register(&value(r#"{"terms": [[1, 1.0]], "k": 0}"#)).is_err());
        assert!(parse_register(&value(r#"{"k": 3}"#)).unwrap_err().contains("terms"));
        assert!(parse_register(&value(r#"{"terms": [[1]], "k": 3}"#)).is_err());
    }

    #[test]
    fn register_parses_lifecycle_options() {
        let req = parse_register(&value(
            r#"{"terms": [[1, 1.0]], "namespace": "tenant-a", "max_age": 30.5}"#,
        ))
        .unwrap();
        assert_eq!(req.namespace.as_deref(), Some("tenant-a"));
        assert_eq!(req.max_age, Some(30.5));
        let err = parse_register(&value(r#"{"terms": [[1, 1.0]], "max_age": 0}"#)).unwrap_err();
        assert!(err.contains("max_age"), "{err}");
        assert!(parse_register(&value(r#"{"terms": [[1, 1.0]], "namespace": 7}"#)).is_err());
    }

    #[test]
    fn retention_parses_policy_fields() {
        let p = parse_retention(&value("{}")).unwrap();
        assert_eq!((p.max_age, p.max_queries), (None, None));
        assert_eq!(eviction_token(p.eviction), "oldest");
        let p = parse_retention(&value(
            r#"{"max_age": 60, "max_queries": 4, "eviction": "lowest_score"}"#,
        ))
        .unwrap();
        assert_eq!((p.max_age, p.max_queries), (Some(60.0), Some(4)));
        assert_eq!(eviction_token(p.eviction), "lowest_score");
        assert!(parse_retention(&value(r#"{"eviction": "newest"}"#)).is_err());
        assert!(parse_retention(&value(r#"{"max_age": -1}"#)).is_err());
    }

    #[test]
    fn forget_requires_exactly_one_flag() {
        let req = parse_forget(&value(r#"{"namespace": "a", "dry_run": true}"#)).unwrap();
        assert!(req.dry_run);
        let req = parse_forget(&value(r#"{"namespace": "a", "confirm": true}"#)).unwrap();
        assert!(!req.dry_run);
        // A flag explicitly set to false does not count as set.
        assert!(parse_forget(&value(r#"{"namespace": "a"}"#)).is_err());
        assert!(parse_forget(&value(r#"{"namespace": "a", "confirm": false}"#)).is_err());
        assert!(parse_forget(&value(r#"{"namespace": "a", "confirm": true, "dry_run": true}"#))
            .is_err());
        assert!(parse_forget(&value(r#"{"confirm": true}"#)).unwrap_err().contains("namespace"));
    }

    #[test]
    fn publish_accepts_single_and_batch() {
        let single = parse_publish(&value(r#"{"terms": [[7, 1.0]], "arrival": 2.5}"#)).unwrap();
        assert_eq!(single.len(), 1);
        let batch = parse_publish(&value(
            r#"{"docs": [{"terms": [[7, 1.0]]}, {"terms": [[8, 0.5]], "arrival": 1.0}]}"#,
        ))
        .unwrap();
        assert_eq!(batch.len(), 2);
        assert!(parse_publish(&value(r#"{"docs": []}"#)).is_err());
        assert!(parse_publish(&value(r#"{"arrival": 1.0}"#)).is_err());
    }

    #[test]
    fn subscribe_filter_is_optional() {
        assert_eq!(parse_subscribe(&value("{}")).unwrap(), None);
        assert_eq!(
            parse_subscribe(&value(r#"{"queries": [0, 4]}"#)).unwrap(),
            Some(vec![QueryId(0), QueryId(4)])
        );
        assert!(parse_subscribe(&value(r#"{"queries": [-1]}"#)).is_err());
    }

    #[test]
    fn empty_body_is_the_empty_object() {
        assert!(matches!(parse_body("").unwrap(), Value::Object(_)));
        assert!(parse_body("{nope").is_err());
    }
}
