//! `ctk-server`: a long-lived monitor daemon speaking HTTP/1.1 + JSON over
//! `std::net`, wrapping any [`MonitorBackend`] built by the facade's
//! [`MonitorBuilder`].
//!
//! The paper's system is a *service*: queries are standing subscriptions,
//! documents arrive forever, and the interesting output is the stream of
//! top-k result *changes*. This crate gives that service a wire surface:
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /queries` | register a query (optional `"namespace"`, `"max_age"`) → `{"query": id, "namespace": name}` |
//! | `DELETE /queries/{id}` | unregister |
//! | `GET /queries/{id}/results` | current top-k, best first |
//! | `POST /publish` | publish one document or a `{"docs": [...]}` batch → the wire-serialized [`PublishReceipt`] plus an `"admission"` object; under [`AdmissionPolicy::Reject`] a full ingest queue answers `429 Too Many Requests` with a `Retry-After` header instead of blocking |
//! | `POST /subscriptions` | subscribe to change events (optional `{"queries": [...]}` filter) |
//! | `DELETE /subscriptions/{id}` | unsubscribe |
//! | `GET /changes?subscriber=S&timeout_ms=T&max=N` | long-poll buffered change events |
//! | `PUT /namespaces/{ns}/retention` | install a retention policy (`max_age`, `max_queries`, `eviction`) |
//! | `GET /namespaces/{ns}/retention` | read a namespace's policy (404 for unknown namespaces) |
//! | `POST /forget` | bulk-remove a namespace: `{"namespace": n, "dry_run": true}` previews, `"confirm": true` removes |
//! | `GET /stats` | engine, λ, shards, query/publish counters, expiry/eviction totals, per-namespace counts, storage counters (`index_bytes`, `hot_pages`, `cold_pages`, `page_faults`), ingest-queue occupancy (`queue_depth`, `queue_capacity`, `queue_highwater`), fan-out totals |
//! | `POST /snapshot` | capture the full monitor state as a versioned JSON snapshot; `?stream=1` streams the same bytes section-by-section (EOF-framed, connection closes) without materializing the JSON tree; with a journal configured this is a **checkpoint** — the snapshot lands in `checkpoint.json` and the journal truncates |
//! | `POST /restore` | replace the live monitor from a snapshot → id mapping (rejects snapshot versions newer than this build reads; checkpointed when a journal is active) |
//! | `POST /admin/drain` | refuse further publishes (503), flush in-flight ones, wake pollers |
//! | `GET /healthz` | liveness + `draining`/`warming` flags (always `200` while the process is up) |
//! | `GET /readyz` | readiness: `200` once journal replay finished and the server is not draining, else `503` with the blocking state |
//!
//! Architecture in one paragraph: a single **ingest thread** owns the
//! backend; connection handlers enqueue commands onto a *bounded* channel
//! and block for the reply, so a slow monitor pushes back on publishers
//! through their own sockets. Change fan-out happens on the ingest thread
//! before the publisher is acked, into per-subscriber bounded buffers that
//! drop oldest and report the gap. See [`server`] for the details,
//! [`subscribers`] for delivery semantics, and `examples/serve.rs` in the
//! workspace root for the runnable daemon.
//!
//! [`MonitorBackend`]: ctk_core::MonitorBackend
//! [`MonitorBuilder`]: continuous_topk::MonitorBuilder
//! [`PublishReceipt`]: ctk_core::PublishReceipt

pub mod client;
pub mod http;
pub mod journal;
pub mod server;
pub mod signal;
pub mod subscribers;
pub mod wire;

pub use client::HttpClient;
pub use journal::{
    decode_records, encode_record, FailpointWriter, FsyncPolicy, Journal, JournalConfig, Recovery,
    TailState,
};
pub use server::{AdmissionPolicy, CtkServer, ServeConfig, ServerBuilder, ServerStats};
pub use subscribers::{ChangeEvent, PollOutcome, SubscriberRegistry};
