//! Lightweight query catalog for the frequency-ordered baselines.
//!
//! RTA and SortQuer do not keep ID-ordered postings, so they cannot reuse
//! `ctk_index::QueryIndex`; they still need each query's term vector for
//! exact re-scoring. The catalog stores exactly that (and nothing else).

use ctk_common::{FxHashMap, QueryId, SparseVector, TermId};

/// One stored query: its (normalized) term pairs.
#[derive(Debug, Clone)]
pub struct StoredQuery {
    pub terms: Vec<(TermId, f32)>,
}

/// Dense query catalog with monotone id allocation.
#[derive(Debug, Default)]
pub struct Catalog {
    queries: Vec<Option<StoredQuery>>,
    live: usize,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, vector: &SparseVector) -> QueryId {
        let qid = QueryId(self.queries.len() as u32);
        self.queries.push(Some(StoredQuery { terms: vector.iter().collect() }));
        self.live += 1;
        qid
    }

    pub fn remove(&mut self, qid: QueryId) -> Option<StoredQuery> {
        let q = self.queries.get_mut(qid.index())?.take();
        if q.is_some() {
            self.live -= 1;
        }
        q
    }

    #[inline]
    pub fn get(&self, qid: QueryId) -> Option<&StoredQuery> {
        self.queries.get(qid.index()).and_then(|q| q.as_ref())
    }

    #[inline]
    pub fn num_live(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn num_slots(&self) -> usize {
        self.queries.len()
    }

    /// Ids of live queries, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.iter().enumerate().filter_map(|(i, q)| q.as_ref().map(|_| QueryId(i as u32)))
    }

    /// Exact raw dot product of a stored query with a document given as a
    /// term→weight map.
    pub fn dot(&self, qid: QueryId, doc_weights: &FxHashMap<TermId, f64>) -> f64 {
        let Some(q) = self.get(qid) else { return 0.0 };
        q.terms.iter().filter_map(|&(t, w)| doc_weights.get(&t).map(|&f| f * w as f64)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    #[test]
    fn insert_get_remove() {
        let mut c = Catalog::new();
        let a = c.insert(&vector(&[(1, 1.0)]));
        let b = c.insert(&vector(&[(2, 1.0)]));
        assert_eq!((a, b), (QueryId(0), QueryId(1)));
        assert_eq!(c.num_live(), 2);
        assert!(c.remove(a).is_some());
        assert!(c.remove(a).is_none());
        assert_eq!(c.num_live(), 1);
        assert!(c.get(a).is_none());
        assert_eq!(c.live_ids().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn dot_against_doc_map() {
        let mut c = Catalog::new();
        let q = c.insert(&vector(&[(1, 3.0), (2, 4.0)])); // normalized 0.6/0.8
        let mut dw = FxHashMap::default();
        dw.insert(TermId(2), 0.5);
        dw.insert(TermId(9), 1.0);
        assert!((c.dot(q, &dw) - 0.8 * 0.5).abs() < 1e-6);
        assert_eq!(c.dot(QueryId(99), &dw), 0.0);
    }
}
