//! RTA — personalized top-k over web 2.0 streams (Haghani et al., CIKM'10).
//!
//! The frequency-ordered ("impact-ordered") paradigm the paper departs from:
//! per-term lists sorted by descending snapshot impact `u = w/S_k`, probed
//! with a threshold-algorithm (TA) descent. For each document the rails walk
//! their lists in parallel; the running TA threshold
//! `T = Σ_j f_j · bound_j(depth_j)` upper-bounds the normalized score of any
//! *unseen* query, so the walk stops once `T < θ_d`. Every query encountered
//! before the stop is fully evaluated on first sight.
//!
//! Impacts are **snapshots**: `S_k` only grows between rebuilds, so stored
//! bounds stay valid upper bounds, but they loosen over time — lists are
//! re-sorted with fresh impacts every `rebuild_every` events (and forcibly
//! after a landmark renormalization, which *raises* `u` and would otherwise
//! break the upper-bound contract).

use crate::catalog::Catalog;
use ctk_common::{Document, FxHashMap, QueryId, QuerySpec, ScoredDoc, TermId};
use ctk_core::engine::EngineBase;
use ctk_core::stats::{CumulativeStats, EventStats};
use ctk_core::topk::TopKState;
use ctk_core::traits::{ContinuousTopK, ResultChange};
use ctk_index::ImpactList;

/// Default list-refresh period (stream events).
pub const DEFAULT_REBUILD_EVERY: u64 = 64;

/// The RTA baseline.
pub struct Rta {
    base: EngineBase,
    catalog: Catalog,
    lists: Vec<ImpactList>,
    term_map: FxHashMap<TermId, u32>,
    rebuild_every: u64,
    events_since_rebuild: u64,
    // Per-event buffers.
    doc_weights: FxHashMap<TermId, f64>,
    seen_epoch: Vec<u32>,
    epoch: u32,
}

impl Rta {
    pub fn new(lambda: f64) -> Self {
        Rta::with_rebuild_every(lambda, DEFAULT_REBUILD_EVERY)
    }

    /// Control how often impact lists are refreshed.
    pub fn with_rebuild_every(lambda: f64, rebuild_every: u64) -> Self {
        assert!(rebuild_every >= 1);
        Rta {
            base: EngineBase::new(lambda),
            catalog: Catalog::new(),
            lists: Vec::new(),
            term_map: FxHashMap::default(),
            rebuild_every,
            events_since_rebuild: 0,
            doc_weights: FxHashMap::default(),
            seen_epoch: Vec::new(),
            epoch: 0,
        }
    }

    fn list_of(&mut self, term: TermId) -> u32 {
        *self.term_map.entry(term).or_insert_with(|| {
            self.lists.push(ImpactList::new());
            (self.lists.len() - 1) as u32
        })
    }

    fn rebuild_lists(&mut self) {
        let base = &self.base;
        for list in &mut self.lists {
            list.rebuild(|qid, w| base.normalized_of(qid, w as f64));
        }
        self.events_since_rebuild = 0;
    }
}

impl ContinuousTopK for Rta {
    fn name(&self) -> &'static str {
        "RTA"
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.catalog.insert(&spec.vector);
        self.base.push_state(spec.k as u32);
        self.seen_epoch.push(0);
        for (term, w) in spec.vector.iter() {
            let li = self.list_of(term);
            // Fresh queries are unfilled: snapshot impact +inf.
            self.lists[li as usize].insert(qid, w, f64::INFINITY);
        }
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        let Some(stored) = self.catalog.remove(qid) else { return false };
        for (term, _) in &stored.terms {
            if let Some(&li) = self.term_map.get(term) {
                self.lists[li as usize].remove(qid);
            }
        }
        self.base.drop_state(qid);
        true
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        // Raising S_k only shrinks true impacts, so existing snapshot
        // bounds stay valid; the periodic rebuild re-tightens them.
        self.base.seed(qid, seeds);
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (theta, amp, renorm) = self.base.begin_event(doc.arrival);
        self.events_since_rebuild += 1;
        if renorm.is_some() || self.events_since_rebuild >= self.rebuild_every {
            self.rebuild_lists();
        }
        let mut ev = EventStats::default();

        self.doc_weights.clear();
        for (t, f) in doc.vector.iter() {
            self.doc_weights.insert(t, f as f64);
        }

        // Rails over the document's matched lists.
        struct Rail {
            list: u32,
            f: f64,
            depth: usize,
        }
        let mut rails: Vec<Rail> = Vec::with_capacity(doc.vector.len());
        for (term, f) in doc.vector.iter() {
            if let Some(&li) = self.term_map.get(&term) {
                if !self.lists[li as usize].is_empty() {
                    rails.push(Rail { list: li, f: f as f64, depth: 0 });
                }
            }
        }
        ev.matched_lists = rails.len() as u64;

        self.epoch += 1;
        let mut pending: Vec<QueryId> = Vec::new();
        loop {
            // TA threshold at the current depths. Only the comparison with
            // θ matters, so the sum short-circuits once it crosses θ —
            // remaining terms are non-negative.
            let mut t_bound = 0.0f64;
            let mut live_rails = 0usize;
            for r in &rails {
                let entries = self.lists[r.list as usize].as_slice();
                if r.depth < entries.len() {
                    live_rails += 1;
                    let b = entries[r.depth].bound;
                    if b > 0.0 {
                        t_bound += r.f * b;
                    }
                    ev.bound_computations += 1;
                    if t_bound >= theta {
                        break;
                    }
                }
            }
            if live_rails == 0 || t_bound < theta {
                break;
            }
            ev.iterations += 1;

            // One parallel sorted access on every live rail.
            pending.clear();
            for r in &mut rails {
                let entries = self.lists[r.list as usize].as_slice();
                if r.depth >= entries.len() {
                    continue;
                }
                let e = entries[r.depth];
                r.depth += 1;
                ev.postings_accessed += 1;
                let slot = e.qid.index();
                if self.seen_epoch[slot] != self.epoch {
                    self.seen_epoch[slot] = self.epoch;
                    pending.push(e.qid);
                }
            }
            // Evaluate first-sight queries (ascending id for determinism).
            pending.sort_unstable();
            for &qid in &pending {
                let dot = self.catalog.dot(qid, &self.doc_weights);
                ev.full_evaluations += 1;
                if self.base.offer(qid, doc, dot, amp) {
                    ev.updates += 1;
                    // Impacts for qid are now stale-but-valid; the periodic
                    // rebuild re-tightens them.
                }
            }
        }

        ev.accumulate_into(&mut self.base.cum);
        ev
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.catalog.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::DocId;

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn basic_results() {
        let mut r = Rta::new(0.0);
        let q = r.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        r.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        r.process(&doc(2, &[(2, 1.0), (3, 1.0)], 1.0));
        let res = r.results(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].doc, DocId(1));
    }

    #[test]
    fn ta_stop_prunes_after_rebuild() {
        // Rebuild every event so snapshots are always tight, making the TA
        // stop condition observable.
        let mut r = Rta::with_rebuild_every(0.0, 1);
        let q = r.register(spec(&[(1, 1.0)], 1));
        r.process(&doc(0, &[(1, 1.0)], 0.0)); // threshold -> 1.0
        for i in 1..11u64 {
            r.process(&doc(i, &[(1, 0.05), (2, 1.0)], i as f64));
        }
        let cum = r.cumulative();
        assert!(cum.full_evaluations < cum.events, "{cum:?}");
        assert_eq!(r.results(q).unwrap()[0].doc, DocId(0));
    }

    #[test]
    fn stale_snapshots_never_lose_results() {
        // Never rebuild: bounds stay maximally stale; results must still be
        // exact (staleness only over-estimates).
        let mut r = Rta::with_rebuild_every(0.0, u64::MAX);
        let q = r.register(spec(&[(1, 1.0), (7, 0.5)], 2));
        let mut best = Vec::new();
        for i in 0..30u64 {
            let w1 = 0.1 + ((i * 13) % 10) as f32 / 10.0;
            let d = doc(i, &[(1, w1), (2, 1.0)], i as f64);
            best.push((d.vector.weight(TermId(1)) as f64, i));
            r.process(&d);
        }
        // Descending weight; ties broken by *smaller* doc id (the system's
        // tie-break rule).
        best.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let got: Vec<u64> = r.results(q).unwrap().iter().map(|s| s.doc.0).collect();
        assert_eq!(got, vec![best[0].1, best[1].1]);
    }

    #[test]
    fn unregister_removes_from_lists() {
        let mut r = Rta::new(0.0);
        let a = r.register(spec(&[(1, 1.0)], 1));
        let b = r.register(spec(&[(1, 1.0)], 1));
        assert!(r.unregister(a));
        r.process(&doc(1, &[(1, 1.0)], 0.0));
        assert!(r.results(a).is_none());
        assert_eq!(r.results(b).unwrap().len(), 1);
        assert_eq!(r.num_queries(), 1);
    }
}
