//! TPS — top-k publish-subscribe (Shraer et al., PVLDB 2013).
//!
//! Like RIO, TPS indexes subscriptions (queries) in **ID-ordered** lists and
//! skips with a WAND pivot. The difference — and the reason the paper's RIO
//! beats it — is the bound: TPS decouples term weights from thresholds.
//! Each list carries its maximum *raw* weight and its maximum *inverse
//! threshold*, combined only at the prefix level:
//!
//! ```text
//! UB_TPS(i) = ( Σ_{j≤i} f_j · maxw_j ) · max_{j≤i} max_{q∈L_j} 1/S_k(q)
//! ```
//!
//! This is a valid upper bound (any candidate in the prefix lives in some
//! list `j ≤ i`, so its `1/S_k` is covered by the max), but one hard query
//! (small `S_k`, or unfilled) inflates the bound for its *whole list* —
//! where RIO couples weight and threshold per entry, and MRIO narrows both
//! to the current zone. Hence TPS jumps less and evaluates more.

use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use ctk_core::engine::{advance_past_current, advance_to, CursorSet, EngineBase};
use ctk_core::stats::{CumulativeStats, EventStats};
use ctk_core::topk::TopKState;
use ctk_core::traits::{ContinuousTopK, ResultChange};
use ctk_index::{QueryIndex, StorageConfig, StorageStats, VersionedMaxTracker};

/// The TPS baseline.
pub struct Tps {
    base: EngineBase,
    index: QueryIndex,
    /// Per-list maximum raw weight (stale-valid under tombstoning).
    wmax: Vec<f64>,
    /// Per-list maximum of `1/S_k` over the queries in the list.
    inv_sk: Vec<VersionedMaxTracker>,
    cursors: CursorSet,
}

impl Tps {
    pub fn new(lambda: f64) -> Self {
        Tps::with_storage(lambda, &StorageConfig::plain())
    }

    /// As [`Tps::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Tps {
            base: EngineBase::new(lambda),
            index: QueryIndex::with_storage(storage),
            wmax: Vec::new(),
            inv_sk: Vec::new(),
            cursors: CursorSet::default(),
        }
    }

    fn push_inv_sk(&mut self, qid: QueryId) {
        let Some(state) = self.base.state(qid) else { return };
        let t = state.threshold();
        let inv = if t > 0.0 { 1.0 / t } else { f64::INFINITY };
        let version = state.version();
        let Some(rec) = self.index.record(qid) else { return };
        for e in rec.entries() {
            self.inv_sk[e.list as usize].push(qid, version, inv);
        }
    }

    fn refresh_all_inv_sk(&mut self) {
        let qids: Vec<QueryId> = self.index.live_ids().collect();
        for qid in qids {
            self.push_inv_sk(qid);
        }
    }
}

impl ContinuousTopK for Tps {
    fn name(&self) -> &'static str {
        "TPS"
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.index.register(&spec.vector, spec.k as u32);
        self.base.push_state(spec.k as u32);
        while self.wmax.len() < self.index.num_lists() {
            self.wmax.push(0.0);
            self.inv_sk.push(VersionedMaxTracker::new());
        }
        if let Some(rec) = self.index.record(qid) {
            for e in rec.entries() {
                let li = e.list as usize;
                if (e.weight as f64) > self.wmax[li] {
                    self.wmax[li] = e.weight as f64;
                }
            }
        }
        self.push_inv_sk(qid);
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        if self.index.unregister(qid).is_some() {
            self.base.drop_state(qid);
            // wmax stays as a (stale but valid) upper bound.
            true
        } else {
            false
        }
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        if self.base.seed(qid, seeds) {
            self.push_inv_sk(qid);
        }
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (theta, amp, renorm) = self.base.begin_event(doc.arrival);
        if renorm.is_some() {
            self.refresh_all_inv_sk();
        }
        let mut ev = EventStats {
            matched_lists: self.cursors.build(&self.index, doc) as u64,
            ..EventStats::default()
        };

        loop {
            if self.cursors.is_empty() {
                break;
            }
            ev.iterations += 1;

            // Pivot: smallest i with
            // (Σ_{j<=i} f_j·wmax_j) · (max_{j<=i} invmax_j) >= theta.
            let mut pivot_idx = None;
            let mut prefix = 0.0f64;
            let mut inv_run = 0.0f64;
            {
                let base = &self.base;
                let inv_sk = &mut self.inv_sk;
                for (i, c) in self.cursors.cursors.iter().enumerate() {
                    prefix += c.f * self.wmax[c.list as usize];
                    let inv = inv_sk[c.list as usize].peek_max(|q, v| base.is_current(q, v));
                    if inv > inv_run {
                        inv_run = inv;
                    }
                    ev.bound_computations += 1;
                    if prefix * inv_run >= theta {
                        pivot_idx = Some(i);
                        break;
                    }
                }
            }
            let Some(p) = pivot_idx else {
                break; // global bound: nothing anywhere qualifies
            };
            let pivot = self.cursors.cursors[p].qid;

            if self.cursors.cursors[0].qid == pivot {
                let mut dot = 0.0f64;
                let mut moved = 0usize;
                for c in self.cursors.cursors.iter_mut() {
                    if c.qid != pivot {
                        break;
                    }
                    let posting = self.index.list(c.list).get(c.pos);
                    dot += c.f * posting.weight as f64;
                    ev.postings_accessed += 1;
                    advance_past_current(&self.index, c);
                    moved += 1;
                }
                ev.full_evaluations += 1;
                if self.base.offer(pivot, doc, dot, amp) {
                    ev.updates += 1;
                    self.push_inv_sk(pivot);
                }
                self.cursors.repair_prefix(moved);
            } else {
                for c in self.cursors.cursors[..p].iter_mut() {
                    advance_to(&self.index, c, pivot);
                    ev.postings_accessed += 1;
                }
                self.cursors.repair_prefix(p);
            }
        }

        {
            let base = &self.base;
            for c in &self.cursors.cursors {
                self.inv_sk[c.list as usize].maybe_compact(|q, v| base.is_current(q, v));
            }
        }
        ev.accumulate_into(&mut self.base.cum);
        ev
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.index.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }

    fn tombstone_ratio(&self) -> f64 {
        self.index.tombstone_ratio()
    }

    fn compact_index(&mut self) -> usize {
        // `wmax` is a stale-valid upper bound and the `inv_sk` trackers are
        // keyed by (qid, version), so neither depends on list positions.
        self.index.compact().len()
    }

    fn storage_stats(&self) -> StorageStats {
        self.index.storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn basic_results() {
        let mut t = Tps::new(0.0);
        let q = t.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        t.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        t.process(&doc(2, &[(2, 1.0), (3, 1.0)], 1.0));
        let res = t.results(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].doc, DocId(1));
    }

    #[test]
    fn coarser_bound_still_prunes_eventually() {
        let mut t = Tps::new(0.0);
        let q_easy = t.register(spec(&[(1, 1.0)], 1));
        t.process(&doc(0, &[(1, 1.0)], 0.0)); // threshold 1.0
        for i in 1..11u64 {
            t.process(&doc(i, &[(1, 0.05), (2, 1.0)], i as f64));
        }
        // All queries filled, bound finite: the weak term-1 docs must be
        // prunable (f·wmax·(1/S_k) = 0.05 < 1).
        let cum = t.cumulative();
        assert!(cum.full_evaluations < cum.events, "{cum:?}");
        assert_eq!(t.results(q_easy).unwrap()[0].doc, DocId(0));
    }

    #[test]
    fn unregister_releases_query() {
        let mut t = Tps::new(0.0);
        let a = t.register(spec(&[(1, 1.0)], 1));
        let b = t.register(spec(&[(1, 1.0)], 1));
        t.process(&doc(1, &[(1, 1.0)], 0.0));
        assert!(t.unregister(a));
        t.process(&doc(2, &[(1, 1.0)], 1.0));
        assert!(t.results(a).is_none());
        assert!(t.results(b).unwrap().len() == 1);
    }
}
