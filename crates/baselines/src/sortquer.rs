//! SortQuer — continuous text queries with sorted query lists
//! (Vouzoukidou et al., CIKM 2012).
//!
//! Term-at-a-time over **weight-ordered** lists (the order never changes,
//! since weights are immutable — the structural appeal of this baseline).
//! For one document:
//!
//! 1. matched lists are processed in decreasing `f_j · maxw_j` order;
//! 2. each list is scanned in weight order, accumulating `acc[q] += f_j·w`;
//!    the scan **cuts off** once `f_j·w + P_after(j) < θ_d · minS_k` — past
//!    that point no *new* query can possibly qualify (its whole remaining
//!    potential is below the easiest threshold in the system);
//! 3. every cut contributes `f_j·w_cut` of *slack*: an accumulated query
//!    may be missing at most that much from the cut list, so the final
//!    filter is `acc[q] + slack ≥ θ_d·S_k(q)`;
//! 4. surviving candidates are re-scored exactly from the catalog and
//!    offered to their result sets.
//!
//! `minS_k` is tracked as `1/max(1/S_k)` with a versioned max-heap. While
//! any query is unfilled (`S_k = 0`) the cutoff is disabled and the scan is
//! exhaustive — the same warm-up behaviour as every other method here.

use crate::catalog::Catalog;
use ctk_common::{Document, FxHashMap, QueryId, QuerySpec, ScoredDoc, TermId};
use ctk_core::engine::EngineBase;
use ctk_core::stats::{CumulativeStats, EventStats};
use ctk_core::topk::TopKState;
use ctk_core::traits::{ContinuousTopK, ResultChange};
use ctk_index::{VersionedMaxTracker, WeightOrderedList};

/// The SortQuer baseline.
pub struct SortQuer {
    base: EngineBase,
    catalog: Catalog,
    lists: Vec<WeightOrderedList>,
    term_map: FxHashMap<TermId, u32>,
    /// Global max of `1/S_k`, i.e. `1/minS_k`.
    inv_sk: VersionedMaxTracker,
    // Per-event buffers.
    doc_weights: FxHashMap<TermId, f64>,
    acc: FxHashMap<u32, f64>,
    candidates: Vec<u32>,
}

impl SortQuer {
    pub fn new(lambda: f64) -> Self {
        SortQuer {
            base: EngineBase::new(lambda),
            catalog: Catalog::new(),
            lists: Vec::new(),
            term_map: FxHashMap::default(),
            inv_sk: VersionedMaxTracker::new(),
            doc_weights: FxHashMap::default(),
            acc: FxHashMap::default(),
            candidates: Vec::new(),
        }
    }

    fn list_of(&mut self, term: TermId) -> u32 {
        *self.term_map.entry(term).or_insert_with(|| {
            self.lists.push(WeightOrderedList::new());
            (self.lists.len() - 1) as u32
        })
    }

    fn push_inv_sk(&mut self, qid: QueryId) {
        let Some(state) = self.base.state(qid) else { return };
        let t = state.threshold();
        let inv = if t > 0.0 { 1.0 / t } else { f64::INFINITY };
        self.inv_sk.push(qid, state.version(), inv);
    }

    fn refresh_all_inv_sk(&mut self) {
        let qids: Vec<QueryId> = self.catalog.live_ids().collect();
        for qid in qids {
            self.push_inv_sk(qid);
        }
    }
}

impl ContinuousTopK for SortQuer {
    fn name(&self) -> &'static str {
        "SortQuer"
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.catalog.insert(&spec.vector);
        self.base.push_state(spec.k as u32);
        for (term, w) in spec.vector.iter() {
            let li = self.list_of(term);
            self.lists[li as usize].insert(qid, w);
        }
        self.push_inv_sk(qid);
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        let Some(stored) = self.catalog.remove(qid) else { return false };
        for (term, _) in &stored.terms {
            if let Some(&li) = self.term_map.get(term) {
                self.lists[li as usize].remove(qid);
            }
        }
        self.base.drop_state(qid);
        true
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        if self.base.seed(qid, seeds) {
            self.push_inv_sk(qid);
        }
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (theta, amp, renorm) = self.base.begin_event(doc.arrival);
        if renorm.is_some() {
            self.refresh_all_inv_sk();
        }
        let mut ev = EventStats::default();

        self.doc_weights.clear();
        for (t, f) in doc.vector.iter() {
            self.doc_weights.insert(t, f as f64);
        }

        // Matched lists, ordered by decreasing maximum possible
        // contribution f_j·maxw_j (first entry of each weight-sorted list).
        let mut matched: Vec<(u32, f64, f64)> = Vec::new(); // (list, f, f*maxw)
        for (term, f) in doc.vector.iter() {
            if let Some(&li) = self.term_map.get(&term) {
                let entries = self.lists[li as usize].as_slice();
                if let Some(&(_, w0)) = entries.first() {
                    let fj = f as f64;
                    matched.push((li, fj, fj * w0 as f64));
                }
            }
        }
        matched.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        ev.matched_lists = matched.len() as u64;

        // Suffix potentials P_after[j] = Σ_{j' > j} f·maxw.
        let mut p_after: Vec<f64> = vec![0.0; matched.len()];
        for j in (0..matched.len().saturating_sub(1)).rev() {
            p_after[j] = p_after[j + 1] + matched[j + 1].2;
        }

        // minS_k over all live queries (0 while anyone is unfilled).
        let inv = {
            let base = &self.base;
            self.inv_sk.peek_max(|q, v| base.is_current(q, v))
        };
        ev.bound_computations += 1;
        let min_sk = if inv.is_infinite() {
            0.0
        } else if inv > 0.0 {
            1.0 / inv
        } else {
            f64::INFINITY // no queries: cut everything immediately
        };

        // Phase 1: accumulate with per-list cutoffs.
        self.acc.clear();
        let mut slack = 0.0f64;
        for (j, &(li, fj, _)) in matched.iter().enumerate() {
            ev.iterations += 1;
            let entries = self.lists[li as usize].as_slice();
            let mut cut = false;
            for &(qid, w) in entries {
                let contribution = fj * w as f64;
                // No new query starting here (or later in this list) can
                // reach even the easiest threshold in the system.
                if contribution + p_after[j] < theta * min_sk {
                    slack += contribution;
                    cut = true;
                    break;
                }
                ev.postings_accessed += 1;
                *self.acc.entry(qid.0).or_insert(0.0) += contribution;
            }
            ev.bound_computations += 1;
            let _ = cut;
        }

        // Phase 2: filter + exact re-score.
        self.candidates.clear();
        self.candidates.extend(self.acc.keys().copied());
        self.candidates.sort_unstable();
        let candidates = std::mem::take(&mut self.candidates);
        for &q in &candidates {
            let qid = QueryId(q);
            let partial = self.acc[&q];
            let sk = self.base.threshold_of(qid);
            if partial + slack < theta * sk {
                continue; // cannot qualify even with all cut contributions
            }
            // Exact score: the accumulator is already exact when nothing
            // was cut; otherwise re-score from the catalog.
            let dot = if slack == 0.0 { partial } else { self.catalog.dot(qid, &self.doc_weights) };
            ev.full_evaluations += 1;
            if self.base.offer(qid, doc, dot, amp) {
                ev.updates += 1;
                self.push_inv_sk(qid);
            }
        }
        self.candidates = candidates;

        {
            let base = &self.base;
            self.inv_sk.maybe_compact(|q, v| base.is_current(q, v));
        }
        ev.accumulate_into(&mut self.base.cum);
        ev
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.catalog.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::DocId;

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn basic_results() {
        let mut s = SortQuer::new(0.0);
        let q = s.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        s.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        s.process(&doc(2, &[(2, 1.0), (3, 1.0)], 1.0));
        let res = s.results(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].doc, DocId(1));
        assert!((res[1].score.get() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cutoff_skips_tail_entries_once_filled() {
        let mut s = SortQuer::new(0.0);
        // Two queries on term 1 with very different weights; both k=1.
        let strong = s.register(spec(&[(1, 1.0)], 1));
        let weak = s.register(spec(&[(1, 0.05), (2, 1.0)], 1));
        // Fill both with a perfect match each.
        s.process(&doc(0, &[(1, 1.0)], 0.0));
        s.process(&doc(1, &[(2, 1.0)], 1.0));
        let before = s.cumulative().postings_accessed;
        // A weak term-1 doc: max contribution 0.05·1.0 < min_sk·θ — the
        // whole term-1 list scan cuts immediately.
        s.process(&doc(2, &[(1, 0.02), (3, 1.0)], 2.0));
        let after = s.cumulative().postings_accessed;
        assert_eq!(after - before, 0, "cutoff should skip all entries");
        assert_eq!(s.results(strong).unwrap()[0].doc, DocId(0));
        let _ = weak;
    }

    #[test]
    fn slack_path_keeps_exactness() {
        let mut s = SortQuer::new(0.0);
        // Query with two terms whose list entries will straddle a cutoff.
        let q = s.register(spec(&[(1, 1.0), (2, 1.0)], 1));
        let filler = s.register(spec(&[(1, 1.0)], 1));
        s.process(&doc(0, &[(1, 1.0), (2, 1.0)], 0.0));
        // Later docs with split weights exercise partial accumulators.
        for i in 1..10u64 {
            s.process(&doc(i, &[(1, 0.4), (2, 0.9), (4, 0.2)], i as f64));
        }
        // Exactness check against a directly computed best.
        let res = s.results(q).unwrap();
        assert_eq!(res[0].doc, DocId(0), "perfect match stays on top");
        let _ = filler;
    }

    #[test]
    fn unregister_removes_query() {
        let mut s = SortQuer::new(0.0);
        let a = s.register(spec(&[(1, 1.0)], 1));
        let b = s.register(spec(&[(1, 1.0)], 1));
        assert!(s.unregister(a));
        assert!(!s.unregister(a));
        s.process(&doc(1, &[(1, 1.0)], 0.0));
        assert!(s.results(a).is_none());
        assert_eq!(s.results(b).unwrap().len(), 1);
    }
}
