//! # ctk-baselines
//!
//! The three published competitors the paper evaluates against (§IV), each
//! implemented from the defining idea of its reference:
//!
//! * [`Rta`] — Haghani, Michel, Aberer, *"The gist of everything new"*
//!   (CIKM 2010): impact-ordered lists + threshold-algorithm descent.
//! * [`SortQuer`] — Vouzoukidou, Amann, Christophides (CIKM 2012):
//!   weight-ordered lists, term-at-a-time accumulation with tail-potential
//!   cutoffs and candidate filtering.
//! * [`Tps`] — Shraer, Gurevich, Fontoura, Josifovski, *"Top-k
//!   publish-subscribe for social annotation of news"* (PVLDB 2013):
//!   WAND-style skipping over ID-ordered lists with per-list raw-weight
//!   maxima and one global threshold bound — the same paradigm as RIO but
//!   with coarser (weight/threshold-decoupled) bounds.
//!
//! All three implement [`ctk_core::ContinuousTopK`] and are verified to be
//! result-identical to the exhaustive oracle in the workspace integration
//! tests; see DESIGN.md §2 "Fidelity note" for what is and isn't specified
//! by the original papers.

pub mod catalog;
pub mod rta;
pub mod sortquer;
pub mod tps;

pub use rta::Rta;
pub use sortquer::SortQuer;
pub use tps::Tps;
