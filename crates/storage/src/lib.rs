//! `ctk-storage`: compressed block postings and paged RAM/disk storage.
//!
//! The space side of the monitor's scaling story. Three layers:
//!
//! * [`codec`] — the sealed-block format: delta + bit-packed query ids,
//!   f32 weights raw (lossless, the default) or 16-bit quantized behind
//!   [`WeightCodec`], tombstones as zero-weight slots. Blocks hold exactly
//!   [`BLOCK_LEN`] postings so they align 1:1 with `BlockMax` zones.
//! * [`pager`] — [`PageManager`]: a byte-budgeted hot/cold page pool with
//!   second-chance eviction, spill-to-disk via plain `std::fs`, and
//!   [`PagePin`]s so frozen index epochs keep their resident pages.
//! * [`list`] — [`CompressedList`]: the ID-ordered postings list built from
//!   sealed blocks plus an uncompressed tail, with liveness-word tombstones
//!   and compaction as the re-compression point.
//!
//! `ctk-index` plugs [`CompressedList`] in behind its `PostingsStore` seam;
//! this crate knows nothing about the index layer (it depends only on
//! `ctk-common` for the tombstone sentinel).

pub mod codec;
pub mod list;
pub mod pager;

pub use codec::{decode_block, encode_block, WeightCodec, BLOCK_LEN};
pub use list::{CompressedList, StoreContext};
pub use pager::{Page, PageManager, PagePin, PagerStats};
