//! A compressed, optionally paged ID-ordered postings list.
//!
//! Full blocks of [`BLOCK_LEN`] postings are sealed through the block codec
//! (delta + bit-packed ids, raw or quantized weights); the newest postings
//! live in an uncompressed tail until it fills. Sealed payloads are
//! immutable and structurally shared by clones (the doc-parallel monitor's
//! copy-on-write epochs), so cloning a list is O(blocks) pointer copies.
//!
//! Tombstones never rewrite sealed bytes: a per-block liveness word (one
//! bit per slot) overrides the stored weight with the `0.0` sentinel on
//! read, and `seek_live` skips dead runs by scanning liveness words without
//! decoding. Compaction re-encodes the survivors — sealed blocks are
//! rebuilt, which is exactly the "compaction is the re-compression point"
//! design from the storage subsystem issue.
//!
//! Reads decode through a small thread-local direct-mapped block cache
//! keyed by a globally unique per-block id, so sequential walks decode each
//! block once per thread, and clones sharing a block share its cache entry.
//!
//! **Memory layout.** Real-world term/query distributions are heavy-tailed:
//! most lists hold a handful of postings and never seal a block, so the
//! per-list *fixed* cost decides whether compression wins at all. The
//! struct is therefore minimal — an exact-fit boxed-slice tail and an
//! `Option<Box>` of sealed-side tables (`SealedState`, allocated on the
//! first seal) — 24 bytes in release builds, *smaller* than a plain
//! `Vec`-backed list's 32. The sealing policy (codec and pager) lives in
//! the caller's [`StoreContext`], not in every list.

use crate::codec::{decode_block, encode_block, WeightCodec, BLOCK_LEN};
use crate::pager::{Page, PageManager, PagePin};
use ctk_common::is_tombstone_weight;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique sealed-block ids; 0 is reserved as "no block" so a
/// zeroed cache slot never matches.
static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

const CACHE_SLOTS: usize = 16;

struct CacheSlot {
    id: u64,
    data: [(u32, f32); BLOCK_LEN],
}

thread_local! {
    static BLOCK_CACHE: RefCell<Box<[CacheSlot; CACHE_SLOTS]>> = RefCell::new(Box::new(
        std::array::from_fn(|_| CacheSlot { id: 0, data: [(0, 0.0); BLOCK_LEN] }),
    ));
}

/// The sealing policy a [`CompressedList`] writes under: which weight codec
/// blocks encode with, and which pager (if any) their payloads are
/// allocated from. One context is shared by every list of an index — lists
/// themselves carry no policy, keeping their fixed footprint at two words.
#[derive(Debug, Clone, Default)]
pub struct StoreContext {
    pub codec: WeightCodec,
    pub pager: Option<Arc<PageManager>>,
}

impl StoreContext {
    /// Lossless raw-f32 blocks, RAM-resident.
    pub fn raw() -> Self {
        StoreContext { codec: WeightCodec::Raw, pager: None }
    }

    /// Lossless raw-f32 blocks allocated from `pager` (may spill to disk).
    pub fn paged(pager: Arc<PageManager>) -> Self {
        StoreContext { codec: WeightCodec::Raw, pager: Some(pager) }
    }
}

#[derive(Debug, Clone)]
enum BlockData {
    Ram(Arc<[u8]>),
    Paged(Page),
}

#[derive(Debug, Clone)]
struct Sealed {
    id: u64,
    data: BlockData,
}

/// The sealed side of a list: every table that only exists once at least
/// one block has been sealed. Boxed inside [`CompressedList`] so the ~99%
/// of lists that stay shorter than [`BLOCK_LEN`] never pay for it.
#[derive(Debug, Clone)]
struct SealedState {
    blocks: Vec<Sealed>,
    /// First query id of each sealed block, for block-level binary search.
    first_qids: Vec<u32>,
    /// One liveness word per sealed block, bit `i` = slot `i` is live.
    live_bits: Vec<u64>,
    sealed_live: u32,
    /// Cloned from the [`StoreContext`] at the first seal: reads must be
    /// able to fault spilled payloads back in without caller help.
    pager: Option<Arc<PageManager>>,
}

impl SealedState {
    fn seal_block(&mut self, slots: &[(u32, f32)], codec: WeightCodec) {
        let mut bytes = Vec::new();
        encode_block(slots, codec, &mut bytes);
        let payload: Arc<[u8]> = bytes.into();
        let data = match &self.pager {
            Some(pager) => BlockData::Paged(pager.alloc(payload)),
            None => BlockData::Ram(payload),
        };
        let mut word = 0u64;
        for (i, &(_, w)) in slots.iter().enumerate() {
            if !is_tombstone_weight(w) {
                word |= 1 << i;
            }
        }
        self.sealed_live += word.count_ones();
        self.live_bits.push(word);
        self.first_qids.push(slots[0].0);
        self.blocks.push(Sealed { id: NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed), data });
    }
}

/// Compressed block postings with an uncompressed tail (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CompressedList {
    /// Exact-fit boxed slice (regrown one slot at a time — bounded by
    /// [`BLOCK_LEN`], so reallocation cost is capped, and zero capacity
    /// slack accumulates across tens of thousands of short lists).
    tail: Box<[(u32, f32)]>,
    sealed: Option<Box<SealedState>>,
    #[cfg(debug_assertions)]
    last_qid: u32,
}

impl CompressedList {
    /// An empty list. Sealing policy arrives with each mutation via
    /// [`StoreContext`].
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn sealed_len(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.blocks.len() * BLOCK_LEN)
    }

    /// Total slots, live + tombstoned.
    #[inline]
    pub fn len(&self) -> usize {
        self.sealed_len() + self.tail.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tombstoned slots. The tail (at most [`BLOCK_LEN`] − 1 slots) is
    /// scanned; the sealed side is O(1) from its live counter.
    pub fn tombstones(&self) -> usize {
        let sealed_dead =
            self.sealed.as_ref().map_or(0, |s| s.blocks.len() * BLOCK_LEN - s.sealed_live as usize);
        sealed_dead + self.tail.iter().filter(|&&(_, w)| is_tombstone_weight(w)).count()
    }

    /// Live slots.
    pub fn live(&self) -> usize {
        self.len() - self.tombstones()
    }

    /// Number of sealed (compressed) blocks.
    pub fn sealed_blocks(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.blocks.len())
    }

    /// True when slot `pos` is live.
    #[inline]
    pub fn is_live(&self, pos: usize) -> bool {
        let sealed = self.sealed_len();
        if pos < sealed {
            let s = self.sealed.as_ref().expect("sealed_len > 0");
            s.live_bits[pos / BLOCK_LEN] >> (pos % BLOCK_LEN) & 1 == 1
        } else {
            !is_tombstone_weight(self.tail[pos - sealed].1)
        }
    }

    /// Decode block `b` through the thread-local cache and read it.
    fn with_block<R>(&self, b: usize, f: impl FnOnce(&[(u32, f32); BLOCK_LEN]) -> R) -> R {
        let s = self.sealed.as_ref().expect("sealed block read on unsealed list");
        let blk = &s.blocks[b];
        BLOCK_CACHE.with(|cache| {
            let cache = &mut **cache.borrow_mut();
            let slot = &mut cache[blk.id as usize % CACHE_SLOTS];
            if slot.id != blk.id {
                let paged_bytes;
                let bytes: &[u8] = match &blk.data {
                    BlockData::Ram(bytes) => bytes,
                    BlockData::Paged(page) => {
                        paged_bytes =
                            s.pager.as_ref().expect("paged block without a pager").load(page);
                        &paged_bytes
                    }
                };
                decode_block(bytes, &mut slot.data);
                slot.id = blk.id;
            }
            f(&slot.data)
        })
    }

    /// The slot at `pos`: `(qid, weight)`, weight `0.0` when tombstoned.
    #[inline]
    pub fn get(&self, pos: usize) -> (u32, f32) {
        let sealed = self.sealed_len();
        if pos < sealed {
            let (qid, w) = self.with_block(pos / BLOCK_LEN, |d| d[pos % BLOCK_LEN]);
            if self.is_live(pos) {
                (qid, w)
            } else {
                (qid, 0.0)
            }
        } else {
            self.tail[pos - sealed]
        }
    }

    /// Append a live posting; ids must be strictly increasing. Seals the
    /// tail into a compressed block (under `cx`'s codec and pager) when it
    /// reaches [`BLOCK_LEN`].
    pub fn push(&mut self, qid: u32, weight: f32, cx: &StoreContext) {
        debug_assert!(!is_tombstone_weight(weight), "zero-weight pushes would read as deleted");
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.is_empty() || qid > self.last_qid, "ids must be pushed in order");
            self.last_qid = qid;
        }
        let mut grown = Vec::with_capacity(self.tail.len() + 1);
        grown.extend_from_slice(&self.tail);
        grown.push((qid, weight));
        if grown.len() == BLOCK_LEN {
            self.tail = Box::default();
            self.sealed_mut(cx).seal_block(&grown, cx.codec);
        } else {
            self.tail = grown.into_boxed_slice();
        }
    }

    /// The sealed state, created on first use with `cx`'s pager.
    fn sealed_mut(&mut self, cx: &StoreContext) -> &mut SealedState {
        self.sealed.get_or_insert_with(|| {
            Box::new(SealedState {
                blocks: Vec::new(),
                first_qids: Vec::new(),
                live_bits: Vec::new(),
                sealed_live: 0,
                pager: cx.pager.clone(),
            })
        })
    }

    /// Tombstone the slot at `pos` (idempotent). Sealed bytes are never
    /// rewritten: only the liveness word flips.
    pub fn tombstone(&mut self, pos: usize) {
        let sealed = self.sealed_len();
        if pos < sealed {
            let s = self.sealed.as_mut().expect("sealed_len > 0");
            let (word, bit) = (pos / BLOCK_LEN, pos % BLOCK_LEN);
            if s.live_bits[word] >> bit & 1 == 1 {
                s.live_bits[word] &= !(1u64 << bit);
                s.sealed_live -= 1;
            }
        } else {
            let slot = &mut self.tail[pos - sealed];
            slot.1 = 0.0;
        }
    }

    fn seek_slice(slice: &[(u32, f32)], from: usize, target: u32) -> usize {
        from + slice[from..].partition_point(|&(q, _)| q < target)
    }

    /// First position `>= from` whose query id is `>= target` (tombstones
    /// included), or `len()`. Block-level binary search on the sealed
    /// region; at most one block is decoded.
    pub fn seek(&self, from: usize, target: u32) -> usize {
        let n = self.len();
        let sealed = self.sealed_len();
        if from >= n {
            return n;
        }
        if from >= sealed {
            return sealed + Self::seek_slice(&self.tail, from - sealed, target);
        }
        // First block whose first qid exceeds the target; the answer sits
        // in the block before it (or wherever `from` points, if later).
        let s = self.sealed.as_ref().expect("sealed_len > 0");
        let cb = s.first_qids.partition_point(|&fq| fq <= target);
        if cb == 0 {
            return from; // every sealed id is already >= target
        }
        let b0 = from / BLOCK_LEN;
        let b = b0.max(cb - 1);
        let lo = if b == b0 { from % BLOCK_LEN } else { 0 };
        let i = self.with_block(b, |d| lo + d[lo..].partition_point(|&(q, _)| q < target));
        let pos = b * BLOCK_LEN + i;
        if i < BLOCK_LEN || pos < sealed {
            // In-block hit, or the exhausted block's successor (whose first
            // qid exceeds the target by choice of `cb`).
            pos
        } else {
            sealed + Self::seek_slice(&self.tail, 0, target)
        }
    }

    /// First **live** position `>= pos`, or `len()`. Dead sealed runs are
    /// skipped by scanning liveness words — no block is decoded.
    pub fn next_live(&self, mut pos: usize) -> usize {
        let n = self.len();
        let sealed = self.sealed_len();
        while pos < n {
            if pos < sealed {
                let s = self.sealed.as_ref().expect("sealed_len > 0");
                let word = pos / BLOCK_LEN;
                let rest = s.live_bits[word] >> (pos % BLOCK_LEN);
                if rest != 0 {
                    return pos + rest.trailing_zeros() as usize;
                }
                pos = (word + 1) * BLOCK_LEN;
            } else if is_tombstone_weight(self.tail[pos - sealed].1) {
                pos += 1;
            } else {
                return pos;
            }
        }
        n
    }

    /// First live position `>= from` with id `>= target`.
    pub fn seek_live(&self, from: usize, target: u32) -> usize {
        self.next_live(self.seek(from, target))
    }

    /// Position of `qid` (live or tombstoned), if present.
    pub fn position_of(&self, qid: u32) -> Option<usize> {
        let pos = self.seek(0, qid);
        (pos < self.len() && self.get(pos).0 == qid).then_some(pos)
    }

    /// Visit every slot in position order (tombstones as zero weights).
    pub fn for_each_slot(&self, mut f: impl FnMut(u32, f32)) {
        for b in 0..self.sealed_blocks() {
            let word = self.sealed.as_ref().expect("has blocks").live_bits[b];
            self.with_block(b, |d| {
                for (i, &(q, w)) in d.iter().enumerate() {
                    f(q, if word >> i & 1 == 1 { w } else { 0.0 });
                }
            });
        }
        for &(q, w) in self.tail.iter() {
            f(q, w);
        }
    }

    /// Visit every live posting in position order.
    pub fn for_each_live(&self, mut f: impl FnMut(u32, f32)) {
        for b in 0..self.sealed_blocks() {
            let word = self.sealed.as_ref().expect("has blocks").live_bits[b];
            if word == 0 {
                continue;
            }
            self.with_block(b, |d| {
                for (i, &(q, w)) in d.iter().enumerate() {
                    if word >> i & 1 == 1 {
                        f(q, w);
                    }
                }
            });
        }
        for &(q, w) in self.tail.iter() {
            if !is_tombstone_weight(w) {
                f(q, w);
            }
        }
    }

    /// Drop tombstones and re-encode: survivors are appended to `out` (for
    /// the caller's record refresh) and the list is rebuilt from them —
    /// full blocks re-seal, the remainder becomes the new tail.
    pub fn compact_into(&mut self, out: &mut Vec<(u32, f32)>, cx: &StoreContext) {
        let start = out.len();
        self.for_each_live(|q, w| out.push((q, w)));
        self.sealed = None;
        let survivors = &out[start..];
        let mut chunks = survivors.chunks_exact(BLOCK_LEN);
        for chunk in &mut chunks {
            self.sealed_mut(cx).seal_block(chunk, cx.codec);
        }
        self.tail = Box::from(chunks.remainder());
    }

    /// RAM bytes *owned* by this list — tables, tail, and the payloads of
    /// RAM-resident sealed blocks (disk-resident pages count only their
    /// fixed page-handle overhead — that is the point of paging). Excludes
    /// `size_of::<Self>()`: the container holding the list accounts for its
    /// slot, whatever it is embedded in.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.tail.len() * std::mem::size_of::<(u32, f32)>();
        if let Some(s) = &self.sealed {
            bytes += std::mem::size_of::<SealedState>()
                + s.blocks.capacity() * std::mem::size_of::<Sealed>()
                + s.first_qids.capacity() * 4
                + s.live_bits.capacity() * 8;
            for blk in &s.blocks {
                bytes += match &blk.data {
                    BlockData::Ram(payload) => payload.len(),
                    BlockData::Paged(page) => {
                        std::mem::size_of_val(&**page)
                            + if page.is_resident() { page.len() } else { 0 }
                    }
                };
            }
        }
        bytes
    }

    /// Pin every currently RAM-resident page of this list (no-op for
    /// unpaged lists). Frozen index epochs hold these pins so scorer
    /// workers never fault on pages the epoch had in RAM at freeze time.
    pub fn collect_resident_pins(&self, out: &mut Vec<PagePin>) {
        let Some(s) = &self.sealed else { return };
        for blk in &s.blocks {
            if let BlockData::Paged(page) = &blk.data {
                if page.is_resident() {
                    out.push(PagePin::new(Arc::clone(page)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixed footprint is the whole game for heavy-tailed term
    /// distributions: a never-sealed list must cost *less* than a plain
    /// `Vec`-backed one (16-byte boxed slice + 8-byte `Option<Box>` vs a
    /// 24-byte `Vec` + tombstone counter).
    #[test]
    fn struct_stays_small() {
        if !cfg!(debug_assertions) {
            assert_eq!(std::mem::size_of::<CompressedList>(), 24);
        }
        assert!(CompressedList::new().heap_bytes() == 0, "empty list owns nothing");
    }

    /// Plain mirror of the expected slot sequence.
    fn mirror(list: &CompressedList) -> Vec<(u32, f32)> {
        (0..list.len()).map(|p| list.get(p)).collect()
    }

    fn build(ids: &[u32]) -> CompressedList {
        let cx = StoreContext::raw();
        let mut l = CompressedList::new();
        for &i in ids {
            l.push(i, 0.5 + i as f32, &cx);
        }
        l
    }

    #[test]
    fn push_seals_full_blocks_and_reads_back() {
        let ids: Vec<u32> = (0..200).map(|i| i * 3 + (i % 2)).collect();
        let l = build(&ids);
        assert_eq!(l.sealed_blocks(), 3);
        assert_eq!(l.len(), 200);
        assert_eq!(l.live(), 200);
        for (p, &i) in ids.iter().enumerate() {
            assert_eq!(l.get(p), (i, 0.5 + i as f32));
        }
    }

    #[test]
    fn seek_exhaustive_against_linear_scan() {
        let ids: Vec<u32> = (0..200).map(|i| i * 3 + (i % 2)).collect();
        let l = build(&ids);
        let slots = mirror(&l);
        for from in 0..=l.len() {
            for t in 0..620u32 {
                let expect = (from..l.len()).find(|&p| slots[p].0 >= t).unwrap_or(l.len());
                assert_eq!(l.seek(from, t), expect, "from={from} t={t}");
            }
        }
    }

    #[test]
    fn tombstones_and_seek_live_across_blocks() {
        let ids: Vec<u32> = (0..160).collect();
        let mut l = build(&ids);
        // Kill a whole sealed block plus a tail stretch.
        for p in 64..128 {
            l.tombstone(p);
        }
        l.tombstone(130);
        l.tombstone(130); // idempotent
        assert_eq!(l.tombstones(), 65);
        assert_eq!(l.live(), 95);
        assert_eq!(l.get(70), (70, 0.0), "dead sealed slot keeps its id, zeroes its weight");
        assert_eq!(l.seek_live(0, 64), 128, "skips the dead block without decoding");
        assert_eq!(l.seek_live(0, 130), 131);
        // seek (not seek_live) still lands on tombstones.
        assert_eq!(l.seek(0, 70), 70);
    }

    #[test]
    fn seek_live_matches_linear_oracle_after_churn() {
        let ids: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let mut l = build(&ids);
        for p in (0..300).step_by(3) {
            l.tombstone(p);
        }
        let slots = mirror(&l);
        for from in 0..=l.len() {
            for t in (0..620u32).step_by(7) {
                let expect = (from..l.len())
                    .find(|&p| slots[p].0 >= t && !is_tombstone_weight(slots[p].1))
                    .unwrap_or(l.len());
                assert_eq!(l.seek_live(from, t), expect, "from={from} t={t}");
            }
        }
    }

    #[test]
    fn compact_reseals_survivors() {
        let ids: Vec<u32> = (0..150).collect();
        let mut l = build(&ids);
        for p in (0..150).step_by(2) {
            l.tombstone(p);
        }
        let mut survivors = Vec::new();
        l.compact_into(&mut survivors, &StoreContext::raw());
        assert_eq!(survivors.len(), 75);
        assert_eq!(l.len(), 75);
        assert_eq!(l.tombstones(), 0);
        assert_eq!(l.sealed_blocks(), 1);
        for (p, &(q, w)) in survivors.iter().enumerate() {
            assert_eq!(l.get(p), (q, w));
            assert!(q % 2 == 1);
        }
    }

    #[test]
    fn position_of_finds_sealed_and_tail_slots() {
        let ids: Vec<u32> = (0..100).map(|i| i * 5).collect();
        let l = build(&ids);
        assert_eq!(l.position_of(0), Some(0));
        assert_eq!(l.position_of(5 * 80), Some(80), "tail slot");
        assert_eq!(l.position_of(5 * 63), Some(63), "sealed slot");
        assert_eq!(l.position_of(7), None);
    }

    #[test]
    fn paged_list_reads_identically_under_tiny_budget() {
        let pager = Arc::new(PageManager::new(256, None)); // forces spills
        let paged_cx = StoreContext::paged(Arc::clone(&pager));
        let ram_cx = StoreContext::raw();
        let mut paged = CompressedList::new();
        let mut ram = CompressedList::new();
        for i in 0..500u32 {
            paged.push(i * 2, 0.1 + i as f32, &paged_cx);
            ram.push(i * 2, 0.1 + i as f32, &ram_cx);
        }
        for p in (0..500).step_by(5) {
            paged.tombstone(p);
            ram.tombstone(p);
        }
        assert!(pager.stats().cold_pages > 0, "budget must force spills");
        assert_eq!(mirror(&paged), mirror(&ram));
        assert!(pager.stats().page_faults > 0, "reading cold pages faults");
        assert!(paged.heap_bytes() < ram.heap_bytes(), "spilled payloads leave RAM accounting");
    }

    #[test]
    fn clones_share_sealed_blocks_and_diverge_in_tail() {
        let cx = StoreContext::raw();
        let ids: Vec<u32> = (0..70).collect();
        let a = build(&ids);
        let mut b = a.clone();
        b.push(100, 9.0, &cx);
        b.tombstone(0);
        assert_eq!(a.get(0), (0, 0.5));
        assert_eq!(b.get(0), (0, 0.0));
        assert_eq!(a.len(), 70);
        assert_eq!(b.len(), 71);
        assert_eq!(b.get(70), (100, 9.0));
    }

    #[test]
    fn for_each_slot_and_live_agree_with_get() {
        let ids: Vec<u32> = (0..130).collect();
        let mut l = build(&ids);
        l.tombstone(5);
        l.tombstone(128);
        let mut slots = Vec::new();
        l.for_each_slot(|q, w| slots.push((q, w)));
        assert_eq!(slots, mirror(&l));
        let mut live = Vec::new();
        l.for_each_live(|q, w| live.push((q, w)));
        assert_eq!(live.len(), 128);
        assert!(live.iter().all(|&(_, w)| !is_tombstone_weight(w)));
    }
}
