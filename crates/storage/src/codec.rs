//! The sealed-block postings codec.
//!
//! A block holds exactly [`BLOCK_LEN`] postings — the same span as one
//! `BlockMax` zone, so every frozen `EpochBounds` probe maps 1:1 onto one
//! sealed block. Query ids are stored as a base id plus bit-packed deltas
//! (each delta is `qid[i] − qid[i−1] − 1`, since ids are strictly
//! increasing); the packing width is the smallest that fits the block's
//! largest gap, so dense id runs cost 0 bits per id. Weights are either raw
//! f32 bits (lossless — the default, required for bit-identical results) or
//! 16-bit linear-quantized behind [`WeightCodec::Quantized`]. Tombstones
//! travel as zero-weight slots in both modes, the same sentinel the plain
//! `Vec` store uses, so compaction semantics carry over unchanged.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [0]      flags        bit0: 1 = quantized weights
//! [1]      width        bits per id delta (0..=32)
//! [2..6]   base         first query id, u32
//! [..]     id deltas    63 × width bits, LSB-first bit stream
//! [..]     weights      raw: 64 × f32
//!                       quantized: f32 scale, then 64 × u16 codes
//! ```

use ctk_common::TOMBSTONE_WEIGHT;

/// Postings per sealed block. Must equal the `BlockMax` zone span so epoch
/// bounds probes align with block boundaries (asserted in `ctk-index`).
pub const BLOCK_LEN: usize = 64;

const FLAG_QUANTIZED: u8 = 1;

/// Weight encoding for sealed blocks.
///
/// `Raw` stores the exact f32 bits and round-trips losslessly — it is the
/// only mode the monitor uses, because results must stay bit-identical to
/// the plain store. `Quantized` trades exactness for 2 bytes per weight
/// (16-bit linear codes against the block's maximum); tombstones still
/// decode to exactly `0.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightCodec {
    #[default]
    Raw,
    Quantized,
}

/// Encode one full block of `(qid, weight)` slots (tombstones as weight
/// `0.0`) into `out`. `slots` must hold exactly [`BLOCK_LEN`] entries with
/// strictly increasing ids.
pub fn encode_block(slots: &[(u32, f32)], codec: WeightCodec, out: &mut Vec<u8>) {
    assert_eq!(slots.len(), BLOCK_LEN, "sealed blocks are always full");
    debug_assert!(slots.windows(2).all(|w| w[0].0 < w[1].0), "ids must be strictly increasing");

    let mut max_gap = 0u32;
    for w in slots.windows(2) {
        max_gap = max_gap.max(w[1].0 - w[0].0 - 1);
    }
    let width = 32 - max_gap.leading_zeros().min(32);
    let flags = match codec {
        WeightCodec::Raw => 0,
        WeightCodec::Quantized => FLAG_QUANTIZED,
    };
    out.push(flags);
    out.push(width as u8);
    out.extend_from_slice(&slots[0].0.to_le_bytes());

    // Pack the 63 deltas LSB-first through a u64 staging buffer.
    let mut acc = 0u64;
    let mut bits = 0u32;
    for w in slots.windows(2) {
        let delta = (w[1].0 - w[0].0 - 1) as u64;
        acc |= delta << bits;
        bits += width;
        while bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push(acc as u8);
    }

    match codec {
        WeightCodec::Raw => {
            for &(_, w) in slots {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        WeightCodec::Quantized => {
            let max_w = slots.iter().map(|&(_, w)| w).fold(0.0f32, f32::max);
            let scale = if max_w > 0.0 { max_w / u16::MAX as f32 } else { 0.0 };
            out.extend_from_slice(&scale.to_le_bytes());
            for &(_, w) in slots {
                let code = if w == TOMBSTONE_WEIGHT || scale == 0.0 {
                    0u16
                } else {
                    ((w / scale).round() as u32).clamp(1, u16::MAX as u32) as u16
                };
                out.extend_from_slice(&code.to_le_bytes());
            }
        }
    }
}

/// Decode one sealed block into `out`. Inverse of [`encode_block`] (exact
/// for [`WeightCodec::Raw`]; quantized weights decode to their dequantized
/// approximation, with tombstones still exactly `0.0`).
pub fn decode_block(bytes: &[u8], out: &mut [(u32, f32); BLOCK_LEN]) {
    let flags = bytes[0];
    let width = bytes[1] as u32;
    let base = u32::from_le_bytes(bytes[2..6].try_into().unwrap());
    let id_bytes = ((BLOCK_LEN - 1) * width as usize).div_ceil(8);
    let (ids, weights) = bytes[6..].split_at(id_bytes);

    out[0].0 = base;
    let mut acc = 0u64;
    let mut bits = 0u32;
    let mask = if width == 0 { 0 } else { u64::MAX >> (64 - width) };
    let mut next = ids.iter();
    let mut prev = base;
    for slot in out.iter_mut().skip(1) {
        while bits < width {
            acc |= (*next.next().unwrap() as u64) << bits;
            bits += 8;
        }
        let delta = (acc & mask) as u32;
        acc >>= width;
        bits -= width;
        prev = prev + delta + 1;
        slot.0 = prev;
    }

    if flags & FLAG_QUANTIZED == 0 {
        for (i, slot) in out.iter_mut().enumerate() {
            slot.1 = f32::from_le_bytes(weights[4 * i..4 * i + 4].try_into().unwrap());
        }
    } else {
        let scale = f32::from_le_bytes(weights[0..4].try_into().unwrap());
        for (i, slot) in out.iter_mut().enumerate() {
            let code = u16::from_le_bytes(weights[4 + 2 * i..6 + 2 * i].try_into().unwrap());
            slot.1 = if code == 0 { TOMBSTONE_WEIGHT } else { code as f32 * scale };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(slots: &[(u32, f32)]) -> [(u32, f32); BLOCK_LEN] {
        let mut bytes = Vec::new();
        encode_block(slots, WeightCodec::Raw, &mut bytes);
        let mut out = [(0u32, 0.0f32); BLOCK_LEN];
        decode_block(&bytes, &mut out);
        out
    }

    #[test]
    fn dense_ids_cost_zero_id_bits() {
        let slots: Vec<(u32, f32)> = (0..BLOCK_LEN as u32).map(|i| (i, 0.5)).collect();
        let mut bytes = Vec::new();
        encode_block(&slots, WeightCodec::Raw, &mut bytes);
        // flags + width + base + 0 id bytes + 64 raw weights.
        assert_eq!(bytes.len(), 2 + 4 + 4 * BLOCK_LEN);
        assert_eq!(roundtrip(&slots)[..], slots[..]);
    }

    #[test]
    fn sparse_ids_and_tombstones_round_trip() {
        let slots: Vec<(u32, f32)> = (0..BLOCK_LEN as u32)
            .map(|i| (i * 1000 + (i % 7), if i % 5 == 0 { 0.0 } else { 0.1 + i as f32 }))
            .collect();
        assert_eq!(roundtrip(&slots)[..], slots[..]);
    }

    #[test]
    fn extreme_gaps_use_full_width() {
        let mut slots: Vec<(u32, f32)> = vec![(0, 1.0)];
        slots.push((u32::MAX - 62, 2.0)); // delta-1 needs all 32 bits
        for i in 2..BLOCK_LEN as u32 {
            slots.push((u32::MAX - 63 + i, 0.5));
        }
        assert_eq!(roundtrip(&slots)[..], slots[..]);
    }

    #[test]
    fn quantized_preserves_tombstones_and_bounds_error() {
        let slots: Vec<(u32, f32)> = (0..BLOCK_LEN as u32)
            .map(|i| (i * 3, if i % 4 == 0 { 0.0 } else { 0.01 + 0.01 * i as f32 }))
            .collect();
        let mut bytes = Vec::new();
        encode_block(&slots, WeightCodec::Quantized, &mut bytes);
        let mut out = [(0u32, 0.0f32); BLOCK_LEN];
        decode_block(&bytes, &mut out);
        let max_w = slots.iter().map(|s| s.1).fold(0.0f32, f32::max);
        for (orig, dec) in slots.iter().zip(out.iter()) {
            assert_eq!(orig.0, dec.0);
            if orig.1 == 0.0 {
                assert_eq!(dec.1, 0.0, "tombstones must decode exactly");
            } else {
                assert!((orig.1 - dec.1).abs() <= max_w / u16::MAX as f32);
            }
        }
    }
}
