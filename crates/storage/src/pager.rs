//! RAM/disk page management for sealed postings blocks.
//!
//! A [`PageManager`] owns a byte budget. Pages allocate RAM-resident
//! ("hot"); when residency exceeds the budget a second-chance clock sweep
//! spills cold pages to an anonymous append-only spill file (created via
//! plain `std::fs`, unlinked immediately on Unix so the OS reclaims it when
//! the process exits). Page payloads are immutable, so a page is written to
//! disk at most once — later evictions just drop the RAM copy and point
//! back at the original offset.
//!
//! Readers call [`PageManager::load`], which returns the payload `Arc` — a
//! fault (disk read, counted in [`PagerStats::page_faults`]) when the page
//! is cold. The returned `Arc` keeps the bytes alive regardless of what the
//! evictor does next. [`PagePin`] additionally vetoes eviction for as long
//! as it lives: the doc-parallel monitor pins the resident pages of a
//! frozen index epoch so scorer workers never fault on pages the epoch
//! owner just had in RAM.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Counters exposed on `/stats` and the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages currently RAM-resident.
    pub hot_pages: u64,
    /// Pages currently spilled to disk only.
    pub cold_pages: u64,
    /// Loads that had to read the spill file.
    pub page_faults: u64,
}

#[derive(Debug)]
enum PageState {
    Ram {
        bytes: Arc<[u8]>,
        /// Spill-file offset if this page has ever been written out —
        /// payloads are immutable, so the copy stays valid forever.
        spilled_at: Option<u64>,
    },
    Disk {
        offset: u64,
    },
}

/// Counters shared between the manager and its pages, so a page dropped
/// with its owning list (clone retirement, compaction) settles its own
/// residency accounting.
#[derive(Debug, Default)]
struct Counters {
    resident_bytes: AtomicUsize,
    hot: AtomicU64,
    cold: AtomicU64,
    faults: AtomicU64,
}

/// One page: a sealed block's encoded payload, RAM- or disk-resident.
#[derive(Debug)]
pub struct PageCell {
    len: u32,
    pins: AtomicU32,
    /// Second-chance bit: set on access, cleared (once) by the clock sweep.
    touched: AtomicBool,
    state: Mutex<PageState>,
    counters: Arc<Counters>,
}

impl Drop for PageCell {
    fn drop(&mut self) {
        match *self.state.get_mut().unwrap() {
            PageState::Ram { .. } => {
                self.counters.resident_bytes.fetch_sub(self.len(), Ordering::Relaxed);
                self.counters.hot.fetch_sub(1, Ordering::Relaxed);
            }
            PageState::Disk { .. } => {
                self.counters.cold.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Shared handle to a page.
pub type Page = Arc<PageCell>;

impl PageCell {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True while the payload is in RAM.
    pub fn is_resident(&self) -> bool {
        matches!(*self.state.lock().unwrap(), PageState::Ram { .. })
    }
}

/// An eviction veto on one page; dropped pins re-enable eviction.
#[derive(Debug)]
pub struct PagePin {
    cell: Page,
}

impl PagePin {
    pub fn new(cell: Page) -> Self {
        cell.pins.fetch_add(1, Ordering::Relaxed);
        PagePin { cell }
    }
}

impl Drop for PagePin {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct SpillFile {
    file: Option<File>,
    next_offset: u64,
}

/// The hot/cold page pool (see the module docs).
#[derive(Debug)]
pub struct PageManager {
    budget: usize,
    spill_dir: Option<PathBuf>,
    counters: Arc<Counters>,
    /// Clock ring over allocated pages; entries are weak so dropped lists
    /// release their pages without unregistering.
    ring: Mutex<VecDeque<Weak<PageCell>>>,
    spill: Mutex<SpillFile>,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl PageManager {
    /// A manager keeping at most `budget` payload bytes RAM-resident
    /// (best-effort: pinned pages never spill). The spill file is created
    /// lazily in `spill_dir` (default: the system temp directory).
    pub fn new(budget: usize, spill_dir: Option<PathBuf>) -> Self {
        PageManager {
            budget,
            spill_dir,
            counters: Arc::new(Counters::default()),
            ring: Mutex::new(VecDeque::new()),
            spill: Mutex::new(SpillFile::default()),
        }
    }

    /// RAM budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Current counters.
    pub fn stats(&self) -> PagerStats {
        PagerStats {
            hot_pages: self.counters.hot.load(Ordering::Relaxed),
            cold_pages: self.counters.cold.load(Ordering::Relaxed),
            page_faults: self.counters.faults.load(Ordering::Relaxed),
        }
    }

    /// Payload bytes currently RAM-resident.
    pub fn resident_bytes(&self) -> usize {
        self.counters.resident_bytes.load(Ordering::Relaxed)
    }

    /// Adopt an immutable payload as a new (hot) page, evicting others if
    /// the budget is now exceeded.
    pub fn alloc(&self, bytes: Arc<[u8]>) -> Page {
        let len = bytes.len();
        let cell = Arc::new(PageCell {
            len: len as u32,
            pins: AtomicU32::new(0),
            touched: AtomicBool::new(true),
            state: Mutex::new(PageState::Ram { bytes, spilled_at: None }),
            counters: Arc::clone(&self.counters),
        });
        self.ring.lock().unwrap().push_back(Arc::downgrade(&cell));
        self.counters.resident_bytes.fetch_add(len, Ordering::Relaxed);
        self.counters.hot.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget();
        cell
    }

    /// The page's payload, faulting it in from the spill file if cold. The
    /// returned `Arc` keeps the bytes alive independently of eviction.
    pub fn load(&self, page: &Page) -> Arc<[u8]> {
        let mut state = page.state.lock().unwrap();
        match &*state {
            PageState::Ram { bytes, .. } => {
                page.touched.store(true, Ordering::Relaxed);
                Arc::clone(bytes)
            }
            PageState::Disk { offset } => {
                let offset = *offset;
                self.counters.faults.fetch_add(1, Ordering::Relaxed);
                let mut buf = vec![0u8; page.len()];
                {
                    let mut spill = self.spill.lock().unwrap();
                    let file = spill.file.as_mut().expect("cold page without a spill file");
                    file.seek(SeekFrom::Start(offset)).expect("seek in spill file");
                    file.read_exact(&mut buf).expect("read spilled page");
                }
                let bytes: Arc<[u8]> = buf.into();
                *state = PageState::Ram { bytes: Arc::clone(&bytes), spilled_at: Some(offset) };
                drop(state);
                page.touched.store(true, Ordering::Relaxed);
                self.counters.resident_bytes.fetch_add(page.len(), Ordering::Relaxed);
                self.counters.hot.fetch_add(1, Ordering::Relaxed);
                self.counters.cold.fetch_sub(1, Ordering::Relaxed);
                self.ring.lock().unwrap().push_back(Arc::downgrade(page));
                self.evict_to_budget();
                bytes
            }
        }
    }

    /// Second-chance clock sweep until residency fits the budget (or every
    /// survivor is pinned/recently touched).
    fn evict_to_budget(&self) {
        let mut attempts = 2 * self.ring.lock().unwrap().len() + 1;
        while self.counters.resident_bytes.load(Ordering::Relaxed) > self.budget && attempts > 0 {
            attempts -= 1;
            let Some(weak) = self.ring.lock().unwrap().pop_front() else { break };
            let Some(cell) = weak.upgrade() else {
                // The owning list died; its RAM copy went with it.
                continue;
            };
            if cell.pins.load(Ordering::Relaxed) > 0 || cell.touched.swap(false, Ordering::Relaxed)
            {
                self.ring.lock().unwrap().push_back(weak);
                continue;
            }
            self.evict(&cell);
        }
    }

    fn evict(&self, cell: &PageCell) {
        let mut state = cell.state.lock().unwrap();
        let PageState::Ram { bytes, spilled_at } = &*state else { return };
        let offset = match spilled_at {
            Some(off) => *off,
            None => self.spill_out(bytes),
        };
        *state = PageState::Disk { offset };
        drop(state);
        self.counters.resident_bytes.fetch_sub(cell.len(), Ordering::Relaxed);
        self.counters.hot.fetch_sub(1, Ordering::Relaxed);
        self.counters.cold.fetch_add(1, Ordering::Relaxed);
    }

    /// Append a payload to the spill file (created on first use), returning
    /// its offset.
    fn spill_out(&self, bytes: &[u8]) -> u64 {
        let mut spill = self.spill.lock().unwrap();
        if spill.file.is_none() {
            let dir = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let path = dir.join(format!(
                "ctk-spill-{}-{}.bin",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
                .expect("create spill file");
            // Unlink immediately (Unix): the fd stays valid and the OS
            // reclaims the space when the last handle closes.
            #[cfg(unix)]
            let _ = std::fs::remove_file(&path);
            spill.file = Some(file);
        }
        let offset = spill.next_offset;
        let file = spill.file.as_mut().unwrap();
        file.seek(SeekFrom::Start(offset)).expect("seek spill file");
        file.write_all(bytes).expect("write spill file");
        spill.next_offset += bytes.len() as u64;
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: u8, n: usize) -> Arc<[u8]> {
        vec![b; n].into()
    }

    #[test]
    fn within_budget_nothing_spills() {
        let m = PageManager::new(1024, None);
        let pages: Vec<Page> = (0..4).map(|i| m.alloc(payload(i, 100))).collect();
        assert_eq!(m.stats(), PagerStats { hot_pages: 4, cold_pages: 0, page_faults: 0 });
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(m.load(p)[0], i as u8);
        }
        assert_eq!(m.stats().page_faults, 0);
    }

    #[test]
    fn over_budget_spills_and_faults_back() {
        let m = PageManager::new(250, None);
        let pages: Vec<Page> = (0..4).map(|i| m.alloc(payload(i, 100))).collect();
        let s = m.stats();
        assert!(s.cold_pages >= 2, "budget forces spills: {s:?}");
        assert!(m.resident_bytes() <= 250 + 100);
        // Every page still reads back its exact payload.
        for (i, p) in pages.iter().enumerate() {
            let bytes = m.load(p);
            assert_eq!(bytes.len(), 100);
            assert!(bytes.iter().all(|&b| b == i as u8));
        }
        assert!(m.stats().page_faults >= 2);
    }

    #[test]
    fn pinned_pages_never_evict() {
        let m = PageManager::new(150, None);
        let first = m.alloc(payload(1, 100));
        let _pin = PagePin::new(Arc::clone(&first));
        let _rest: Vec<Page> = (2..6).map(|i| m.alloc(payload(i, 100))).collect();
        assert!(first.is_resident(), "pinned page must stay hot");
    }

    #[test]
    fn dropped_pages_leave_the_ring() {
        let m = PageManager::new(100, None);
        for i in 0..8 {
            let p = m.alloc(payload(i, 60));
            drop(p);
        }
        // Allocating one more sweeps the dead entries without panicking.
        let live = m.alloc(payload(9, 60));
        assert!(live.is_resident());
    }

    #[test]
    fn spill_offsets_stay_valid_after_reload() {
        // Spill, fault back, spill again: the second eviction reuses the
        // original offset (payloads are immutable).
        let m = PageManager::new(100, None);
        let a = m.alloc(payload(7, 80));
        let _b = m.alloc(payload(8, 80)); // evicts a
        assert!(!a.is_resident());
        assert_eq!(m.load(&a)[0], 7); // fault back
        let _c = m.alloc(payload(9, 80));
        let _d = m.alloc(payload(10, 80));
        assert_eq!(m.load(&a)[0], 7, "offset survives re-eviction");
    }
}
