//! Property tests for the sealed-block codec and `CompressedList`.
//!
//! The codec must be lossless under `WeightCodec::Raw` for every block the
//! index can produce: arbitrary id gaps (dense runs through multi-hundred-
//! million jumps), arbitrary finite weights, and arbitrary tombstone
//! patterns (zero-weight slots). `CompressedList` must agree with a plain
//! `Vec<(qid, weight)>` oracle on every read operation after an arbitrary
//! interleaving of pushes, tombstones, and compactions.

use ctk_storage::{
    decode_block, encode_block, CompressedList, PageManager, StoreContext, WeightCodec, BLOCK_LEN,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strictly increasing ids from per-slot raw samples: `kind` picks a dense
/// (gap 1) or small (gap ≤ 256) step, and exactly one slot (`giant_at`)
/// takes a gap of up to 2^31 so every bit width from 0 to 31 shows up.
/// `dead == 0` makes the slot a tombstone (zero weight).
fn build_block(
    base: u32,
    giant_at: usize,
    giant_gap: u32,
    raw: &[(u32, u32, f32, u32)],
) -> Vec<(u32, f32)> {
    let mut qid = base;
    let mut out = Vec::with_capacity(BLOCK_LEN);
    for (i, &(kind, small, weight, dead)) in raw.iter().enumerate() {
        if i > 0 {
            qid += if i == giant_at {
                giant_gap + 1
            } else if kind == 0 {
                1
            } else {
                small + 1
            };
        }
        let weight = if dead == 0 { 0.0 } else { weight.max(f32::MIN_POSITIVE) };
        out.push((qid, weight));
    }
    out
}

proptest! {
    #[test]
    fn raw_codec_roundtrips_bit_exactly(
        base in 0u32..1024,
        giant_at in 1usize..BLOCK_LEN,
        giant_gap in 0u32..(1 << 31),
        raw in prop::collection::vec(
            (0u32..=1, 0u32..256, 0.0f32..1000.0, 0u32..=3),
            BLOCK_LEN..BLOCK_LEN + 1,
        ),
    ) {
        let slots = build_block(base, giant_at, giant_gap, &raw);
        let mut bytes = Vec::new();
        encode_block(&slots, WeightCodec::Raw, &mut bytes);
        let mut decoded = [(0u32, 0.0f32); BLOCK_LEN];
        decode_block(&bytes, &mut decoded);
        for (orig, got) in slots.iter().zip(decoded.iter()) {
            prop_assert_eq!(orig.0, got.0);
            prop_assert_eq!(orig.1.to_bits(), got.1.to_bits());
        }
    }

    #[test]
    fn quantized_codec_keeps_ids_and_tombstones(
        base in 0u32..1024,
        giant_at in 1usize..BLOCK_LEN,
        giant_gap in 0u32..(1 << 31),
        raw in prop::collection::vec(
            (0u32..=1, 0u32..256, 0.0f32..1000.0, 0u32..=3),
            BLOCK_LEN..BLOCK_LEN + 1,
        ),
    ) {
        let slots = build_block(base, giant_at, giant_gap, &raw);
        let mut bytes = Vec::new();
        encode_block(&slots, WeightCodec::Quantized, &mut bytes);
        let mut decoded = [(0u32, 0.0f32); BLOCK_LEN];
        decode_block(&bytes, &mut decoded);
        let max = slots.iter().map(|s| s.1).fold(0.0f32, f32::max);
        for (orig, got) in slots.iter().zip(decoded.iter()) {
            prop_assert_eq!(orig.0, got.0);
            // Tombstones survive exactly; live weights stay live and close.
            if orig.1 == 0.0 {
                prop_assert_eq!(got.1, 0.0);
            } else {
                prop_assert!(got.1 > 0.0);
                prop_assert!((orig.1 - got.1).abs() <= max / 65_000.0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compressed_list_matches_vec_oracle(
        // Each raw op decodes to Push (kinds 0-3), Tombstone (4-6), or
        // Compact (7) inside the loop below.
        ops in prop::collection::vec((0u32..=7, 0u32..256, 1u32..=5), 1..24),
        paged in 0u32..=1,
    ) {
        // A tiny budget forces constant spill/fault churn in the paged case.
        let cx = match paged {
            1 => StoreContext::paged(Arc::new(PageManager::new(192, None))),
            _ => StoreContext::raw(),
        };
        let mut list = CompressedList::new();
        // Oracle: (qid, weight) with tombstones as weight 0.0, same as plain.
        let mut oracle: Vec<(u32, f32)> = Vec::new();
        let mut next_qid = 7u32;

        for (kind, a, b) in ops {
            match kind {
                0..=3 => {
                    for _ in 0..(a % 80 + 1) {
                        let w = (next_qid % 97 + 1) as f32 / 8.0;
                        list.push(next_qid, w, &cx);
                        oracle.push((next_qid, w));
                        next_qid += b;
                    }
                }
                4..=6 => {
                    if !oracle.is_empty() {
                        let pos = a as usize % oracle.len();
                        if oracle[pos].1 != 0.0 {
                            list.tombstone(pos);
                            oracle[pos].1 = 0.0;
                        }
                    }
                }
                _ => {
                    let mut survivors = Vec::new();
                    list.compact_into(&mut survivors, &cx);
                    oracle.retain(|s| s.1 != 0.0);
                    prop_assert_eq!(&survivors, &oracle);
                }
            }
        }

        prop_assert_eq!(list.len(), oracle.len());
        prop_assert_eq!(list.live(), oracle.iter().filter(|s| s.1 != 0.0).count());
        for (pos, &(qid, w)) in oracle.iter().enumerate() {
            let (got_qid, got_w) = list.get(pos);
            prop_assert_eq!(got_qid, qid);
            prop_assert_eq!(got_w.to_bits(), w.to_bits());
            prop_assert_eq!(list.is_live(pos), w != 0.0);
            prop_assert_eq!(list.position_of(qid), Some(pos));
        }
        // seek / seek_live agree with a linear scan from every eighth start.
        for from in (0..=oracle.len()).step_by(8) {
            for probe in [0, next_qid / 2, next_qid] {
                let want = oracle[from..]
                    .iter()
                    .position(|s| s.0 >= probe)
                    .map_or(oracle.len(), |i| from + i);
                prop_assert_eq!(list.seek(from, probe), want);
                let want_live = oracle[from..]
                    .iter()
                    .position(|s| s.0 >= probe && s.1 != 0.0)
                    .map_or(oracle.len(), |i| from + i);
                prop_assert_eq!(list.seek_live(from, probe), want_live);
            }
        }
    }
}
