//! Exhaustive vs bounded candidate walk, isolated from the monitor (no
//! channels, no merge): the per-document cost of
//! `collect_scored_candidates` against `collect_scored_candidates_bounded`
//! at 1k / 10k / 100k registered queries, for a wide (paper-corpus-like,
//! ~48 distinct terms) and a narrow (tweet-like, 8 terms) document shape.
//!
//! The inputs emulate the steady state the doc-parallel monitor prunes in:
//! tight filled thresholds (`S_k` uniform in [0.55, 0.9] of a perfect
//! score) with 1% unfilled stragglers, and a pruning target θ_d = 0.95 —
//! weak documents, which is what a mature stream mostly carries. The
//! numbers feed the builder rustdoc and README ("Choosing a sharding
//! mode"): they are the measured crossover behind
//! `DOC_PRUNING_AUTO_MIN_QUERIES`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctk_common::{DocId, Document, QuerySpec, TermId};
use ctk_core::walk::{
    collect_scored_candidates, collect_scored_candidates_bounded, DocEpochBounds, MatchScratch,
};
use ctk_core::EventStats;
use ctk_index::QueryIndex;
use rand::{rngs::StdRng, Rng, SeedableRng};

const VOCAB: u32 = 2_000;
const THETA: f64 = 0.95;

fn distinct_terms(rng: &mut StdRng, count: usize) -> Vec<(TermId, f32)> {
    let mut terms: Vec<(TermId, f32)> = Vec::with_capacity(count);
    while terms.len() < count {
        let t = TermId(rng.gen_range(0..VOCAB));
        if !terms.iter().any(|&(seen, _)| seen == t) {
            terms.push((t, rng.gen_range(0.2..1.0f32)));
        }
    }
    terms
}

struct Setup {
    index: QueryIndex,
    bounds: DocEpochBounds,
    docs: Vec<Document>,
}

fn setup(num_queries: usize, doc_terms: usize) -> Setup {
    let mut rng = StdRng::seed_from_u64(42);
    let mut index = QueryIndex::new();
    let mut thresholds = Vec::with_capacity(num_queries);
    for i in 0..num_queries {
        let spec = QuerySpec::new(distinct_terms(&mut rng, 3), 10).expect("valid spec");
        index.register(&spec.vector, spec.k as u32);
        thresholds.push(if i % 100 == 99 { 0.0 } else { rng.gen_range(0.55..0.9) });
    }
    let mut bounds = DocEpochBounds::new();
    bounds.rebuild_all(&index, |qid, w| {
        let t = thresholds[qid.index()];
        if t > 0.0 {
            w as f64 / t
        } else {
            f64::INFINITY
        }
    });
    bounds.freeze();
    let docs = (0..32u64)
        .map(|d| Document::new(DocId(d), distinct_terms(&mut rng, doc_terms), 0.0))
        .collect();
    Setup { index, bounds, docs }
}

fn bench_walks(c: &mut Criterion) {
    for (shape, doc_terms) in [("wide48", 48usize), ("narrow8", 8)] {
        let mut group = c.benchmark_group(format!("walk/{shape}"));
        group.sample_size(15);
        for num_queries in [1_000usize, 10_000, 100_000] {
            let s = setup(num_queries, doc_terms);
            group.bench_function(BenchmarkId::new("exhaustive", num_queries), |b| {
                let mut scratch = MatchScratch::default();
                let mut out = Vec::new();
                let mut i = 0usize;
                b.iter(|| {
                    let mut ev = EventStats::default();
                    let doc = &s.docs[i % s.docs.len()];
                    i += 1;
                    collect_scored_candidates(&s.index, doc, &mut scratch, &mut ev, &mut out);
                    std::hint::black_box(out.len())
                });
            });
            group.bench_function(BenchmarkId::new("bounded", num_queries), |b| {
                let mut scratch = MatchScratch::default();
                let mut out = Vec::new();
                let mut i = 0usize;
                b.iter(|| {
                    let mut ev = EventStats::default();
                    let doc = &s.docs[i % s.docs.len()];
                    i += 1;
                    collect_scored_candidates_bounded(
                        &s.index,
                        &s.bounds,
                        THETA,
                        doc,
                        &mut scratch,
                        &mut ev,
                        &mut out,
                    );
                    std::hint::black_box(out.len())
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
