//! Sharded parallel monitor.
//!
//! The paper's goal is "large numbers of users and high stream rates"; a
//! single engine is single-threaded. Queries partition cleanly (each result
//! set depends only on its own query), so the monitor shards the query
//! population across worker threads, broadcasts every document to all
//! shards, and the per-event response time becomes the *max* over shards.
//!
//! Communication uses `crossbeam` channels; each worker owns its engine
//! outright (no shared mutable state, no locks on the hot path).

use crate::stats::EventStats;
use crate::traits::{ContinuousTopK, ResultChange};
use crossbeam::channel::{bounded, unbounded, Sender};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A query handle in the sharded monitor: shard index + local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardedQueryId {
    pub shard: u32,
    pub local: QueryId,
}

enum Command {
    Register(QuerySpec, Sender<QueryId>),
    Unregister(QueryId, Sender<bool>),
    Seed(QueryId, Vec<ScoredDoc>),
    Process(Arc<Document>, Sender<(EventStats, Vec<ResultChange>)>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Shutdown,
}

/// A monitor that fans stream events out to `S` single-threaded engines.
pub struct ShardedMonitor {
    workers: Vec<(Sender<Command>, JoinHandle<()>)>,
    next_shard: usize,
}

impl ShardedMonitor {
    /// Spawn `shards` workers, each owning an engine built by `make_engine`
    /// (e.g. `|| MrioSeg::new(lambda)`).
    pub fn new<E, F>(shards: usize, make_engine: F) -> Self
    where
        E: ContinuousTopK + Send + 'static,
        F: Fn() -> E,
    {
        assert!(shards >= 1);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<Command>();
            let mut engine = make_engine();
            let handle = std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Register(spec, reply) => {
                            let _ = reply.send(engine.register(spec));
                        }
                        Command::Unregister(qid, reply) => {
                            let _ = reply.send(engine.unregister(qid));
                        }
                        Command::Seed(qid, seeds) => {
                            engine.seed_results(qid, &seeds);
                        }
                        Command::Process(doc, reply) => {
                            let ev = engine.process(&doc);
                            let _ = reply.send((ev, engine.last_changes().to_vec()));
                        }
                        Command::Results(qid, reply) => {
                            let _ = reply.send(engine.results(qid));
                        }
                        Command::Shutdown => break,
                    }
                }
            });
            workers.push((tx, handle));
        }
        ShardedMonitor { workers, next_shard: 0 }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Register a query on the least-recently-used shard (round robin).
    pub fn register(&mut self, spec: QuerySpec) -> ShardedQueryId {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.workers.len();
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[shard].0.send(Command::Register(spec, reply_tx)).expect("worker alive");
        ShardedQueryId { shard: shard as u32, local: reply_rx.recv().expect("worker reply") }
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: ShardedQueryId) -> bool {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[qid.shard as usize]
            .0
            .send(Command::Unregister(qid.local, reply_tx))
            .expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Warm-start a query (snapshot restore path).
    pub fn seed_results(&mut self, qid: ShardedQueryId, seeds: Vec<ScoredDoc>) {
        self.workers[qid.shard as usize]
            .0
            .send(Command::Seed(qid.local, seeds))
            .expect("worker alive");
    }

    /// Process one stream event on all shards in parallel; returns the
    /// merged work counters and all result changes.
    pub fn process(&mut self, doc: Document) -> (EventStats, Vec<(u32, ResultChange)>) {
        let doc = Arc::new(doc);
        let mut pending = Vec::with_capacity(self.workers.len());
        for (tx, _) in &self.workers {
            let (reply_tx, reply_rx) = bounded(1);
            tx.send(Command::Process(Arc::clone(&doc), reply_tx)).expect("worker alive");
            pending.push(reply_rx);
        }
        let mut total = EventStats::default();
        let mut changes = Vec::new();
        for (shard, rx) in pending.into_iter().enumerate() {
            let (ev, ch) = rx.recv().expect("worker reply");
            total.full_evaluations += ev.full_evaluations;
            total.iterations += ev.iterations;
            total.postings_accessed += ev.postings_accessed;
            total.bound_computations += ev.bound_computations;
            total.updates += ev.updates;
            total.matched_lists += ev.matched_lists;
            changes.extend(ch.into_iter().map(|c| (shard as u32, c)));
        }
        (total, changes)
    }

    /// Current results of a query.
    pub fn results(&self, qid: ShardedQueryId) -> Option<Vec<ScoredDoc>> {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[qid.shard as usize]
            .0
            .send(Command::Results(qid.local, reply_tx))
            .expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }
}

impl Drop for ShardedMonitor {
    fn drop(&mut self) {
        for (tx, _) in &self.workers {
            let _ = tx.send(Command::Shutdown);
        }
        for (_, handle) in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrio::MrioSeg;
    use crate::naive::Naive;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn sharded_matches_single_engine() {
        let mut sharded = ShardedMonitor::new(3, || MrioSeg::new(0.001));
        let mut single = Naive::new(0.001);

        let specs: Vec<QuerySpec> =
            (0..30).map(|i| spec(&[i % 7, 7 + i % 4], 2 + (i % 3) as usize)).collect();
        let sharded_ids: Vec<ShardedQueryId> =
            specs.iter().map(|s| sharded.register(s.clone())).collect();
        let single_ids: Vec<QueryId> = specs.iter().map(|s| single.register(s.clone())).collect();

        for i in 0..60u64 {
            let d = doc(i, &[((i % 7) as u32, 1.0), ((7 + i % 4) as u32, 0.6)], i as f64);
            sharded.process(d.clone());
            single.process(&d);
        }
        for (sid, qid) in sharded_ids.iter().zip(&single_ids) {
            assert_eq!(sharded.results(*sid), single.results(*qid));
        }
    }

    #[test]
    fn round_robin_distributes_queries() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let a = m.register(spec(&[1], 1));
        let b = m.register(spec(&[1], 1));
        let c = m.register(spec(&[1], 1));
        assert_eq!(a.shard, 0);
        assert_eq!(b.shard, 1);
        assert_eq!(c.shard, 0);
        assert_eq!(m.shards(), 2);
    }

    #[test]
    fn unregister_and_changes_reporting() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        // k = 2 so the second document still has a free slot to enter.
        let a = m.register(spec(&[1], 2));
        let b = m.register(spec(&[1], 2));
        let (_, changes) = m.process(doc(0, &[(1, 1.0)], 0.0));
        assert_eq!(changes.len(), 2, "both shards report an insertion");
        assert!(m.unregister(a));
        let (_, changes) = m.process(doc(1, &[(1, 2.0)], 1.0));
        assert_eq!(changes.len(), 1);
        assert!(m.results(b).is_some());
        assert!(m.results(a).is_none());
    }
}
