//! Sharded parallel monitor with batched, pipelined ingestion.
//!
//! The paper's goal is "large numbers of users and high stream rates"; a
//! single engine is single-threaded. Queries partition cleanly (each result
//! set depends only on its own query), so the monitor shards the query
//! population across worker threads and broadcasts stream documents to all
//! shards.
//!
//! Ingestion is **batch-first**: the unit of work sent to a shard is an
//! `Arc<[Document]>` batch, not a single document. One channel send, one
//! reply and one cross-shard merge are paid per *batch*, so the per-document
//! coordination cost shrinks linearly with the batch size — the
//! one-doc-one-barrier behaviour of the original design is now just the
//! degenerate `process` wrapper with a batch of one.
//!
//! Replies flow over **persistent per-worker channels** created once at
//! spawn (the old design allocated a fresh rendezvous channel per call).
//! Because each worker answers batches in submission order, the monitor can
//! keep a window of batches **in flight**: [`ShardedMonitor::submit_batch`]
//! hands shard `i` batch `n+1` while the merger is still draining batch `n`
//! ([`ShardedMonitor::drain_batch`]), hiding merge latency behind shard
//! compute. [`ShardedMonitor::run_pipelined`] wraps the submit/drain dance
//! for a whole stream.
//!
//! Communication uses `crossbeam` channels; each worker owns its engine
//! outright (no shared mutable state, no locks on the hot path).

use crate::stats::{CumulativeStats, EventStats};
use crate::traits::{ContinuousTopK, ResultChange};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A query handle in the sharded monitor: shard index + local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardedQueryId {
    pub shard: u32,
    pub local: QueryId,
}

enum Command {
    Register(QuerySpec, Sender<QueryId>),
    Unregister(QueryId, Sender<bool>),
    Seed(QueryId, Vec<ScoredDoc>),
    /// Score a batch; the reply travels over the worker's persistent
    /// reply channel, in submission order.
    Process(Arc<[Document]>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Cumulative(Sender<CumulativeStats>),
    Shutdown,
}

/// Merged outcome of one batch: per-document work counters (summed across
/// shards) and every result change as `(shard, change)` pairs.
pub type BatchOutcome = (Vec<EventStats>, Vec<(u32, ResultChange)>);

/// One shard's answer to a [`Command::Process`] batch.
struct BatchReply {
    /// Per-document work counters, aligned with the batch.
    stats: Vec<EventStats>,
    /// Every result change of the batch, in document order.
    changes: Vec<ResultChange>,
}

struct Worker {
    tx: Sender<Command>,
    reply_rx: Receiver<BatchReply>,
    handle: Option<JoinHandle<()>>,
}

/// A monitor that fans stream events out to `S` single-threaded engines.
pub struct ShardedMonitor {
    workers: Vec<Worker>,
    next_shard: usize,
    /// Lengths of submitted-but-undrained batches, oldest first.
    in_flight: VecDeque<usize>,
}

impl ShardedMonitor {
    /// Spawn `shards` workers, each owning an engine built by `make_engine`
    /// (e.g. `|| MrioSeg::new(lambda)`).
    pub fn new<E, F>(shards: usize, make_engine: F) -> Self
    where
        E: ContinuousTopK + Send + 'static,
        F: Fn() -> E,
    {
        assert!(shards >= 1);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<Command>();
            // Unbounded so a worker never blocks publishing a reply; the
            // monitor bounds the number of outstanding batches itself via
            // the pipelining window.
            let (reply_tx, reply_rx) = unbounded::<BatchReply>();
            let mut engine = make_engine();
            let handle = std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Register(spec, reply) => {
                            let _ = reply.send(engine.register(spec));
                        }
                        Command::Unregister(qid, reply) => {
                            let _ = reply.send(engine.unregister(qid));
                        }
                        Command::Seed(qid, seeds) => {
                            engine.seed_results(qid, &seeds);
                        }
                        Command::Process(docs) => {
                            let mut changes = Vec::new();
                            let stats = engine.process_batch_into(&docs, &mut changes);
                            if reply_tx.send(BatchReply { stats, changes }).is_err() {
                                break; // monitor gone
                            }
                        }
                        Command::Results(qid, reply) => {
                            let _ = reply.send(engine.results(qid));
                        }
                        Command::Cumulative(reply) => {
                            let _ = reply.send(*engine.cumulative());
                        }
                        Command::Shutdown => break,
                    }
                }
            });
            workers.push(Worker { tx, reply_rx, handle: Some(handle) });
        }
        ShardedMonitor { workers, next_shard: 0, in_flight: VecDeque::new() }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Register a query on the least-recently-used shard (round robin).
    pub fn register(&mut self, spec: QuerySpec) -> ShardedQueryId {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.workers.len();
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[shard].tx.send(Command::Register(spec, reply_tx)).expect("worker alive");
        ShardedQueryId { shard: shard as u32, local: reply_rx.recv().expect("worker reply") }
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: ShardedQueryId) -> bool {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[qid.shard as usize]
            .tx
            .send(Command::Unregister(qid.local, reply_tx))
            .expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Warm-start a query (snapshot restore path).
    pub fn seed_results(&mut self, qid: ShardedQueryId, seeds: Vec<ScoredDoc>) {
        self.workers[qid.shard as usize]
            .tx
            .send(Command::Seed(qid.local, seeds))
            .expect("worker alive");
    }

    /// Process one stream event on all shards in parallel; returns the
    /// merged work counters and all result changes. This is the batch path
    /// with a batch of one — latency-oriented callers keep the old API,
    /// throughput-oriented callers should use [`ShardedMonitor::process_batch`]
    /// or the submit/drain pipeline.
    pub fn process(&mut self, doc: Document) -> (EventStats, Vec<(u32, ResultChange)>) {
        let (mut stats, changes) = self.process_batch(vec![doc]);
        (stats.pop().expect("one document in, one stat out"), changes)
    }

    /// Broadcast one batch to every shard and wait for the merged outcome:
    /// per-document work counters (summed across shards via
    /// [`EventStats::merge`]) and every result change as `(shard, change)`
    /// pairs in document order per shard.
    ///
    /// Must not be interleaved with an open submit/drain pipeline — drain
    /// in-flight batches first.
    pub fn process_batch(&mut self, docs: Vec<Document>) -> BatchOutcome {
        assert!(
            self.in_flight.is_empty(),
            "process_batch cannot run while submitted batches are in flight; drain them first"
        );
        self.submit_batch(docs);
        self.drain_batch().expect("batch just submitted")
    }

    /// Hand one batch to every shard **without waiting**: the single
    /// allocation is the `Arc<[Document]>` the shards share. Pair with
    /// [`ShardedMonitor::drain_batch`]; replies come back in submission
    /// order, so keeping one or two batches in flight lets shard `i` score
    /// batch `n+1` while the merger drains batch `n`.
    pub fn submit_batch(&mut self, docs: Vec<Document>) {
        let docs: Arc<[Document]> = docs.into();
        for w in &self.workers {
            w.tx.send(Command::Process(Arc::clone(&docs))).expect("worker alive");
        }
        self.in_flight.push_back(docs.len());
    }

    /// Merge the oldest in-flight batch: blocks until every shard has
    /// answered it. Returns `None` when nothing is in flight.
    pub fn drain_batch(&mut self) -> Option<BatchOutcome> {
        let len = self.in_flight.pop_front()?;
        let mut stats = vec![EventStats::default(); len];
        let mut changes = Vec::new();
        for (shard, w) in self.workers.iter().enumerate() {
            let reply = w.reply_rx.recv().expect("worker reply");
            debug_assert_eq!(reply.stats.len(), len, "shard answered a different batch");
            for (merged, ev) in stats.iter_mut().zip(&reply.stats) {
                merged.merge(ev);
            }
            changes.extend(reply.changes.into_iter().map(|c| (shard as u32, c)));
        }
        Some((stats, changes))
    }

    /// Number of submitted batches not yet drained.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Drive a whole stream of batches through the shards, keeping up to
    /// `window` batches in flight (0 = fully synchronous, equivalent to
    /// calling [`ShardedMonitor::process_batch`] per batch). `on_batch`
    /// receives each batch's merged outcome in stream order.
    pub fn run_pipelined<I, F>(&mut self, batches: I, window: usize, mut on_batch: F)
    where
        I: IntoIterator<Item = Vec<Document>>,
        F: FnMut(Vec<EventStats>, Vec<(u32, ResultChange)>),
    {
        for batch in batches {
            self.submit_batch(batch);
            // Drain down to the window immediately after submitting, so at
            // most `window` batches are in flight while the iterator
            // produces the next one (window 0: drained before we return to
            // the iterator — synchronous).
            while self.in_flight.len() > window {
                let (stats, changes) = self.drain_batch().expect("in-flight batch");
                on_batch(stats, changes);
            }
        }
        while let Some((stats, changes)) = self.drain_batch() {
            on_batch(stats, changes);
        }
    }

    /// Current results of a query.
    pub fn results(&self, qid: ShardedQueryId) -> Option<Vec<ScoredDoc>> {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[qid.shard as usize]
            .tx
            .send(Command::Results(qid.local, reply_tx))
            .expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Lifetime work counters of every shard's engine, shard order. The
    /// invariant checked by the equivalence tests: after `n` documents,
    /// every shard reports `events == n` (each document visits each shard
    /// exactly once), so the summed counters equal `n × shards`.
    pub fn shard_cumulative(&self) -> Vec<CumulativeStats> {
        self.workers
            .iter()
            .map(|w| {
                let (reply_tx, reply_rx) = bounded(1);
                w.tx.send(Command::Cumulative(reply_tx)).expect("worker alive");
                reply_rx.recv().expect("worker reply")
            })
            .collect()
    }
}

impl Drop for ShardedMonitor {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Command::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrio::MrioSeg;
    use crate::naive::Naive;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn sharded_matches_single_engine() {
        let mut sharded = ShardedMonitor::new(3, || MrioSeg::new(0.001));
        let mut single = Naive::new(0.001);

        let specs: Vec<QuerySpec> =
            (0..30).map(|i| spec(&[i % 7, 7 + i % 4], 2 + (i % 3) as usize)).collect();
        let sharded_ids: Vec<ShardedQueryId> =
            specs.iter().map(|s| sharded.register(s.clone())).collect();
        let single_ids: Vec<QueryId> = specs.iter().map(|s| single.register(s.clone())).collect();

        for i in 0..60u64 {
            let d = doc(i, &[((i % 7) as u32, 1.0), ((7 + i % 4) as u32, 0.6)], i as f64);
            sharded.process(d.clone());
            single.process(&d);
        }
        for (sid, qid) in sharded_ids.iter().zip(&single_ids) {
            assert_eq!(sharded.results(*sid), single.results(*qid));
        }
    }

    #[test]
    fn round_robin_distributes_queries() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let a = m.register(spec(&[1], 1));
        let b = m.register(spec(&[1], 1));
        let c = m.register(spec(&[1], 1));
        assert_eq!(a.shard, 0);
        assert_eq!(b.shard, 1);
        assert_eq!(c.shard, 0);
        assert_eq!(m.shards(), 2);
    }

    #[test]
    fn unregister_and_changes_reporting() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        // k = 2 so the second document still has a free slot to enter.
        let a = m.register(spec(&[1], 2));
        let b = m.register(spec(&[1], 2));
        let (_, changes) = m.process(doc(0, &[(1, 1.0)], 0.0));
        assert_eq!(changes.len(), 2, "both shards report an insertion");
        assert!(m.unregister(a));
        let (_, changes) = m.process(doc(1, &[(1, 2.0)], 1.0));
        assert_eq!(changes.len(), 1);
        assert!(m.results(b).is_some());
        assert!(m.results(a).is_none());
    }

    #[test]
    fn batch_path_matches_per_doc_path() {
        let mk = || {
            let mut m = ShardedMonitor::new(3, || MrioSeg::new(0.001));
            let ids: Vec<ShardedQueryId> = (0..20)
                .map(|i| m.register(spec(&[i % 5, 5 + i % 3], 1 + (i % 2) as usize)))
                .collect();
            (m, ids)
        };
        let docs: Vec<Document> = (0..50u64)
            .map(|i| doc(i, &[((i % 5) as u32, 1.0), ((5 + i % 3) as u32, 0.4)], i as f64))
            .collect();

        let (mut per_doc, ids_a) = mk();
        let mut stats_a = Vec::new();
        let mut changes_a = Vec::new();
        for d in &docs {
            let (ev, ch) = per_doc.process(d.clone());
            stats_a.push(ev);
            changes_a.extend(ch);
        }

        let (mut batched, ids_b) = mk();
        let mut stats_b = Vec::new();
        let mut changes_b = Vec::new();
        for chunk in docs.chunks(16) {
            let (evs, ch) = batched.process_batch(chunk.to_vec());
            stats_b.extend(evs);
            changes_b.extend(ch);
        }

        assert_eq!(stats_a, stats_b, "merged per-document stats must not depend on batching");
        // Changes are reported in unspecified order (per-doc groups by
        // document, the batch path groups by shard): compare as multisets.
        let key = |(shard, c): &(u32, ResultChange)| {
            (*shard, c.query.0, c.inserted.doc.0, c.inserted.score)
        };
        changes_a.sort_by_key(key);
        changes_b.sort_by_key(key);
        assert_eq!(changes_a, changes_b);
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(per_doc.results(*a), batched.results(*b));
        }
        // Every shard saw every document exactly once.
        for cum in batched.shard_cumulative() {
            assert_eq!(cum.events, docs.len() as u64);
        }
    }

    #[test]
    fn pipelined_ingestion_matches_synchronous() {
        let mk = || {
            let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
            let ids: Vec<ShardedQueryId> = (0..10).map(|i| m.register(spec(&[i % 4], 2))).collect();
            (m, ids)
        };
        let batches: Vec<Vec<Document>> = (0..8u64)
            .map(|b| {
                (0..16u64)
                    .map(|i| {
                        let id = b * 16 + i;
                        doc(id, &[((id % 4) as u32, 1.0 + (id % 3) as f32)], id as f64)
                    })
                    .collect()
            })
            .collect();

        let (mut sync_m, ids_a) = mk();
        let mut sync_out = Vec::new();
        for b in &batches {
            let (evs, ch) = sync_m.process_batch(b.clone());
            sync_out.push((evs, ch));
        }

        let (mut pipe_m, ids_b) = mk();
        let mut pipe_out = Vec::new();
        pipe_m.run_pipelined(batches.clone(), 2, |evs, ch| pipe_out.push((evs, ch)));
        assert_eq!(pipe_m.in_flight(), 0);

        assert_eq!(sync_out.len(), pipe_out.len());
        for ((ea, ca), (eb, cb)) in sync_out.iter().zip(&pipe_out) {
            assert_eq!(ea, eb);
            assert_eq!(ca, cb);
        }
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(sync_m.results(*a), pipe_m.results(*b));
        }
    }

    #[test]
    fn drain_on_empty_pipeline_is_none() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        assert!(m.drain_batch().is_none());
        assert_eq!(m.in_flight(), 0);
    }
}
