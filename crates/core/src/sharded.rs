//! Sharded parallel monitor with batched, pipelined ingestion — in two
//! partitioning modes.
//!
//! The paper's goal is "large numbers of users and high stream rates"; a
//! single engine is single-threaded. There are two clean ways to cut the
//! work across worker threads, and the monitor implements both behind one
//! front-end (selected by [`ShardingMode`], a [`crate::MonitorBackend`]
//! construction knob — not a new API):
//!
//! * **Query sharding** ([`ShardingMode::Queries`], the original mode):
//!   queries partition cleanly (each result set depends only on its own
//!   query), so the query population is spread round-robin across workers
//!   and every stream document is broadcast to all shards. Each worker owns
//!   a full engine; the per-document matched-list walk is paid once *per
//!   shard*.
//! * **Document sharding** ([`ShardingMode::Documents`]): each ingest batch
//!   is split across workers that walk one **shared, read-only index
//!   epoch** (`Arc<QueryIndex>`), fully scoring their slice's candidate
//!   queries in parallel; the per-worker candidate lists are then merged
//!   **serially in stream order** against a single authoritative result
//!   store. The walk — the expensive part of an event — is paid once in
//!   total, so this mode scales where query-sharding replicates work:
//!   small query populations under high stream rates.
//!
//! Document mode stays bit-identical to the single-threaded oracle because
//! the parallel phase is pure scoring: workers compute each candidate's raw
//! cosine with exactly the oracle's arithmetic (same index records, same
//! accumulation order) and the serial merge applies insertions in document
//! order through the same offer path. Workers additionally prune candidates
//! against a submit-time snapshot of every query's threshold `S_k`:
//! thresholds only rise while a batch is in flight (registration churn is
//! fenced to batch boundaries), so the snapshot admits a superset of the
//! true insertions and the merge rejects the rest — no false negatives. The
//! filter is disabled for any batch that could trigger a decay landmark
//! renormalization mid-flight (the score frames would no longer be
//! comparable bit-for-bit); such batches are merged unfiltered, which is
//! merely slower, never wrong.
//!
//! On top of the filter, document mode can prune the **walk itself**
//! ([`DocPruning`], default auto-engaged at large query populations): the
//! epoch carries frozen per-list zone-maxima bounds ([`DocEpochBounds`],
//! rebuilt incrementally at the same copy-on-write points as the index),
//! and workers skip zones of a postings list whose score upper bound cannot
//! reach the document's target — MRIO's zone-bound idea applied to the
//! shared epoch. The same monotonicity argument as the filter makes the
//! bounds conservative (thresholds only rise ⇒ frozen bounds only
//! over-estimate), renormalization-crossing batches fall back to the
//! exhaustive walk, and the first pruning batch after a renormalization
//! rebuilds the bounds in the new frame. Pruning changes which postings are
//! *read*, never which candidates survive: results, changes and
//! per-document insertion counts stay bit-identical to the oracle, while
//! the walk counters record the skipped work (`zones_skipped`,
//! `postings_skipped`).
//!
//! Both modes speak the same [`MonitorBackend`] contract as the
//! single-engine [`crate::Monitor`]: applications register with plain
//! [`QueryId`]s and never see the routing. In query mode each public id
//! maps to a `(shard, local id)` route and changes are translated to public
//! ids during the merge; in document mode the shared index *is* the public
//! id space.
//!
//! Ingestion is **batch-first** in both modes: the unit of work sent to a
//! shard is an `Arc`-shared batch (query mode broadcasts the whole batch,
//! document mode sends each worker a disjoint slice), so per-document
//! coordination cost shrinks linearly with the batch size. Replies flow
//! over persistent per-worker channels created once at spawn, and each
//! worker answers in submission order, so the monitor can keep a window of
//! batches **in flight**: [`ShardedMonitor::submit_batch`] hands out batch
//! `n+1` while the merger is still draining batch `n`
//! ([`ShardedMonitor::drain_batch`]), hiding merge latency behind shard
//! compute. [`ShardedMonitor::run_pipelined`] wraps the submit/drain dance
//! for a whole stream of pre-stamped documents; the application-facing
//! [`ShardedMonitor::publish_batch`] drives the same machinery behind the
//! unified API, chunking by the configured ingest batch size.
//!
//! Communication uses `crossbeam` channels; query-mode workers own their
//! engines outright, document-mode workers share only an immutable epoch
//! (no locks on the hot path in either mode).

use crate::backend::{DocPruning, MonitorBackend, PublishReceipt, PublishRequest, ShardingMode};
use crate::config::AdaptiveConfig;
use crate::engine::EngineBase;
use crate::lifecycle::{
    pick_victim, LifecycleManager, NamespaceStats, QueryOptions, RetentionPolicy,
};
use crate::monitor::{
    snapshot_policies, snapshot_query, ShardSnapshot, Snapshot, SNAPSHOT_VERSION,
};
use crate::score::DecayModel;
use crate::stats::{CumulativeStats, EventStats};
use crate::traits::{ContinuousTopK, ResultChange};
use crate::walk::{
    collect_scored_candidates, collect_scored_candidates_bounded, DocEpochBounds, MatchScratch,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ctk_common::{
    DocId, Document, FxHashSet, Namespace, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp,
};
use ctk_index::{PagePin, PostingsStorage, QueryIndex, StorageConfig, StorageStats};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Live-query population at which [`DocPruning::Auto`] switches
/// document-mode workers from the exhaustive to the bounded walk.
///
/// The value is set *above* the largest population the `walk` Criterion
/// bench (`crates/core/benches/walk.rs`) measures the exhaustive walk
/// still winning on this class of hardware: at 100k queries the bounded
/// walk is within ~1.1–1.2× of exhaustive (down from ~2.7× slower at 1k),
/// and the gap closes roughly with `log(queries)/queries`, putting the
/// extrapolated crossover in the paper's 0.25M–4M CTQD regime. `Auto`
/// therefore never engages inside the measured losing range; deployments
/// in the paper's regime (or with much longer postings lists per zone
/// probe) should measure with `sweep_shards --queries --pruning on` and
/// force [`DocPruning::On`].
pub const DOC_PRUNING_AUTO_MIN_QUERIES: usize = 262_144;

/// Deferred bound tightenings ([`DocShards::stale`]) at which the monitor
/// folds them into the epoch bounds before attaching them to a batch.
/// Between refreshes the bounds are merely stale-high — valid but looser.
const BOUNDS_REFRESH_STALE: usize = 64;

/// Internal routing of one public query id (query mode only).
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: u32,
    local: QueryId,
}

enum Command {
    Register(QuerySpec, Sender<QueryId>),
    Unregister(QueryId, Sender<bool>),
    Seed(QueryId, Vec<ScoredDoc>),
    /// Score a batch; the reply travels over the worker's persistent
    /// reply channel, in submission order.
    Process(Arc<[Document]>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Cumulative(Sender<CumulativeStats>),
    Lambda(Sender<f64>),
    Landmark(Sender<Timestamp>),
    RestoreLandmark(Timestamp),
    /// Tombstone ratio beyond which the worker compacts its index after
    /// answering a batch (0 disables).
    SetCompaction(f64),
    /// Compact the worker's index now, regardless of the configured
    /// threshold (bulk-forget reclamation); the reply fences completion.
    Compact(Sender<()>),
    /// Point-in-time storage counters of the worker's index.
    Storage(Sender<StorageStats>),
    Shutdown,
}

/// Merged outcome of one batch: per-document work counters (summed across
/// shards in query mode; produced by the owning shard in document mode) and
/// every result change as `(shard, change)` pairs — changes carry **public**
/// query ids; the shard tag is provenance only.
pub type BatchOutcome = (Vec<EventStats>, Vec<(u32, ResultChange)>);

/// One query-mode shard's answer to a [`Command::Process`] batch.
struct BatchReply {
    /// Per-document work counters, aligned with the batch.
    stats: Vec<EventStats>,
    /// Every result change of the batch, in document order, in the worker's
    /// *local* id space (translated by the merger).
    changes: Vec<ResultChange>,
}

struct Worker {
    tx: Sender<Command>,
    reply_rx: Receiver<BatchReply>,
    handle: Option<JoinHandle<()>>,
}

/// Query-mode runtime: one engine per worker, queries spread round-robin.
struct QueryShards {
    workers: Vec<Worker>,
    next_shard: usize,
    /// Lengths of submitted-but-undrained batches, oldest first.
    in_flight: VecDeque<usize>,
    /// Shard routes by public query id.
    routes: Vec<Option<Route>>,
    /// Per shard: local id index → public id (append-only; locals are
    /// allocated monotonically by each worker's engine).
    global_of_local: Vec<Vec<QueryId>>,
}

/// Submit-time candidate filter for document-mode workers: the decay frame
/// and every query's threshold `S_k` frozen at submission. Thresholds only
/// rise while the batch is in flight, so `score >= threshold` admits a
/// superset of the true insertions — the serial merge rejects the rest.
#[derive(Clone)]
struct CandidateFilter {
    decay: DecayModel,
    /// Landmark-frame `S_k` per query slot (0.0 for unfilled or dead).
    thresholds: Arc<[f64]>,
}

/// One slice of a batch handed to a document-mode scorer worker.
struct DocJob {
    /// The shared read-only index epoch this slice is scored against.
    index: Arc<QueryIndex>,
    docs: Arc<[Document]>,
    start: usize,
    len: usize,
    /// `None` when a renormalization could fire before the merge — the
    /// worker then forwards every candidate unfiltered.
    filter: Option<CandidateFilter>,
    /// Frozen zone-maxima bounds over `index`, when pruning is engaged for
    /// this batch. Only ever `Some` alongside a filter (the bounds prove a
    /// candidate *would fail that filter*; without the filter's frozen
    /// frame there is nothing sound to prove).
    bounds: Option<Arc<DocEpochBounds>>,
}

enum DocCommand {
    Score(DocJob),
    Shutdown,
}

/// A document-mode worker's answer to one [`DocJob`]: per-document walk
/// counters and the surviving `(query, raw cosine)` candidates, ascending
/// query id per document.
struct DocReply {
    stats: Vec<EventStats>,
    candidates: Vec<Vec<(QueryId, f64)>>,
}

struct DocWorker {
    tx: Sender<DocCommand>,
    reply_rx: Receiver<DocReply>,
    handle: Option<JoinHandle<()>>,
}

/// Split bookkeeping of one in-flight document-mode batch: which worker got
/// how many documents, in stream order.
struct PendingDocBatch {
    docs: Arc<[Document]>,
    /// `(worker, count)` slices in stream order; counts sum to `docs.len()`.
    slices: Vec<(u32, usize)>,
    /// Paged storage only: pins on the epoch's RAM-resident pages, held for
    /// the batch's lifetime so the pager never spills a page out from under
    /// an in-flight walk (dropped — releasing the veto — at drain).
    _pins: Option<Arc<Vec<PagePin>>>,
}

/// Document-mode runtime: scorer workers over a shared index epoch plus the
/// single authoritative result store the merge applies into.
struct DocShards {
    workers: Vec<DocWorker>,
    /// The current index epoch. Registration churn mutates it copy-on-write
    /// (`Arc::make_mut`), so in-flight batches keep scoring their epoch.
    index: Arc<QueryIndex>,
    /// Authoritative decay model, result states, changes and counters —
    /// only ever touched by the (serial) merge.
    base: EngineBase,
    /// Submitted-but-undrained batches, oldest first.
    pending: VecDeque<PendingDocBatch>,
    /// Per-worker lifetime counters of the documents each worker scored.
    worker_cum: Vec<CumulativeStats>,
    /// Tombstone ratio beyond which batch boundaries compact the epoch
    /// index (0 disables).
    compact_at: f64,
    /// Rotates which worker receives the first slice, so tiny batches do
    /// not pin all work to worker 0.
    next_start: usize,
    /// Memoized candidate filter, shared (`Arc`) with submitted jobs.
    /// Invalidated whenever a threshold could have moved — registration
    /// churn, seeding, a merge that inserted anything, a renormalization —
    /// so quiet stretches of the stream (the common steady state) submit
    /// batch after batch without re-materializing the O(queries) snapshot.
    filter_cache: Option<CandidateFilter>,
    /// Zone-maxima bounds over the current epoch, frozen while attached to
    /// in-flight jobs, mutated copy-on-write at the same points as `index`.
    bounds: Arc<DocEpochBounds>,
    /// Whether (and when) workers consult `bounds` — see [`DocPruning`].
    pruning: DocPruning,
    /// Set when frozen bound values may **under-estimate** the live
    /// `u = w/S_k` (a renormalization scaled thresholds down, or a restore
    /// changed the frame): pruning stays off until a full rebuild.
    bounds_dirty: bool,
    /// Queries whose `S_k` rose since their bound values were written —
    /// deferred tightenings, folded in once enough accumulate. Purely an
    /// optimization debt: stale-high bounds are still upper bounds.
    stale: FxHashSet<QueryId>,
    /// Memoized pins on the current epoch's RAM-resident pages (paged
    /// storage only; `None` otherwise or after any epoch mutation). Shared
    /// with in-flight batches so each submit does not re-walk every list.
    epoch_pins: Option<Arc<Vec<PagePin>>>,
}

/// Score one slice of a batch against an index epoch: the term-filtered
/// walk — exhaustive ([`collect_scored_candidates`], the same function with
/// the same arithmetic and counter semantics the [`crate::Naive`] oracle
/// runs) or, when the job carries frozen epoch bounds, the bounded walk
/// ([`collect_scored_candidates_bounded`]: identical surviving candidates
/// and dots, zones the bounds refute skipped wholesale) — followed by the
/// optional threshold filter. Pure: the only engine state it reads is the
/// immutable epoch.
fn score_slice(
    job: &DocJob,
    scratch: &mut MatchScratch,
    scored: &mut Vec<(QueryId, f64)>,
) -> DocReply {
    let index = &*job.index;
    let mut stats = Vec::with_capacity(job.len);
    let mut candidates = Vec::with_capacity(job.len);
    for doc in &job.docs[job.start..job.start + job.len] {
        let mut ev = EventStats::default();
        let kept = match &job.filter {
            None => {
                collect_scored_candidates(index, doc, scratch, &mut ev, scored);
                scored.clone()
            }
            Some(f) => {
                match &job.bounds {
                    None => collect_scored_candidates(index, doc, scratch, &mut ev, scored),
                    Some(b) => {
                        // The bounded walk prunes against the same frozen
                        // frame the filter tests in: θ_d is the filter's
                        // amplification inverted.
                        let theta = f.decay.theta(doc.arrival);
                        collect_scored_candidates_bounded(
                            index, b, theta, doc, scratch, &mut ev, scored,
                        );
                    }
                }
                // One exp() per document, not per candidate.
                let amp = f.decay.amplification(doc.arrival);
                scored
                    .iter()
                    .filter(|&&(qid, dot)| dot * amp >= f.thresholds[qid.index()])
                    .copied()
                    .collect()
            }
        };
        stats.push(ev);
        candidates.push(kept);
    }
    DocReply { stats, candidates }
}

impl DocShards {
    /// Should the next batch consult the epoch bounds?
    fn pruning_wanted(&self) -> bool {
        match self.pruning {
            DocPruning::Off => false,
            DocPruning::On => true,
            DocPruning::Auto => self.index.num_live() >= DOC_PRUNING_AUTO_MIN_QUERIES,
        }
    }
}

/// Exclusive, thawed access to an epoch's bounds for a mutation point.
/// Copy-on-write: in-flight jobs hold `Arc` clones of the (frozen) epochs
/// they score against, so `make_mut` clones rather than handing back an
/// instance a worker can read; the debug assertions inside
/// [`DocEpochBounds`] pin that a frozen epoch is never mutated in place.
fn thawed(bounds: &mut Arc<DocEpochBounds>) -> &mut DocEpochBounds {
    let b = Arc::make_mut(bounds);
    b.thaw();
    b
}

enum Runtime {
    Queries(QueryShards),
    Documents(Box<DocShards>),
}

/// AIMD controller over the `publish_batch` chunk size.
///
/// One decision per pipeline drain: a drain slower than the configured
/// target halves the chunk (multiplicative decrease), an on-target drain
/// grows it by the additive step — both clamped to the configured bounds.
/// The controller never touches *what* is computed, only how the publish
/// is cut into pipeline chunks, and chunking is result-invariant (see
/// [`AdaptiveConfig`] and the proptests in `tests/sharded_batch.rs`).
#[derive(Debug, Clone)]
pub struct AdaptiveBatcher {
    cfg: AdaptiveConfig,
    chunk: usize,
}

impl AdaptiveBatcher {
    /// A controller starting at the configured minimum chunk size (additive
    /// growth probes upward from there, like TCP slow-start's conservative
    /// cousin).
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(
            1 <= cfg.min_chunk && cfg.min_chunk <= cfg.max_chunk,
            "need 1 <= min_chunk <= max_chunk"
        );
        AdaptiveBatcher { chunk: cfg.min_chunk, cfg }
    }

    /// The chunk size the next submit should use.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Feed one measured drain latency (milliseconds) into the controller.
    pub fn observe(&mut self, drain_ms: f64) {
        if drain_ms > self.cfg.target_drain_ms {
            self.chunk = (self.chunk / 2).max(self.cfg.min_chunk);
        } else {
            self.chunk = self.chunk.saturating_add(self.cfg.increase_step).min(self.cfg.max_chunk);
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }
}

/// A monitor that spreads stream work across `S` worker threads, in either
/// sharding mode (see the module docs and [`ShardingMode`]).
pub struct ShardedMonitor {
    runtime: Runtime,
    /// Registered specs by public query id (`None` after unregistration).
    specs: Vec<Option<QuerySpec>>,
    live: usize,
    next_doc: u64,
    last_arrival: Timestamp,
    /// `publish_batch` chunk size (0 = whole publish as one batch).
    ingest_batch: usize,
    /// Batches kept in flight by `publish_batch` while chunking.
    ingest_window: usize,
    /// AIMD chunk-size controller; when set it overrides `ingest_batch`
    /// with a chunk size retuned from measured drain latency.
    adaptive: Option<AdaptiveBatcher>,
    /// Namespaces, retention policies, per-query deadlines — the same
    /// front-end lifecycle layer [`crate::Monitor`] carries, so both
    /// backends expire and evict at identical batch boundaries.
    lifecycle: LifecycleManager,
    /// Cap evictions performed since the last publish receipt (evictions
    /// fire at registration time, which produces no receipt to attribute
    /// them to; the next publish flushes the count).
    pending_evicted: u64,
}

impl ShardedMonitor {
    /// Spawn `shards` query-mode workers, each owning an engine built by
    /// `make_engine` (e.g. `|| MrioSeg::new(lambda)`).
    pub fn new<E, F>(shards: usize, make_engine: F) -> Self
    where
        E: ContinuousTopK + Send + 'static,
        F: Fn() -> E,
    {
        assert!(shards >= 1);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<Command>();
            // Unbounded so a worker never blocks publishing a reply; the
            // monitor bounds the number of outstanding batches itself via
            // the pipelining window.
            let (reply_tx, reply_rx) = unbounded::<BatchReply>();
            let mut engine = make_engine();
            let handle = std::thread::spawn(move || {
                let mut compact_at = 0.0f64;
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Register(spec, reply) => {
                            let _ = reply.send(engine.register(spec));
                        }
                        Command::Unregister(qid, reply) => {
                            let _ = reply.send(engine.unregister(qid));
                        }
                        Command::Seed(qid, seeds) => {
                            engine.seed_results(qid, &seeds);
                        }
                        Command::Process(docs) => {
                            let mut changes = Vec::new();
                            let stats = engine.process_batch_into(&docs, &mut changes);
                            if reply_tx.send(BatchReply { stats, changes }).is_err() {
                                break; // monitor gone
                            }
                            // Batch boundary: no event is mid-flight on this
                            // shard, so the index may reorganize.
                            if compact_at > 0.0 && engine.tombstone_ratio() >= compact_at {
                                engine.compact_index();
                            }
                        }
                        Command::Results(qid, reply) => {
                            let _ = reply.send(engine.results(qid));
                        }
                        Command::Cumulative(reply) => {
                            let _ = reply.send(*engine.cumulative());
                        }
                        Command::Lambda(reply) => {
                            let _ = reply.send(engine.lambda());
                        }
                        Command::Landmark(reply) => {
                            let _ = reply.send(engine.landmark());
                        }
                        Command::RestoreLandmark(landmark) => {
                            engine.restore_landmark(landmark);
                        }
                        Command::SetCompaction(ratio) => {
                            compact_at = ratio.max(0.0);
                        }
                        Command::Compact(reply) => {
                            engine.compact_index();
                            let _ = reply.send(());
                        }
                        Command::Storage(reply) => {
                            let _ = reply.send(engine.storage_stats());
                        }
                        Command::Shutdown => break,
                    }
                }
            });
            workers.push(Worker { tx, reply_rx, handle: Some(handle) });
        }
        ShardedMonitor {
            runtime: Runtime::Queries(QueryShards {
                global_of_local: vec![Vec::new(); workers.len()],
                workers,
                next_shard: 0,
                in_flight: VecDeque::new(),
                routes: Vec::new(),
            }),
            specs: Vec::new(),
            live: 0,
            next_doc: 0,
            last_arrival: 0.0,
            ingest_batch: 0,
            ingest_window: 1,
            adaptive: None,
            lifecycle: LifecycleManager::new(),
            pending_evicted: 0,
        }
    }

    /// Spawn `shards` document-mode scorer workers sharing one index epoch.
    /// `lambda` is the decay parameter of the (single, authoritative) decay
    /// model; scoring uses the exact term-filtered walk, so results are
    /// bit-identical to any engine kind.
    pub fn new_doc_parallel(shards: usize, lambda: f64) -> Self {
        ShardedMonitor::new_doc_parallel_with(shards, lambda, &StorageConfig::plain())
    }

    /// As [`ShardedMonitor::new_doc_parallel`], with an explicit postings-
    /// storage configuration for the shared index epoch. Under
    /// [`PostingsStorage::Paged`], every in-flight batch pins the epoch's
    /// RAM-resident pages so the pager cannot spill them mid-walk.
    pub fn new_doc_parallel_with(shards: usize, lambda: f64, storage: &StorageConfig) -> Self {
        assert!(shards >= 1);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<DocCommand>();
            let (reply_tx, reply_rx) = unbounded::<DocReply>();
            let handle = std::thread::spawn(move || {
                let mut scratch = MatchScratch::default();
                let mut scored: Vec<(QueryId, f64)> = Vec::new();
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        DocCommand::Score(job) => {
                            let reply = score_slice(&job, &mut scratch, &mut scored);
                            if reply_tx.send(reply).is_err() {
                                break; // monitor gone
                            }
                        }
                        DocCommand::Shutdown => break,
                    }
                }
            });
            workers.push(DocWorker { tx, reply_rx, handle: Some(handle) });
        }
        ShardedMonitor {
            runtime: Runtime::Documents(Box::new(DocShards {
                worker_cum: vec![CumulativeStats::default(); workers.len()],
                workers,
                index: Arc::new(QueryIndex::with_storage(storage)),
                base: EngineBase::new(lambda),
                pending: VecDeque::new(),
                compact_at: 0.0,
                next_start: 0,
                filter_cache: None,
                bounds: Arc::new(DocEpochBounds::new()),
                pruning: DocPruning::default(),
                bounds_dirty: false,
                stale: FxHashSet::default(),
                epoch_pins: None,
            })),
            specs: Vec::new(),
            live: 0,
            next_doc: 0,
            last_arrival: 0.0,
            ingest_batch: 0,
            ingest_window: 1,
            adaptive: None,
            lifecycle: LifecycleManager::new(),
            pending_evicted: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        match &self.runtime {
            Runtime::Queries(rt) => rt.workers.len(),
            Runtime::Documents(rt) => rt.workers.len(),
        }
    }

    /// How this monitor partitions its work.
    pub fn mode(&self) -> ShardingMode {
        match &self.runtime {
            Runtime::Queries(_) => ShardingMode::Queries,
            Runtime::Documents(_) => ShardingMode::Documents,
        }
    }

    /// Enable tombstone compaction: after a batch boundary where the
    /// (per-shard in query mode, shared in document mode) index has
    /// `tombstone_ratio() >= ratio`, it is compacted and the affected bound
    /// structures rebuilt. `<= 0.0` disables.
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                for w in &rt.workers {
                    w.tx.send(Command::SetCompaction(ratio)).expect("worker alive");
                }
            }
            Runtime::Documents(rt) => {
                rt.compact_at = ratio.max(0.0);
            }
        }
    }

    /// Configure whether document-mode scorer workers prune their walk
    /// with the shared epoch's zone-maxima bounds (see [`DocPruning`];
    /// default [`DocPruning::Auto`]). No effect in query mode, whose
    /// engines carry their own bounds.
    pub fn set_doc_pruning(&mut self, pruning: DocPruning) {
        if let Runtime::Documents(rt) = &mut self.runtime {
            rt.pruning = pruning;
        }
    }

    /// The configured document-mode pruning policy (`None` in query mode).
    pub fn doc_pruning(&self) -> Option<DocPruning> {
        match &self.runtime {
            Runtime::Queries(_) => None,
            Runtime::Documents(rt) => Some(rt.pruning),
        }
    }

    /// Configure how [`ShardedMonitor::publish_batch`] drives the pipeline:
    /// the publish is split into chunks of `batch_size` documents (0 = one
    /// chunk) with up to `window` chunks in flight (0 = fully synchronous).
    pub fn set_ingest_chunking(&mut self, batch_size: usize, window: usize) {
        self.ingest_batch = batch_size;
        self.ingest_window = window;
    }

    /// Enable the AIMD chunk-size controller: [`ShardedMonitor::publish_batch`]
    /// re-reads the controller's chunk size before every submit and feeds it
    /// each drain's wall-clock latency, so sustained ingest pressure grows
    /// the chunk (fewer submit/drain round-trips per document) while a slow
    /// drain halves it (bounded per-chunk latency). Results are unaffected —
    /// chunking is result-invariant (see [`AdaptiveConfig`]).
    pub fn set_adaptive_batching(&mut self, cfg: AdaptiveConfig) {
        self.adaptive = Some(AdaptiveBatcher::new(cfg));
    }

    /// Disable adaptive chunking, reverting to the fixed
    /// [`ShardedMonitor::set_ingest_chunking`] batch size.
    pub fn clear_adaptive_batching(&mut self) {
        self.adaptive = None;
    }

    /// The adaptive controller's current chunk size, when one is installed.
    pub fn adaptive_chunk(&self) -> Option<usize> {
        self.adaptive.as_ref().map(AdaptiveBatcher::chunk)
    }

    /// Register a query; returns its public id. Query mode places it on the
    /// least-recently-used shard (round robin); document mode adds it to
    /// the shared index epoch (which must be quiesced — no batches in
    /// flight — so in-flight scoring never races registration churn).
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        self.register_with(spec, QueryOptions::default())
    }

    /// Register a query with lifecycle options (namespace, optional TTL).
    /// Same placement rules as [`ShardedMonitor::register`]; may evict an
    /// existing member of the namespace if a `max_queries` cap is crossed
    /// (never the newcomer).
    pub fn register_with(&mut self, spec: QuerySpec, opts: QueryOptions) -> QueryId {
        let global = QueryId(self.specs.len() as u32);
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                let shard = rt.next_shard;
                rt.next_shard = (rt.next_shard + 1) % rt.workers.len();
                let (reply_tx, reply_rx) = bounded(1);
                rt.workers[shard]
                    .tx
                    .send(Command::Register(spec.clone(), reply_tx))
                    .expect("worker alive");
                let local = reply_rx.recv().expect("worker reply");
                debug_assert_eq!(local.index(), rt.global_of_local[shard].len());
                rt.global_of_local[shard].push(global);
                rt.routes.push(Some(Route { shard: shard as u32, local }));
            }
            Runtime::Documents(rt) => {
                assert!(
                    rt.pending.is_empty(),
                    "doc-parallel registration requires a quiesced pipeline; drain first"
                );
                let qid = Arc::make_mut(&mut rt.index).register(&spec.vector, spec.k as u32);
                debug_assert_eq!(qid, global, "shared index allocates the public id space");
                rt.base.push_state(spec.k as u32);
                // Mirror the new postings into the epoch bounds (the fresh
                // query is unfilled, so its positions carry +inf and its
                // zones are unprunable until it fills — warm-up semantics).
                let (base, index) = (&rt.base, &rt.index);
                let entries = index.record(qid).expect("just registered").to_record().entries;
                thawed(&mut rt.bounds)
                    .append_registration(qid, &entries, |q, w| base.normalized_of(q, w as f64));
                rt.filter_cache = None;
                rt.epoch_pins = None;
            }
        }
        self.specs.push(Some(spec));
        self.live += 1;
        self.lifecycle.on_register(global, opts, self.last_arrival);
        self.enforce_cap(opts.namespace, Some(global));
        global
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: QueryId) -> bool {
        if self.specs.get(qid.index()).is_none_or(Option::is_none) {
            return false;
        }
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                let route = rt.routes[qid.index()].take().expect("spec implies route");
                let (reply_tx, reply_rx) = bounded(1);
                rt.workers[route.shard as usize]
                    .tx
                    .send(Command::Unregister(route.local, reply_tx))
                    .expect("worker alive");
                let removed = reply_rx.recv().expect("worker reply");
                debug_assert!(removed, "route table said the query was live");
            }
            Runtime::Documents(rt) => {
                assert!(
                    rt.pending.is_empty(),
                    "doc-parallel unregistration requires a quiesced pipeline; drain first"
                );
                let record = Arc::make_mut(&mut rt.index).unregister(qid);
                debug_assert!(record.is_some(), "spec table said the query was live");
                if let Some(rec) = record {
                    thawed(&mut rt.bounds).tombstone_registration(&rec.entries);
                }
                rt.base.drop_state(qid);
                rt.stale.remove(&qid);
                rt.filter_cache = None;
                rt.epoch_pins = None;
            }
        }
        self.specs[qid.index()] = None;
        self.live -= 1;
        self.lifecycle.on_unregister(qid);
        true
    }

    /// Intern a namespace name, allocating its handle on first sight.
    pub fn intern_namespace(&mut self, name: &str) -> Namespace {
        self.lifecycle.intern(name)
    }

    /// Install (or replace) a namespace's retention policy; recomputes
    /// member deadlines and enforces a lowered `max_queries` cap now.
    pub fn set_retention(&mut self, ns: Namespace, policy: RetentionPolicy) {
        self.lifecycle.set_policy(ns, policy);
        self.enforce_cap(ns, None);
    }

    /// Remove every query of a namespace at once; returns how many were
    /// removed. Query mode unregisters per route and then force-compacts
    /// every shard (fenced); document mode bulk-tombstones the shared epoch
    /// in one pass and force-compacts it. Requires a quiesced pipeline.
    pub fn forget_namespace(&mut self, ns: Namespace) -> usize {
        let members = self.lifecycle.members(ns);
        if members.is_empty() {
            return 0;
        }
        match self.mode() {
            ShardingMode::Queries => {
                for &qid in &members {
                    let removed = self.unregister(qid);
                    debug_assert!(removed, "namespace member {qid} must be live");
                }
                let Runtime::Queries(rt) = &self.runtime else { unreachable!() };
                // Broadcast, then fence: shards compact in parallel.
                let fences: Vec<Receiver<()>> = rt
                    .workers
                    .iter()
                    .map(|w| {
                        let (reply_tx, reply_rx) = bounded(1);
                        w.tx.send(Command::Compact(reply_tx)).expect("worker alive");
                        reply_rx
                    })
                    .collect();
                for fence in fences {
                    fence.recv().expect("worker reply");
                }
            }
            ShardingMode::Documents => {
                let Runtime::Documents(rt) = &mut self.runtime else { unreachable!() };
                assert!(
                    rt.pending.is_empty(),
                    "doc-parallel bulk forget requires a quiesced pipeline; drain first"
                );
                let removed = Arc::make_mut(&mut rt.index).unregister_many(&members);
                debug_assert_eq!(removed.len(), members.len(), "every member must be live");
                for (qid, rec) in &removed {
                    thawed(&mut rt.bounds).tombstone_registration(&rec.entries);
                    rt.base.drop_state(*qid);
                    rt.stale.remove(qid);
                }
                rt.filter_cache = None;
                rt.epoch_pins = None;
                // Forced compaction reclaims the bulk tombstones at once;
                // realign the affected lists' bounds exactly as the
                // threshold-triggered compaction in `drain_batch` does.
                let changed_lists = Arc::make_mut(&mut rt.index).compact();
                if !changed_lists.is_empty() {
                    let (base, index) = (&rt.base, &rt.index);
                    let b = thawed(&mut rt.bounds);
                    for li in changed_lists {
                        b.rebuild_list(index, li, |q, w| base.normalized_of(q, w as f64));
                    }
                }
                for &qid in &members {
                    self.lifecycle.on_unregister(qid);
                    self.specs[qid.index()] = None;
                    self.live -= 1;
                }
            }
        }
        members.len()
    }

    /// Expire every query whose deadline has passed, relative to the later
    /// of the stream clock and the first arrival of the batch about to be
    /// published. O(1) when no TTLs are in play. Runs only at publish
    /// entry, where the pipeline is quiesced in both modes.
    fn expire_due(&mut self, first_arrival: Option<Timestamp>) -> u64 {
        if self.lifecycle.no_deadlines() {
            return 0;
        }
        let now = first_arrival.map_or(self.last_arrival, |a| a.max(self.last_arrival));
        let due = self.lifecycle.take_expired(now);
        for &qid in &due {
            let removed = self.unregister(qid);
            debug_assert!(removed, "expired query {qid} must be live");
        }
        due.len() as u64
    }

    /// Evict until the namespace is back under its cap, per its policy's
    /// victim selection. `protect` (a just-registered newcomer) is never a
    /// candidate, which also guarantees termination for a cap of 0.
    fn enforce_cap(&mut self, ns: Namespace, protect: Option<QueryId>) {
        loop {
            let Some(policy) = self.lifecycle.policy(ns) else { return };
            let Some(cap) = policy.max_queries else { return };
            let members = self.lifecycle.members(ns);
            if members.len() as u64 <= cap {
                return;
            }
            let candidates: Vec<QueryId> =
                members.into_iter().filter(|&q| Some(q) != protect).collect();
            let victim = pick_victim(&candidates, policy.eviction, |q| {
                self.results(q).and_then(|r| r.first().map(|sd| sd.score.get())).unwrap_or(0.0)
            });
            let Some(victim) = victim else { return };
            self.lifecycle.note_evicted(victim);
            let removed = self.unregister(victim);
            debug_assert!(removed, "cap victim {victim} must be live");
            self.pending_evicted += 1;
        }
    }

    /// Fold this publish's lifecycle removals into its receipt: the batch's
    /// first stat line carries the expiry count plus any cap evictions
    /// pending since the last receipt.
    fn attribute_lifecycle(&mut self, receipt: &mut PublishReceipt, expired: u64) {
        if let Some(first) = receipt.stats.first_mut() {
            first.expired += expired;
            first.evicted += std::mem::take(&mut self.pending_evicted);
        }
    }

    /// Warm-start a query's result set (snapshot restore path).
    pub fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        if self.specs.get(qid.index()).is_none_or(Option::is_none) {
            return;
        }
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                let route = rt.routes[qid.index()].expect("spec implies route");
                rt.workers[route.shard as usize]
                    .tx
                    .send(Command::Seed(route.local, seeds.to_vec()))
                    .expect("worker alive");
            }
            Runtime::Documents(rt) => {
                // Same fence as register/unregister: query mode FIFO-orders
                // a seed behind in-flight batches, so applying it eagerly
                // here would reorder it *ahead* of them and break the
                // modes' bit-identical contract.
                assert!(
                    rt.pending.is_empty(),
                    "doc-parallel seeding requires a quiesced pipeline; drain first"
                );
                rt.base.seed(qid, seeds);
                // The seed can only have *raised* the query's threshold, so
                // its frozen bound values are now stale-high — valid but
                // loose; queue the tightening when anything will flush it.
                if rt.pruning_wanted() {
                    rt.stale.insert(qid);
                }
                rt.filter_cache = None;
            }
        }
    }

    /// Process one pre-stamped stream event; returns the merged work
    /// counters and all result changes. This is the batch path with a batch
    /// of one — latency-oriented callers keep the old API,
    /// throughput-oriented callers should use
    /// [`ShardedMonitor::process_batch`] or the submit/drain pipeline.
    pub fn process(&mut self, doc: Document) -> (EventStats, Vec<(u32, ResultChange)>) {
        let (mut stats, changes) = self.process_batch(vec![doc]);
        (stats.pop().expect("one document in, one stat out"), changes)
    }

    /// Hand one batch of pre-stamped documents to the shards and wait for
    /// the merged outcome: per-document work counters and every result
    /// change as `(shard, change)` pairs.
    ///
    /// Must not be interleaved with an open submit/drain pipeline — drain
    /// in-flight batches first.
    pub fn process_batch(&mut self, docs: Vec<Document>) -> BatchOutcome {
        assert!(
            self.in_flight() == 0,
            "process_batch cannot run while submitted batches are in flight; drain them first"
        );
        self.submit_batch(docs);
        self.drain_batch().expect("batch just submitted")
    }

    /// Hand one batch to the shards **without waiting**: query mode
    /// broadcasts the `Arc`-shared batch to every worker, document mode
    /// sends each worker a disjoint slice. Pair with
    /// [`ShardedMonitor::drain_batch`]; replies come back in submission
    /// order, so keeping one or two batches in flight lets the shards score
    /// batch `n+1` while the merger drains batch `n`.
    pub fn submit_batch(&mut self, docs: Vec<Document>) {
        // Pre-stamped ingestion advances the stream position too, so a
        // snapshot taken after `process`/`run_pipelined` captures a
        // consistent `next_doc`/`last_arrival`. The publish path has
        // already advanced both in `admit`, making this a no-op there.
        for d in &docs {
            self.next_doc = self.next_doc.max(d.id.0 + 1);
            self.last_arrival = self.last_arrival.max(d.arrival);
        }
        let docs: Arc<[Document]> = docs.into();
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                for w in &rt.workers {
                    w.tx.send(Command::Process(Arc::clone(&docs))).expect("worker alive");
                }
                rt.in_flight.push_back(docs.len());
            }
            Runtime::Documents(rt) => {
                let n = docs.len();
                let s = rt.workers.len();
                // Candidate filter: exact only while the decay frame is
                // stable. `last_arrival` bounds every submitted arrival, so
                // if it does not warrant a renormalization, no in-flight
                // merge can move the landmark under this batch's snapshot.
                // The snapshot itself is memoized: every invalidation point
                // (churn, seeds, insertions, renorms) clears `filter_cache`,
                // so a still-cached filter is exactly the current state and
                // quiet streams pay the O(queries) materialization only
                // after something actually moved a threshold.
                let filter = if rt.base.decay.needs_renorm(self.last_arrival) {
                    rt.filter_cache = None;
                    None
                } else {
                    if rt.filter_cache.is_none() {
                        let thresholds: Arc<[f64]> = (0..rt.index.num_slots())
                            .map(|i| rt.base.threshold_of(QueryId(i as u32)))
                            .collect();
                        rt.filter_cache =
                            Some(CandidateFilter { decay: rt.base.decay.clone(), thresholds });
                    }
                    rt.filter_cache.clone()
                };
                // Epoch bounds ride along when pruning is engaged and the
                // batch has a valid frozen frame (`filter`). Bounds built
                // under older (lower) thresholds only over-estimate — the
                // conservative direction — so the only maintenance the hot
                // path ever pays here is a deferred-tightening flush or, on
                // the first batch after a renormalization, a full rebuild
                // in the new frame.
                let bounds = if filter.is_some() && rt.pruning_wanted() {
                    if rt.bounds_dirty {
                        let (base, index) = (&rt.base, &rt.index);
                        thawed(&mut rt.bounds)
                            .rebuild_all(index, |q, w| base.normalized_of(q, w as f64));
                        rt.bounds_dirty = false;
                        rt.stale.clear();
                    } else if rt.stale.len() >= BOUNDS_REFRESH_STALE {
                        let (base, index) = (&rt.base, &rt.index);
                        let b = thawed(&mut rt.bounds);
                        for qid in rt.stale.drain() {
                            if let Some(rec) = index.record(qid) {
                                b.refresh_query(qid, &rec.to_record().entries, |q, w| {
                                    base.normalized_of(q, w as f64)
                                });
                            }
                        }
                    }
                    if !rt.bounds.is_frozen() {
                        // Only ever unfrozen while exclusively owned, so
                        // this never clones.
                        Arc::make_mut(&mut rt.bounds).freeze();
                    }
                    Some(Arc::clone(&rt.bounds))
                } else {
                    None
                };
                // Contiguous slices in stream order, rotating the first
                // worker per batch so small batches spread across shards.
                let mut slices = Vec::with_capacity(s);
                let (chunk, rem) = (n / s, n % s);
                let mut start = 0usize;
                for i in 0..s {
                    let count = chunk + usize::from(i < rem);
                    if count == 0 {
                        continue;
                    }
                    let w = (rt.next_start + i) % s;
                    rt.workers[w]
                        .tx
                        .send(DocCommand::Score(DocJob {
                            index: Arc::clone(&rt.index),
                            docs: Arc::clone(&docs),
                            start,
                            len: count,
                            filter: filter.clone(),
                            bounds: bounds.clone(),
                        }))
                        .expect("worker alive");
                    slices.push((w as u32, count));
                    start += count;
                }
                rt.next_start = (rt.next_start + 1) % s;
                // Paged storage: pin the epoch's resident pages for the
                // batch's flight so worker reads never race an eviction.
                // Memoized per epoch — churn and compaction drop the cache.
                let pins =
                    (rt.index.storage_config().storage == PostingsStorage::Paged).then(|| {
                        Arc::clone(
                            rt.epoch_pins
                                .get_or_insert_with(|| Arc::new(rt.index.pin_resident_pages())),
                        )
                    });
                rt.pending.push_back(PendingDocBatch { docs, slices, _pins: pins });
            }
        }
    }

    /// Merge the oldest in-flight batch: blocks until every involved shard
    /// has answered it. Returns `None` when nothing is in flight.
    ///
    /// Query mode translates shard-local query ids to public ids here;
    /// document mode applies the per-worker candidates to the authoritative
    /// result store serially, in stream order — this is where insertions,
    /// result changes and decay renormalizations actually happen.
    pub fn drain_batch(&mut self) -> Option<BatchOutcome> {
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                let len = rt.in_flight.pop_front()?;
                let mut stats = vec![EventStats::default(); len];
                let mut changes = Vec::new();
                for (shard, w) in rt.workers.iter().enumerate() {
                    let reply = w.reply_rx.recv().expect("worker reply");
                    debug_assert_eq!(reply.stats.len(), len, "shard answered a different batch");
                    for (merged, ev) in stats.iter_mut().zip(&reply.stats) {
                        merged.merge(ev);
                    }
                    let locals = &rt.global_of_local[shard];
                    changes.extend(reply.changes.into_iter().map(|mut c| {
                        c.query = locals[c.query.index()];
                        (shard as u32, c)
                    }));
                }
                Some((stats, changes))
            }
            Runtime::Documents(rt) => {
                let pending = rt.pending.pop_front()?;
                let mut stats = Vec::with_capacity(pending.docs.len());
                let mut changes: Vec<(u32, ResultChange)> = Vec::new();
                let mut doc_i = 0usize;
                let mut thresholds_moved = false;
                let mut renormalized = false;
                for &(w, count) in &pending.slices {
                    let reply = rt.workers[w as usize].reply_rx.recv().expect("worker reply");
                    debug_assert_eq!(reply.stats.len(), count, "worker answered a different slice");
                    for (mut ev, cands) in reply.stats.into_iter().zip(reply.candidates) {
                        let doc = &pending.docs[doc_i];
                        let (_theta, amp, renorm) = rt.base.begin_event(doc.arrival);
                        renormalized |= renorm.is_some();
                        thresholds_moved |= renorm.is_some();
                        for (qid, raw_dot) in cands {
                            if rt.base.offer(qid, doc, raw_dot, amp) {
                                ev.updates += 1;
                                thresholds_moved = true;
                            }
                        }
                        changes.extend(rt.base.changes.iter().map(|c| (w, *c)));
                        ev.accumulate_into(&mut rt.base.cum);
                        ev.accumulate_into(&mut rt.worker_cum[w as usize]);
                        stats.push(ev);
                        doc_i += 1;
                    }
                }
                debug_assert_eq!(doc_i, pending.docs.len(), "slices must cover the batch");
                if thresholds_moved {
                    // An insertion or renormalization moved some `S_k` (or
                    // the frame): the memoized submit-time filter is stale.
                    rt.filter_cache = None;
                }
                if renormalized {
                    // Thresholds were scaled *down*: frozen bound values now
                    // under-estimate `u = w/S_k` — the one direction pruning
                    // cannot absorb. Disable it until a full rebuild in the
                    // new frame (next pruning submit), and drop the queued
                    // tightenings the rebuild subsumes.
                    rt.bounds_dirty = true;
                    rt.stale.clear();
                } else if rt.pruning_wanted() {
                    // Insertions only *raise* thresholds: queue the bound
                    // tightenings instead of touching the shared epoch on
                    // the hot path. (With pruning off — or auto below its
                    // population threshold — there is no consumer, and
                    // stale-high bounds are sound anyway, so don't pay the
                    // inserts.)
                    for (_, c) in &changes {
                        rt.stale.insert(c.query);
                    }
                }
                // Batch boundary: compact the epoch when dead postings pile
                // up. In-flight batches keep their (pre-compaction) epoch —
                // copy-on-write makes this safe even mid-pipeline.
                if rt.compact_at > 0.0 && rt.index.tombstone_ratio() >= rt.compact_at {
                    rt.epoch_pins = None;
                    let changed_lists = Arc::make_mut(&mut rt.index).compact();
                    if !changed_lists.is_empty() {
                        // Compaction moved positions AND shrank lists:
                        // realign exactly the affected lists' bounds
                        // unconditionally — even a dirty epoch must keep
                        // its per-list lengths matching the index, or the
                        // next registration's appends land at the wrong
                        // positions. (A dirty epoch is rebuilt in full at
                        // the next pruning submit regardless; this rebuild
                        // with current thresholds is simply its down
                        // payment on the changed lists.)
                        let (base, index) = (&rt.base, &rt.index);
                        let b = thawed(&mut rt.bounds);
                        for li in changed_lists {
                            b.rebuild_list(index, li, |q, w| base.normalized_of(q, w as f64));
                        }
                    }
                }
                Some((stats, changes))
            }
        }
    }

    /// Number of submitted batches not yet drained.
    pub fn in_flight(&self) -> usize {
        match &self.runtime {
            Runtime::Queries(rt) => rt.in_flight.len(),
            Runtime::Documents(rt) => rt.pending.len(),
        }
    }

    /// Drive a whole stream of pre-stamped batches through the shards,
    /// keeping up to `window` batches in flight (0 = fully synchronous,
    /// equivalent to calling [`ShardedMonitor::process_batch`] per batch).
    /// `on_batch` receives each batch's merged outcome in stream order.
    pub fn run_pipelined<I, F>(&mut self, batches: I, window: usize, mut on_batch: F)
    where
        I: IntoIterator<Item = Vec<Document>>,
        F: FnMut(Vec<EventStats>, Vec<(u32, ResultChange)>),
    {
        for batch in batches {
            self.submit_batch(batch);
            // Drain down to the window immediately after submitting, so at
            // most `window` batches are in flight while the iterator
            // produces the next one (window 0: drained before we return to
            // the iterator — synchronous).
            while self.in_flight() > window {
                let (stats, changes) = self.drain_batch().expect("in-flight batch");
                on_batch(stats, changes);
            }
        }
        while let Some((stats, changes)) = self.drain_batch() {
            on_batch(stats, changes);
        }
    }

    /// Publish one document through the unified API (a batch of one).
    pub fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        self.publish_batch(vec![(pairs, arrival)])
    }

    /// Publish a batch: allocate ids, clamp arrivals monotone, then drive
    /// the submit/drain pipeline in chunks of the configured ingest batch
    /// size (whole batch at once by default), keeping up to the configured
    /// window of chunks in flight.
    pub fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        assert!(
            self.in_flight() == 0,
            "publish cannot interleave with an open submit/drain pipeline; drain it first"
        );
        // TTL expiry fires before the batch is admitted, so an expiring
        // query never sees documents past its deadline — the exact moment
        // an oracle unregistering at this boundary would remove it.
        let expired =
            if batch.is_empty() { 0 } else { self.expire_due(batch.first().map(|(_, at)| *at)) };
        let docs: Vec<Document> =
            batch.into_iter().map(|(pairs, arrival)| self.admit(pairs, arrival)).collect();
        let mut receipt = PublishReceipt {
            doc_ids: docs.iter().map(|d| d.id).collect(),
            changes: Vec::new(),
            stats: Vec::with_capacity(docs.len()),
        };
        let fixed_chunk =
            if self.ingest_batch == 0 { docs.len().max(1) } else { self.ingest_batch };
        let window = self.ingest_window;
        // Each drain is timed and fed to the AIMD controller (when one is
        // installed): over-target drains halve the next chunk, on-target
        // drains grow it. The chunk schedule never affects the receipt —
        // chunking is result-invariant.
        let drain_into = |m: &mut Self, receipt: &mut PublishReceipt| {
            let started = std::time::Instant::now();
            let (stats, changes) = m.drain_batch().expect("in-flight batch");
            if let Some(ctl) = &mut m.adaptive {
                ctl.observe(started.elapsed().as_secs_f64() * 1e3);
            }
            receipt.stats.extend(stats);
            receipt.changes.extend(changes.into_iter().map(|(_, c)| c));
        };
        // Split the stamped batch into owned chunks without cloning any
        // document: `split_off` moves the tail, the head is submitted.
        let mut rest = docs;
        while !rest.is_empty() {
            let chunk = match &self.adaptive {
                Some(ctl) => ctl.chunk(),
                None => fixed_chunk,
            };
            let tail = rest.split_off(chunk.min(rest.len()));
            let part = std::mem::replace(&mut rest, tail);
            self.submit_batch(part);
            while self.in_flight() > window {
                drain_into(self, &mut receipt);
            }
        }
        while self.in_flight() > 0 {
            drain_into(self, &mut receipt);
        }
        self.attribute_lifecycle(&mut receipt, expired);
        receipt
    }

    /// Stamp one incoming document: next id, monotone-clamped arrival.
    fn admit(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> Document {
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        Document::new(id, pairs, arrival)
    }

    /// Current results of a query. In document mode this reads the
    /// authoritative store, which reflects **drained** batches only —
    /// quiesce an open pipeline first for an up-to-date answer (query mode
    /// orders the read after in-flight batches via the worker's FIFO).
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.specs.get(qid.index()).and_then(Option::as_ref)?;
        match &self.runtime {
            Runtime::Queries(rt) => {
                let route = rt.routes[qid.index()].expect("spec implies route");
                let (reply_tx, reply_rx) = bounded(1);
                rt.workers[route.shard as usize]
                    .tx
                    .send(Command::Results(route.local, reply_tx))
                    .expect("worker alive");
                reply_rx.recv().expect("worker reply")
            }
            Runtime::Documents(rt) => rt.base.results(qid),
        }
    }

    /// Number of live queries across all shards.
    pub fn num_queries(&self) -> usize {
        self.live
    }

    /// Lifetime work counters of every shard, shard order.
    ///
    /// The invariant checked by the equivalence tests depends on the mode:
    /// in query mode every document visits every shard exactly once, so
    /// after `n` documents every shard reports `events == n` (summed:
    /// `n × shards`); in document mode every document visits exactly *one*
    /// shard, so the per-shard counters **sum** to `n`.
    pub fn shard_cumulative(&self) -> Vec<CumulativeStats> {
        match &self.runtime {
            Runtime::Queries(rt) => rt
                .workers
                .iter()
                .map(|w| {
                    let (reply_tx, reply_rx) = bounded(1);
                    w.tx.send(Command::Cumulative(reply_tx)).expect("worker alive");
                    reply_rx.recv().expect("worker reply")
                })
                .collect(),
            Runtime::Documents(rt) => rt.worker_cum.clone(),
        }
    }

    fn shard_landmark(&self, rt: &QueryShards, shard: usize) -> Timestamp {
        let (reply_tx, reply_rx) = bounded(1);
        rt.workers[shard].tx.send(Command::Landmark(reply_tx)).expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Capture the full monitor state. Query mode writes one
    /// [`ShardSnapshot`] section per shard, each with its own landmark and
    /// resident queries (public ids); document mode — whose queries are not
    /// partitioned — writes a single section. Either capture restores onto
    /// either mode (and any shard count): [`Snapshot::restore_into`]
    /// re-registers through the public API. Must not be called with batches
    /// in flight.
    pub fn snapshot(&self) -> Snapshot {
        assert!(self.in_flight() == 0, "snapshot requires a quiesced pipeline; drain first");
        let mut sections: Vec<ShardSnapshot> = match &self.runtime {
            Runtime::Queries(rt) => (0..rt.workers.len())
                .map(|s| ShardSnapshot {
                    landmark: self.shard_landmark(rt, s),
                    queries: Vec::new(),
                })
                .collect(),
            Runtime::Documents(rt) => {
                vec![ShardSnapshot { landmark: rt.base.decay.landmark(), queries: Vec::new() }]
            }
        };
        for (i, spec) in self.specs.iter().enumerate() {
            let Some(spec) = spec else { continue };
            let qid = QueryId(i as u32);
            let section = match &self.runtime {
                Runtime::Queries(rt) => rt.routes[i].expect("spec implies route").shard as usize,
                Runtime::Documents(_) => 0,
            };
            sections[section].queries.push(snapshot_query(
                qid,
                spec,
                self.results(qid).unwrap_or_default(),
                &self.lifecycle,
                self.last_arrival,
            ));
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            lambda: self.lambda(),
            next_doc: self.next_doc,
            last_arrival: self.last_arrival,
            namespaces: self.lifecycle.names().to_vec(),
            policies: snapshot_policies(&self.lifecycle),
            shards: sections,
        }
    }

    /// The decay parameter the monitor was built with.
    pub fn lambda(&self) -> f64 {
        match &self.runtime {
            Runtime::Queries(rt) => {
                let (reply_tx, reply_rx) = bounded(1);
                rt.workers[0].tx.send(Command::Lambda(reply_tx)).expect("worker alive");
                reply_rx.recv().expect("worker reply")
            }
            Runtime::Documents(rt) => rt.base.decay.lambda(),
        }
    }

    /// Point-in-time storage counters: summed over every worker's index in
    /// query mode (each shard owns a slice of the query population), read
    /// off the shared epoch in document mode.
    pub fn storage_stats(&self) -> StorageStats {
        match &self.runtime {
            Runtime::Queries(rt) => {
                let mut total = StorageStats::default();
                for w in &rt.workers {
                    let (reply_tx, reply_rx) = bounded(1);
                    w.tx.send(Command::Storage(reply_tx)).expect("worker alive");
                    total.merge(&reply_rx.recv().expect("worker reply"));
                }
                total
            }
            Runtime::Documents(rt) => rt.index.storage_stats(),
        }
    }
}

impl MonitorBackend for ShardedMonitor {
    fn register_with(&mut self, spec: QuerySpec, opts: QueryOptions) -> QueryId {
        ShardedMonitor::register_with(self, spec, opts)
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        ShardedMonitor::unregister(self, qid)
    }

    fn intern_namespace(&mut self, name: &str) -> Namespace {
        ShardedMonitor::intern_namespace(self, name)
    }

    fn find_namespace(&self, name: &str) -> Option<Namespace> {
        self.lifecycle.find(name)
    }

    fn set_retention(&mut self, ns: Namespace, policy: RetentionPolicy) {
        ShardedMonitor::set_retention(self, ns, policy)
    }

    fn retention(&self, ns: Namespace) -> Option<RetentionPolicy> {
        self.lifecycle.policy(ns)
    }

    fn forget_namespace(&mut self, ns: Namespace) -> usize {
        ShardedMonitor::forget_namespace(self, ns)
    }

    fn namespace_of(&self, qid: QueryId) -> Option<Namespace> {
        self.lifecycle.namespace_of(qid)
    }

    fn namespace_stats(&self) -> Vec<NamespaceStats> {
        self.lifecycle.stats()
    }

    fn lifecycle_totals(&self) -> (u64, u64) {
        self.lifecycle.totals()
    }

    fn publish_request(&mut self, request: PublishRequest) -> PublishReceipt {
        ShardedMonitor::publish_batch(self, request.into_batch())
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        ShardedMonitor::results(self, qid)
    }

    fn num_queries(&self) -> usize {
        ShardedMonitor::num_queries(self)
    }

    fn shards(&self) -> usize {
        ShardedMonitor::shards(self)
    }

    fn sharding_mode(&self) -> ShardingMode {
        ShardedMonitor::mode(self)
    }

    fn lambda(&self) -> f64 {
        ShardedMonitor::lambda(self)
    }

    fn storage_stats(&self) -> StorageStats {
        ShardedMonitor::storage_stats(self)
    }

    fn snapshot(&self) -> Snapshot {
        ShardedMonitor::snapshot(self)
    }

    fn restore_landmark(&mut self, landmark: Timestamp) {
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                // FIFO per worker: the landmark lands before any later seed.
                for w in &rt.workers {
                    w.tx.send(Command::RestoreLandmark(landmark)).expect("worker alive");
                }
            }
            Runtime::Documents(rt) => {
                rt.base.decay.restore_landmark(landmark);
                rt.filter_cache = None;
                // The decay frame moved arbitrarily: frozen bound values
                // are not comparable to post-restore thresholds.
                rt.bounds_dirty = true;
                rt.stale.clear();
            }
        }
    }

    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp) {
        self.next_doc = next_doc;
        self.last_arrival = last_arrival;
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        ShardedMonitor::seed_results(self, qid, seeds)
    }

    fn restore_lifecycle(&mut self, qid: QueryId, registered_at: Timestamp, deadline: Option<f64>) {
        self.lifecycle.restore_pin(qid, registered_at, deadline);
    }
}

impl Drop for ShardedMonitor {
    fn drop(&mut self) {
        match &mut self.runtime {
            Runtime::Queries(rt) => {
                for w in &rt.workers {
                    let _ = w.tx.send(Command::Shutdown);
                }
                for w in &mut rt.workers {
                    if let Some(handle) = w.handle.take() {
                        let _ = handle.join();
                    }
                }
            }
            Runtime::Documents(rt) => {
                for w in &rt.workers {
                    let _ = w.tx.send(DocCommand::Shutdown);
                }
                for w in &mut rt.workers {
                    if let Some(handle) = w.handle.take() {
                        let _ = handle.join();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use crate::mrio::MrioSeg;
    use crate::naive::Naive;
    use ctk_common::TermId;

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn sharded_matches_single_engine() {
        let mut sharded = ShardedMonitor::new(3, || MrioSeg::new(0.001));
        let mut single = Naive::new(0.001);

        let specs: Vec<QuerySpec> =
            (0..30).map(|i| spec(&[i % 7, 7 + i % 4], 2 + (i % 3) as usize)).collect();
        let sharded_ids: Vec<QueryId> = specs.iter().map(|s| sharded.register(s.clone())).collect();
        let single_ids: Vec<QueryId> = specs.iter().map(|s| single.register(s.clone())).collect();
        // Public ids are one monotone space, identical to the single engine's.
        assert_eq!(sharded_ids, single_ids);

        for i in 0..60u64 {
            let d = doc(i, &[((i % 7) as u32, 1.0), ((7 + i % 4) as u32, 0.6)], i as f64);
            sharded.process(d.clone());
            single.process(&d);
        }
        for qid in &sharded_ids {
            assert_eq!(sharded.results(*qid), single.results(*qid));
        }
    }

    #[test]
    fn round_robin_distributes_queries() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let a = m.register(spec(&[1], 1));
        let b = m.register(spec(&[1], 1));
        let c = m.register(spec(&[1], 1));
        assert_eq!((a, b, c), (QueryId(0), QueryId(1), QueryId(2)));
        assert_eq!(m.shards(), 2);
        assert_eq!(m.mode(), ShardingMode::Queries);
        assert_eq!(m.num_queries(), 3);
        // Placement is observable through the snapshot's sections.
        let snap = m.snapshot();
        let per_shard: Vec<Vec<u32>> =
            snap.shards.iter().map(|s| s.queries.iter().map(|q| q.qid).collect()).collect();
        assert_eq!(per_shard, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn unregister_and_changes_reporting() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        // k = 2 so the second document still has a free slot to enter.
        let a = m.register(spec(&[1], 2));
        let b = m.register(spec(&[1], 2));
        let (_, changes) = m.process(doc(0, &[(1, 1.0)], 0.0));
        assert_eq!(changes.len(), 2, "both shards report an insertion");
        // Changes speak public ids, whatever shard they came from.
        let mut qids: Vec<QueryId> = changes.iter().map(|(_, c)| c.query).collect();
        qids.sort();
        assert_eq!(qids, vec![a, b]);
        assert!(m.unregister(a));
        assert!(!m.unregister(a), "double unregister is a no-op");
        let (_, changes) = m.process(doc(1, &[(1, 2.0)], 1.0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1.query, b);
        assert!(m.results(b).is_some());
        assert!(m.results(a).is_none());
        assert_eq!(m.num_queries(), 1);
    }

    #[test]
    fn batch_path_matches_per_doc_path() {
        let mk = || {
            let mut m = ShardedMonitor::new(3, || MrioSeg::new(0.001));
            let ids: Vec<QueryId> = (0..20)
                .map(|i| m.register(spec(&[i % 5, 5 + i % 3], 1 + (i % 2) as usize)))
                .collect();
            (m, ids)
        };
        let docs: Vec<Document> = (0..50u64)
            .map(|i| doc(i, &[((i % 5) as u32, 1.0), ((5 + i % 3) as u32, 0.4)], i as f64))
            .collect();

        let (mut per_doc, ids_a) = mk();
        let mut stats_a = Vec::new();
        let mut changes_a = Vec::new();
        for d in &docs {
            let (ev, ch) = per_doc.process(d.clone());
            stats_a.push(ev);
            changes_a.extend(ch);
        }

        let (mut batched, ids_b) = mk();
        let mut stats_b = Vec::new();
        let mut changes_b = Vec::new();
        for chunk in docs.chunks(16) {
            let (evs, ch) = batched.process_batch(chunk.to_vec());
            stats_b.extend(evs);
            changes_b.extend(ch);
        }

        assert_eq!(stats_a, stats_b, "merged per-document stats must not depend on batching");
        // Changes are reported in unspecified order (per-doc groups by
        // document, the batch path groups by shard): compare as multisets.
        let key = |(shard, c): &(u32, ResultChange)| {
            (*shard, c.query.0, c.inserted.doc.0, c.inserted.score)
        };
        changes_a.sort_by_key(key);
        changes_b.sort_by_key(key);
        assert_eq!(changes_a, changes_b);
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(per_doc.results(*a), batched.results(*b));
        }
        // Every shard saw every document exactly once.
        for cum in batched.shard_cumulative() {
            assert_eq!(cum.events, docs.len() as u64);
        }
    }

    #[test]
    fn pipelined_ingestion_matches_synchronous() {
        let mk = || {
            let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
            let ids: Vec<QueryId> = (0..10).map(|i| m.register(spec(&[i % 4], 2))).collect();
            (m, ids)
        };
        let batches: Vec<Vec<Document>> = (0..8u64)
            .map(|b| {
                (0..16u64)
                    .map(|i| {
                        let id = b * 16 + i;
                        doc(id, &[((id % 4) as u32, 1.0 + (id % 3) as f32)], id as f64)
                    })
                    .collect()
            })
            .collect();

        let (mut sync_m, ids_a) = mk();
        let mut sync_out = Vec::new();
        for b in &batches {
            let (evs, ch) = sync_m.process_batch(b.clone());
            sync_out.push((evs, ch));
        }

        let (mut pipe_m, ids_b) = mk();
        let mut pipe_out = Vec::new();
        pipe_m.run_pipelined(batches.clone(), 2, |evs, ch| pipe_out.push((evs, ch)));
        assert_eq!(pipe_m.in_flight(), 0);

        assert_eq!(sync_out.len(), pipe_out.len());
        for ((ea, ca), (eb, cb)) in sync_out.iter().zip(&pipe_out) {
            assert_eq!(ea, eb);
            assert_eq!(ca, cb);
        }
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(sync_m.results(*a), pipe_m.results(*b));
        }
    }

    #[test]
    fn publish_path_matches_single_monitor() {
        // The same publish sequence through a Monitor and a ShardedMonitor
        // (including a chunked, pipelined configuration) yields identical
        // receipts up to change order, and identical results.
        let specs: Vec<QuerySpec> = (0..12).map(|i| spec(&[i % 4, 4 + i % 3], 2)).collect();
        let mut single = Monitor::new(Naive::new(0.01));
        let mut sharded = ShardedMonitor::new(3, || Naive::new(0.01));
        sharded.set_ingest_chunking(4, 2);
        for s in &specs {
            let a = single.register(s.clone());
            let b = ShardedMonitor::register(&mut sharded, s.clone());
            assert_eq!(a, b);
        }

        let batch: Vec<(Vec<(TermId, f32)>, Timestamp)> = (0..30u32)
            .map(|i| (vec![(TermId(i % 4), 1.0), (TermId(4 + i % 3), 0.7)], i as f64))
            .collect();
        let ra = single.publish_batch(batch.clone());
        let rb = sharded.publish_batch(batch);

        assert_eq!(ra.doc_ids, rb.doc_ids);
        // Index-traversal counters differ by construction (each shard owns
        // its own lists), but insertions are insertions wherever the query
        // lives: per-document update counts must agree exactly.
        let upd = |r: &PublishReceipt| r.stats.iter().map(|e| e.updates).collect::<Vec<u64>>();
        assert_eq!(upd(&ra), upd(&rb), "insertions per document match the single engine");
        let sort = |mut v: Vec<ResultChange>| {
            v.sort_by_key(|c| (c.query, c.inserted.doc));
            v
        };
        assert_eq!(sort(ra.changes), sort(rb.changes));
        for i in 0..specs.len() as u32 {
            assert_eq!(single.results(QueryId(i)), sharded.results(QueryId(i)));
        }

        // And single publishes keep allocating from the same id space.
        let r1 = single.publish(vec![(TermId(0), 1.0)], 31.0);
        let r2 = sharded.publish(vec![(TermId(0), 1.0)], 31.0);
        assert_eq!(r1.doc_id(), DocId(30));
        assert_eq!(r1.doc_ids, r2.doc_ids);
    }

    #[test]
    fn snapshot_after_prestamped_ingestion_captures_the_stream_position() {
        // `process`/`run_pipelined` take pre-stamped documents and bypass
        // `admit`; the snapshot must still record where the stream got to,
        // or a restore would re-allocate ids colliding with the seeded
        // result sets.
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let q = m.register(spec(&[1, 2], 3));
        for i in 0..5u64 {
            // Single-term documents: cosine 1/√2 against the two-term query.
            m.process(doc(i, &[(1, 1.0)], i as f64));
        }
        let snap = m.snapshot();
        assert_eq!(snap.next_doc, 5);
        assert_eq!(snap.last_arrival, 4.0);

        let mut restored = ShardedMonitor::new(3, || MrioSeg::new(0.0));
        let mapping = snap.restore_into(&mut restored);
        // A perfect match (cosine 1) published after the restore must beat
        // the seeded history and carry the next id.
        let receipt = restored.publish(vec![(TermId(1), 1.0), (TermId(2), 1.0)], 10.0);
        assert_eq!(receipt.doc_id(), DocId(5), "ids continue past the capture");
        assert!(restored.results(mapping[&q]).unwrap().iter().any(|sd| sd.doc == DocId(5)));
    }

    #[test]
    fn drain_on_empty_pipeline_is_none() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        assert!(m.drain_batch().is_none());
        assert_eq!(m.in_flight(), 0);
    }

    // --- document-parallel mode ---

    /// Drive the same registration/stream sequence through a doc-parallel
    /// monitor and a single Naive engine; everything must be bit-identical.
    fn doc_mode_against_naive(shards: usize, lambda: f64, batch: usize, window: usize) {
        let mut sharded = ShardedMonitor::new_doc_parallel(shards, lambda);
        let mut single = Naive::new(lambda);
        let ids: Vec<QueryId> = (0..24)
            .map(|i| {
                let s = spec(&[i % 6, 6 + i % 5], 1 + (i % 3) as usize);
                let qid = sharded.register(s.clone());
                assert_eq!(qid, single.register(s), "one monotone public id space");
                qid
            })
            .collect();

        let docs: Vec<Document> = (0..80u64)
            .map(|i| doc(i, &[((i % 6) as u32, 1.0), ((6 + i % 5) as u32, 0.5)], i as f64 * 3.0))
            .collect();
        let mut single_stats = Vec::new();
        let mut single_changes = Vec::new();
        for d in &docs {
            single_stats.push(single.process(d));
            single_changes.extend_from_slice(single.last_changes());
        }

        let mut sharded_stats = Vec::new();
        let mut sharded_changes = Vec::new();
        sharded.run_pipelined(docs.chunks(batch).map(<[_]>::to_vec), window, |evs, ch| {
            sharded_stats.extend(evs);
            sharded_changes.extend(ch.into_iter().map(|(_, c)| c));
        });

        // Bit-identical per-document work counters: the doc-mode walk *is*
        // the oracle's walk, parallelized (updates included — the filter
        // only drops candidates the merge would reject anyway).
        assert_eq!(single_stats, sharded_stats);
        // Changes come out in stream order in both cases.
        assert_eq!(single_changes, sharded_changes);
        for qid in &ids {
            assert_eq!(sharded.results(*qid), single.results(*qid), "query {qid}");
        }
        // Each document visits exactly one shard: per-shard events sum to n.
        let per_shard = sharded.shard_cumulative();
        assert_eq!(per_shard.iter().map(|c| c.events).sum::<u64>(), docs.len() as u64);
    }

    #[test]
    fn doc_mode_matches_naive_synchronous() {
        doc_mode_against_naive(4, 0.001, 16, 0);
    }

    #[test]
    fn doc_mode_matches_naive_pipelined() {
        doc_mode_against_naive(3, 0.001, 8, 2);
    }

    #[test]
    fn doc_mode_matches_naive_across_renormalization() {
        // λ = 0.5 over arrivals up to ~240 crosses the renorm headroom (60)
        // several times: the filter must disable itself on the crossing
        // batches and the merge must renormalize exactly like the oracle.
        doc_mode_against_naive(2, 0.5, 8, 1);
    }

    #[test]
    fn doc_mode_single_shard_still_pipelines() {
        doc_mode_against_naive(1, 0.01, 4, 2);
    }

    #[test]
    fn doc_mode_unregister_and_results() {
        let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
        assert_eq!(m.mode(), ShardingMode::Documents);
        let a = m.register(spec(&[1], 2));
        let b = m.register(spec(&[1], 2));
        let (ev, changes) = m.process(doc(0, &[(1, 1.0)], 0.0));
        assert_eq!(ev.updates, 2, "one insertion per query");
        assert_eq!(changes.len(), 2);
        assert!(m.unregister(a));
        assert!(!m.unregister(a), "double unregister is a no-op");
        let (_, changes) = m.process(doc(1, &[(1, 2.0)], 1.0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1.query, b);
        assert!(m.results(b).is_some());
        assert!(m.results(a).is_none());
        assert_eq!(m.num_queries(), 1);
    }

    #[test]
    fn doc_mode_threshold_filter_prunes_without_changing_results() {
        // A full result set with a high threshold: weak documents must be
        // filtered worker-side (no update), strong ones must still land.
        let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
        let q = m.register(spec(&[1, 2], 1));
        m.process(doc(0, &[(1, 1.0), (2, 1.0)], 0.0)); // cosine 1.0, fills k
        let (_, changes) = m.process(doc(1, &[(1, 1.0), (9, 3.0)], 1.0)); // weak
        assert!(changes.is_empty());
        let (_, changes) = m.process(doc(2, &[(1, 1.0), (2, 1.0)], 2.0)); // tie
                                                                          // Equal score, larger doc id: the incumbent stays.
        assert!(changes.is_empty());
        assert_eq!(m.results(q).unwrap()[0].doc, DocId(0));
    }

    #[test]
    fn doc_mode_snapshot_writes_one_section_and_restores_onto_query_mode() {
        let mut m = ShardedMonitor::new_doc_parallel(3, 0.001);
        let ids: Vec<QueryId> = (0..9).map(|i| m.register(spec(&[i % 4], 2))).collect();
        for i in 0..20u64 {
            m.process(doc(i, &[((i % 4) as u32, 1.0)], i as f64));
        }
        let snap = m.snapshot();
        assert_eq!(snap.shards.len(), 1, "doc mode does not partition queries");
        assert_eq!(snap.num_queries(), 9);

        // Doc-parallel capture → query-sharded restore...
        let mut onto_query = ShardedMonitor::new(2, || MrioSeg::new(0.001));
        let mapping = snap.restore_into(&mut onto_query);
        for qid in &ids {
            assert_eq!(onto_query.results(mapping[qid]), m.results(*qid));
        }
        // ...and a query-sharded capture restores onto doc mode.
        let back = onto_query.snapshot();
        assert_eq!(back.shards.len(), 2);
        let mut onto_doc = ShardedMonitor::new_doc_parallel(4, 0.001);
        let mapping2 = back.restore_into(&mut onto_doc);
        for qid in &ids {
            assert_eq!(onto_doc.results(mapping2[&mapping[qid]]), m.results(*qid));
        }
    }

    #[test]
    fn doc_mode_compaction_keeps_results_and_shrinks_the_epoch() {
        let mk = |ratio: f64| {
            let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
            m.set_compaction_threshold(ratio);
            let ids: Vec<QueryId> =
                (0..30).map(|i| m.register(spec(&[i % 5, 5 + i % 3], 2))).collect();
            (m, ids)
        };
        let (mut compacting, ids_a) = mk(0.2);
        let (mut lazy, ids_b) = mk(0.0);
        for round in 0..3u64 {
            for q in (round * 8)..(round * 8 + 5) {
                assert!(compacting.unregister(QueryId(q as u32)));
                assert!(lazy.unregister(QueryId(q as u32)));
            }
            let batch: Vec<Document> = (0..15u64)
                .map(|i| {
                    let id = round * 15 + i;
                    doc(id, &[((id % 5) as u32, 1.0), ((5 + id % 3) as u32, 0.5)], id as f64)
                })
                .collect();
            let (_, ca) = compacting.process_batch(batch.clone());
            let (_, cb) = lazy.process_batch(batch);
            let strip = |v: Vec<(u32, ResultChange)>| -> Vec<ResultChange> {
                v.into_iter().map(|(_, c)| c).collect()
            };
            assert_eq!(strip(ca), strip(cb), "round {round}");
        }
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(compacting.results(*a), lazy.results(*b));
        }
    }

    #[test]
    fn doc_mode_batches_smaller_than_the_shard_count() {
        let mut m = ShardedMonitor::new_doc_parallel(4, 0.0);
        let q = m.register(spec(&[1], 3));
        // 2-document batches on 4 shards: only some workers get slices.
        let (stats, _) = m.process_batch(vec![doc(0, &[(1, 1.0)], 0.0), doc(1, &[(1, 2.0)], 1.0)]);
        assert_eq!(stats.len(), 2);
        let (stats, _) = m.process_batch(vec![doc(2, &[(1, 3.0)], 2.0)]);
        assert_eq!(stats.len(), 1);
        assert_eq!(m.results(q).unwrap().len(), 3);
        let per_shard = m.shard_cumulative();
        assert_eq!(per_shard.iter().map(|c| c.events).sum::<u64>(), 3);
    }

    // --- document-mode walk pruning ---

    /// Pruned doc mode vs the oracle: results, changes and per-document
    /// insertion counts bit-identical; the walk counters may only *shift*
    /// work from `postings_accessed` into `postings_skipped`, never lose
    /// any.
    fn doc_mode_pruned_against_naive(shards: usize, lambda: f64, batch: usize, window: usize) {
        let mut sharded = ShardedMonitor::new_doc_parallel(shards, lambda);
        sharded.set_doc_pruning(DocPruning::On);
        let mut single = Naive::new(lambda);
        let ids: Vec<QueryId> = (0..200)
            .map(|i| {
                let s = spec(&[i % 4, 4 + i % 3], 1 + (i % 2) as usize);
                let qid = sharded.register(s.clone());
                assert_eq!(qid, single.register(s));
                qid
            })
            .collect();

        let docs: Vec<Document> = (0..120u64)
            .map(|i| doc(i, &[((i % 4) as u32, 1.0), ((4 + i % 3) as u32, 0.5)], i as f64 * 2.0))
            .collect();
        let mut single_stats = Vec::new();
        let mut single_changes = Vec::new();
        for d in &docs {
            single_stats.push(single.process(d));
            single_changes.extend_from_slice(single.last_changes());
        }
        let mut sharded_stats = Vec::new();
        let mut sharded_changes = Vec::new();
        sharded.run_pipelined(docs.chunks(batch).map(<[_]>::to_vec), window, |evs, ch| {
            sharded_stats.extend(evs);
            sharded_changes.extend(ch.into_iter().map(|(_, c)| c));
        });

        assert_eq!(single_changes, sharded_changes, "changes are bit-identical under pruning");
        for qid in &ids {
            assert_eq!(sharded.results(*qid), single.results(*qid), "query {qid}");
        }
        assert_eq!(single_stats.len(), sharded_stats.len());
        for (i, (a, b)) in single_stats.iter().zip(&sharded_stats).enumerate() {
            assert_eq!(a.updates, b.updates, "doc {i}: insertions are walk-independent");
            assert_eq!(a.matched_lists, b.matched_lists, "doc {i}");
            assert!(b.postings_accessed <= a.postings_accessed, "doc {i}: pruning never adds work");
            assert!(
                b.postings_accessed + b.postings_skipped >= a.postings_accessed,
                "doc {i}: skipped zones must account for the oracle's extra reads"
            );
            assert!(b.full_evaluations <= a.full_evaluations, "doc {i}");
        }
    }

    #[test]
    fn doc_mode_pruned_matches_naive_synchronous() {
        doc_mode_pruned_against_naive(3, 0.001, 16, 0);
    }

    #[test]
    fn doc_mode_pruned_matches_naive_pipelined() {
        doc_mode_pruned_against_naive(2, 0.001, 8, 2);
    }

    #[test]
    fn doc_mode_pruned_matches_naive_across_renormalization() {
        // λ = 0.5 over arrivals up to ~240 crosses the renorm headroom (60)
        // several times: crossing batches must fall back to the exhaustive
        // walk and the first pruning batch after each crossing must rebuild
        // the bounds in the new frame.
        doc_mode_pruned_against_naive(2, 0.5, 8, 1);
    }

    #[test]
    fn doc_mode_pruning_skips_work_and_keeps_results() {
        let n = 300usize;
        let mk = |pruning: DocPruning| {
            let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
            m.set_doc_pruning(pruning);
            for _ in 0..n {
                m.register(spec(&[1, 2], 1));
            }
            m
        };
        let mut pruned = mk(DocPruning::On);
        let mut exhaustive = mk(DocPruning::Off);
        assert_eq!(pruned.doc_pruning(), Some(DocPruning::On));

        // Fill every top-1 with a perfect match (all queries unfilled at
        // submit: every bound is +inf, nothing may be skipped yet)...
        let fill = vec![doc(0, &[(1, 1.0), (2, 1.0)], 0.0)];
        pruned.process_batch(fill.clone());
        exhaustive.process_batch(fill);
        // ...then stream weak documents: every zone is now refutable.
        for b in 0..4u64 {
            let batch: Vec<Document> = (0..8)
                .map(|i| doc(1 + b * 8 + i, &[(1, 1.0), (9, 3.0)], (1 + b * 8 + i) as f64))
                .collect();
            let (sa, ca) = pruned.process_batch(batch.clone());
            let (sb, cb) = exhaustive.process_batch(batch);
            assert_eq!(ca.len(), 0, "no weak document may change a result");
            assert_eq!(cb.len(), 0);
            assert_eq!(
                sa.iter().map(|e| e.updates).collect::<Vec<_>>(),
                sb.iter().map(|e| e.updates).collect::<Vec<_>>()
            );
        }
        for q in 0..n as u32 {
            assert_eq!(pruned.results(QueryId(q)), exhaustive.results(QueryId(q)));
        }
        let skipped: u64 = pruned.shard_cumulative().iter().map(|c| c.zones_skipped).sum();
        let pruned_reads: u64 = pruned.shard_cumulative().iter().map(|c| c.postings_accessed).sum();
        let full_reads: u64 =
            exhaustive.shard_cumulative().iter().map(|c| c.postings_accessed).sum();
        assert!(skipped > 0, "the bounded walk must actually skip zones");
        assert!(pruned_reads < full_reads, "skipping must save posting reads");
        let none: u64 = exhaustive.shard_cumulative().iter().map(|c| c.zones_skipped).sum();
        assert_eq!(none, 0, "the exhaustive walk never skips");
    }

    #[test]
    fn doc_mode_auto_pruning_engages_at_the_population_threshold() {
        let run = |queries: usize| -> u64 {
            let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
            assert_eq!(m.doc_pruning(), Some(DocPruning::Auto), "auto is the default");
            for i in 0..queries {
                m.register(spec(&[(i % 8) as u32, 8 + (i % 4) as u32], 1));
            }
            m.process_batch(vec![doc(0, &[(1, 1.0), (9, 1.0)], 0.0)]);
            m.process_batch(vec![doc(1, &[(1, 1.0), (9, 1.0)], 1.0)]);
            m.shard_cumulative().iter().map(|c| c.bound_computations).sum()
        };
        assert_eq!(run(64), 0, "small populations keep the exhaustive walk");
        assert!(run(DOC_PRUNING_AUTO_MIN_QUERIES + 8) > 0, "large populations probe the bounds");
    }

    #[test]
    fn doc_mode_pruned_compaction_stays_exact() {
        let mk = |pruning: DocPruning, ratio: f64| {
            let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
            m.set_doc_pruning(pruning);
            m.set_compaction_threshold(ratio);
            let ids: Vec<QueryId> =
                (0..60).map(|i| m.register(spec(&[i % 5, 5 + i % 3], 1))).collect();
            (m, ids)
        };
        // Pruned + compacting vs exhaustive + lazy: compaction reshuffles
        // positions, so the bounds of the changed lists must be realigned
        // or skips would fire against the wrong queries.
        let (mut pruned, ids_a) = mk(DocPruning::On, 0.15);
        let (mut lazy, ids_b) = mk(DocPruning::Off, 0.0);
        for round in 0..3u64 {
            for q in (round * 12)..(round * 12 + 8) {
                assert!(pruned.unregister(QueryId(q as u32)));
                assert!(lazy.unregister(QueryId(q as u32)));
            }
            let batch: Vec<Document> = (0..20u64)
                .map(|i| {
                    let id = round * 20 + i;
                    doc(id, &[((id % 5) as u32, 1.0), ((5 + id % 3) as u32, 0.5)], id as f64)
                })
                .collect();
            let (_, ca) = pruned.process_batch(batch.clone());
            let (_, cb) = lazy.process_batch(batch);
            let strip = |v: Vec<(u32, ResultChange)>| -> Vec<ResultChange> {
                v.into_iter().map(|(_, c)| c).collect()
            };
            assert_eq!(strip(ca), strip(cb), "round {round}");
        }
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(pruned.results(*a), lazy.results(*b));
        }
    }

    #[test]
    fn doc_mode_register_after_dirty_bounds_compaction_stays_aligned() {
        // A renormalization and a compaction landing in the *same* drain:
        // the renorm marks the bounds dirty, but the compaction must still
        // shrink the affected lists' bounds — otherwise the next
        // registration appends at post-compaction positions into
        // pre-compaction-length structures and misaligns every later skip
        // decision (debug builds catch it via the alignment assertion).
        let mut m = ShardedMonitor::new_doc_parallel(2, 0.5);
        m.set_doc_pruning(DocPruning::On);
        m.set_compaction_threshold(0.1);
        for i in 0..40 {
            m.register(spec(&[1, 2 + i % 3], 1));
        }
        m.process_batch(vec![doc(0, &[(1, 1.0)], 0.0)]);
        // Pile up tombstones, then cross the renorm headroom (λ·Δτ > 60)
        // with one batch: its drain renormalizes AND compacts.
        for q in 0..20u32 {
            assert!(m.unregister(QueryId(q)));
        }
        m.process_batch(vec![doc(1, &[(1, 1.0)], 130.0)]);

        let q = m.register(spec(&[1], 1));
        let (_, changes) = m.process(doc(2, &[(1, 1.0)], 131.0));
        assert!(
            changes.iter().any(|(_, c)| c.query == q),
            "the fresh (unfilled) query must receive the matching document"
        );
    }

    #[test]
    #[should_panic(expected = "quiesced pipeline")]
    fn doc_mode_register_rejects_open_pipeline() {
        let mut m = ShardedMonitor::new_doc_parallel(2, 0.0);
        m.register(spec(&[1], 1));
        m.submit_batch(vec![doc(0, &[(1, 1.0)], 0.0)]);
        m.register(spec(&[2], 1)); // must panic: batch in flight
    }

    // --- adaptive batching ---

    #[test]
    fn adaptive_controller_is_aimd_within_bounds() {
        let cfg = AdaptiveConfig::default().chunk_bounds(4, 64).increase_step(10);
        let mut ctl = AdaptiveBatcher::new(cfg);
        assert_eq!(ctl.chunk(), 4, "starts at the lower clamp");
        // Fast drains: additive growth, clamped at the top.
        for _ in 0..10 {
            ctl.observe(0.0);
        }
        assert_eq!(ctl.chunk(), 64);
        // One slow drain: multiplicative halving...
        ctl.observe(cfg.target_drain_ms + 1.0);
        assert_eq!(ctl.chunk(), 32);
        // ...repeated, clamped at the bottom.
        for _ in 0..10 {
            ctl.observe(cfg.target_drain_ms + 1.0);
        }
        assert_eq!(ctl.chunk(), 4);
    }

    #[test]
    fn adaptive_publish_is_bit_identical_to_fixed_in_both_modes() {
        // A zero-millisecond target forces a halve on every drain and an
        // unreachable target forces growth on every drain: the two extreme
        // chunk schedules (and a fixed one) must produce identical receipts.
        let batch: Vec<(Vec<(TermId, f32)>, Timestamp)> = (0..60u32)
            .map(|i| (vec![(TermId(i % 4), 1.0), (TermId(4 + i % 3), 0.7)], i as f64))
            .collect();
        for mode in [ShardingMode::Queries, ShardingMode::Documents] {
            let mk = || match mode {
                ShardingMode::Queries => ShardedMonitor::new(3, || Naive::new(0.01)),
                ShardingMode::Documents => ShardedMonitor::new_doc_parallel(3, 0.01),
            };
            let run = |m: &mut ShardedMonitor| {
                for i in 0..12u32 {
                    m.register(spec(&[i % 4, 4 + i % 3], 2));
                }
                let mut r = m.publish_batch(batch.clone());
                r.changes.sort_by_key(|c| (c.query, c.inserted.doc));
                r
            };

            let mut fixed = mk();
            fixed.set_ingest_chunking(7, 1);
            let want = run(&mut fixed);

            for target in [0.0, f64::INFINITY] {
                let mut adaptive = mk();
                adaptive.set_ingest_chunking(7, 1);
                adaptive.set_adaptive_batching(
                    AdaptiveConfig::default().target_drain_ms(target).chunk_bounds(2, 16),
                );
                let got = run(&mut adaptive);
                assert_eq!(got, want, "mode {mode:?}, target {target}");
                let chunk = adaptive.adaptive_chunk().unwrap();
                if target == 0.0 {
                    assert_eq!(chunk, 2, "every drain over a 0ms target shrinks to the clamp");
                } else {
                    assert_eq!(
                        chunk, 16,
                        "every drain under an infinite target grows to the clamp"
                    );
                }
                for q in 0..12u32 {
                    assert_eq!(adaptive.results(QueryId(q)), fixed.results(QueryId(q)));
                }
            }
        }
    }
}
