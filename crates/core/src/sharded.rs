//! Sharded parallel monitor with batched, pipelined ingestion.
//!
//! The paper's goal is "large numbers of users and high stream rates"; a
//! single engine is single-threaded. Queries partition cleanly (each result
//! set depends only on its own query), so the monitor shards the query
//! population across worker threads and broadcasts stream documents to all
//! shards.
//!
//! The front-end speaks the same [`MonitorBackend`] contract as the
//! single-engine [`crate::Monitor`]: applications register with plain
//! [`QueryId`]s and never see the shard routing. Internally each public id
//! maps to a `(shard, local id)` route; result changes coming back from a
//! shard are translated to public ids during the merge, so every receipt,
//! change and snapshot is expressed in one id space.
//!
//! Ingestion is **batch-first**: the unit of work sent to a shard is an
//! `Arc<[Document]>` batch, not a single document. One channel send, one
//! reply and one cross-shard merge are paid per *batch*, so the per-document
//! coordination cost shrinks linearly with the batch size — the
//! one-doc-one-barrier behaviour of the original design is now just the
//! degenerate `process` wrapper with a batch of one.
//!
//! Replies flow over **persistent per-worker channels** created once at
//! spawn (the old design allocated a fresh rendezvous channel per call).
//! Because each worker answers batches in submission order, the monitor can
//! keep a window of batches **in flight**: [`ShardedMonitor::submit_batch`]
//! hands shard `i` batch `n+1` while the merger is still draining batch `n`
//! ([`ShardedMonitor::drain_batch`]), hiding merge latency behind shard
//! compute. [`ShardedMonitor::run_pipelined`] wraps the submit/drain dance
//! for a whole stream of pre-stamped documents; the application-facing
//! [`ShardedMonitor::publish_batch`] drives the same machinery behind the
//! unified API, chunking by the configured ingest batch size.
//!
//! Communication uses `crossbeam` channels; each worker owns its engine
//! outright (no shared mutable state, no locks on the hot path).

use crate::backend::{MonitorBackend, PublishReceipt};
use crate::monitor::{ShardSnapshot, Snapshot, SnapshotQuery, SNAPSHOT_VERSION};
use crate::stats::{CumulativeStats, EventStats};
use crate::traits::{ContinuousTopK, ResultChange};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ctk_common::{DocId, Document, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Internal routing of one public query id.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: u32,
    local: QueryId,
}

enum Command {
    Register(QuerySpec, Sender<QueryId>),
    Unregister(QueryId, Sender<bool>),
    Seed(QueryId, Vec<ScoredDoc>),
    /// Score a batch; the reply travels over the worker's persistent
    /// reply channel, in submission order.
    Process(Arc<[Document]>),
    Results(QueryId, Sender<Option<Vec<ScoredDoc>>>),
    Cumulative(Sender<CumulativeStats>),
    Lambda(Sender<f64>),
    Landmark(Sender<Timestamp>),
    RestoreLandmark(Timestamp),
    /// Tombstone ratio beyond which the worker compacts its index after
    /// answering a batch (0 disables).
    SetCompaction(f64),
    Shutdown,
}

/// Merged outcome of one batch: per-document work counters (summed across
/// shards) and every result change as `(shard, change)` pairs — changes
/// carry **public** query ids; the shard tag is provenance only.
pub type BatchOutcome = (Vec<EventStats>, Vec<(u32, ResultChange)>);

/// One shard's answer to a [`Command::Process`] batch.
struct BatchReply {
    /// Per-document work counters, aligned with the batch.
    stats: Vec<EventStats>,
    /// Every result change of the batch, in document order, in the worker's
    /// *local* id space (translated by the merger).
    changes: Vec<ResultChange>,
}

struct Worker {
    tx: Sender<Command>,
    reply_rx: Receiver<BatchReply>,
    handle: Option<JoinHandle<()>>,
}

/// A monitor that fans stream events out to `S` single-threaded engines.
pub struct ShardedMonitor {
    workers: Vec<Worker>,
    next_shard: usize,
    /// Lengths of submitted-but-undrained batches, oldest first.
    in_flight: VecDeque<usize>,
    /// Registered specs by public query id (`None` after unregistration).
    specs: Vec<Option<QuerySpec>>,
    /// Shard routes by public query id.
    routes: Vec<Option<Route>>,
    /// Per shard: local id index → public id (append-only; locals are
    /// allocated monotonically by each worker's engine).
    global_of_local: Vec<Vec<QueryId>>,
    live: usize,
    next_doc: u64,
    last_arrival: Timestamp,
    /// `publish_batch` chunk size (0 = whole publish as one batch).
    ingest_batch: usize,
    /// Batches kept in flight by `publish_batch` while chunking.
    ingest_window: usize,
}

impl ShardedMonitor {
    /// Spawn `shards` workers, each owning an engine built by `make_engine`
    /// (e.g. `|| MrioSeg::new(lambda)`).
    pub fn new<E, F>(shards: usize, make_engine: F) -> Self
    where
        E: ContinuousTopK + Send + 'static,
        F: Fn() -> E,
    {
        assert!(shards >= 1);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<Command>();
            // Unbounded so a worker never blocks publishing a reply; the
            // monitor bounds the number of outstanding batches itself via
            // the pipelining window.
            let (reply_tx, reply_rx) = unbounded::<BatchReply>();
            let mut engine = make_engine();
            let handle = std::thread::spawn(move || {
                let mut compact_at = 0.0f64;
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Register(spec, reply) => {
                            let _ = reply.send(engine.register(spec));
                        }
                        Command::Unregister(qid, reply) => {
                            let _ = reply.send(engine.unregister(qid));
                        }
                        Command::Seed(qid, seeds) => {
                            engine.seed_results(qid, &seeds);
                        }
                        Command::Process(docs) => {
                            let mut changes = Vec::new();
                            let stats = engine.process_batch_into(&docs, &mut changes);
                            if reply_tx.send(BatchReply { stats, changes }).is_err() {
                                break; // monitor gone
                            }
                            // Batch boundary: no event is mid-flight on this
                            // shard, so the index may reorganize.
                            if compact_at > 0.0 && engine.tombstone_ratio() >= compact_at {
                                engine.compact_index();
                            }
                        }
                        Command::Results(qid, reply) => {
                            let _ = reply.send(engine.results(qid));
                        }
                        Command::Cumulative(reply) => {
                            let _ = reply.send(*engine.cumulative());
                        }
                        Command::Lambda(reply) => {
                            let _ = reply.send(engine.lambda());
                        }
                        Command::Landmark(reply) => {
                            let _ = reply.send(engine.landmark());
                        }
                        Command::RestoreLandmark(landmark) => {
                            engine.restore_landmark(landmark);
                        }
                        Command::SetCompaction(ratio) => {
                            compact_at = ratio.max(0.0);
                        }
                        Command::Shutdown => break,
                    }
                }
            });
            workers.push(Worker { tx, reply_rx, handle: Some(handle) });
        }
        ShardedMonitor {
            global_of_local: vec![Vec::new(); workers.len()],
            workers,
            next_shard: 0,
            in_flight: VecDeque::new(),
            specs: Vec::new(),
            routes: Vec::new(),
            live: 0,
            next_doc: 0,
            last_arrival: 0.0,
            ingest_batch: 0,
            ingest_window: 1,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Enable tombstone compaction on every shard: after answering a batch
    /// with `tombstone_ratio() >= ratio`, a worker compacts its index and
    /// rebuilds the affected bound structures. `<= 0.0` disables.
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        for w in &self.workers {
            w.tx.send(Command::SetCompaction(ratio)).expect("worker alive");
        }
    }

    /// Configure how [`ShardedMonitor::publish_batch`] drives the pipeline:
    /// the publish is split into chunks of `batch_size` documents (0 = one
    /// chunk) with up to `window` chunks in flight (0 = fully synchronous).
    pub fn set_ingest_chunking(&mut self, batch_size: usize, window: usize) {
        self.ingest_batch = batch_size;
        self.ingest_window = window;
    }

    /// Register a query on the least-recently-used shard (round robin);
    /// returns its public id.
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.workers.len();
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[shard]
            .tx
            .send(Command::Register(spec.clone(), reply_tx))
            .expect("worker alive");
        let local = reply_rx.recv().expect("worker reply");
        debug_assert_eq!(local.index(), self.global_of_local[shard].len());

        let global = QueryId(self.routes.len() as u32);
        self.global_of_local[shard].push(global);
        self.routes.push(Some(Route { shard: shard as u32, local }));
        self.specs.push(Some(spec));
        self.live += 1;
        global
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: QueryId) -> bool {
        let Some(route) = self.routes.get_mut(qid.index()).and_then(Option::take) else {
            return false;
        };
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[route.shard as usize]
            .tx
            .send(Command::Unregister(route.local, reply_tx))
            .expect("worker alive");
        let removed = reply_rx.recv().expect("worker reply");
        debug_assert!(removed, "route table said the query was live");
        self.specs[qid.index()] = None;
        self.live -= 1;
        removed
    }

    /// Warm-start a query's result set (snapshot restore path).
    pub fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        let Some(route) = self.routes.get(qid.index()).copied().flatten() else { return };
        self.workers[route.shard as usize]
            .tx
            .send(Command::Seed(route.local, seeds.to_vec()))
            .expect("worker alive");
    }

    /// Process one pre-stamped stream event on all shards in parallel;
    /// returns the merged work counters and all result changes. This is the
    /// batch path with a batch of one — latency-oriented callers keep the
    /// old API, throughput-oriented callers should use
    /// [`ShardedMonitor::process_batch`] or the submit/drain pipeline.
    pub fn process(&mut self, doc: Document) -> (EventStats, Vec<(u32, ResultChange)>) {
        let (mut stats, changes) = self.process_batch(vec![doc]);
        (stats.pop().expect("one document in, one stat out"), changes)
    }

    /// Broadcast one batch of pre-stamped documents to every shard and wait
    /// for the merged outcome: per-document work counters (summed across
    /// shards via [`EventStats::merge`]) and every result change as
    /// `(shard, change)` pairs in document order per shard.
    ///
    /// Must not be interleaved with an open submit/drain pipeline — drain
    /// in-flight batches first.
    pub fn process_batch(&mut self, docs: Vec<Document>) -> BatchOutcome {
        assert!(
            self.in_flight.is_empty(),
            "process_batch cannot run while submitted batches are in flight; drain them first"
        );
        self.submit_batch(docs);
        self.drain_batch().expect("batch just submitted")
    }

    /// Hand one batch to every shard **without waiting**: the single
    /// allocation is the `Arc<[Document]>` the shards share. Pair with
    /// [`ShardedMonitor::drain_batch`]; replies come back in submission
    /// order, so keeping one or two batches in flight lets shard `i` score
    /// batch `n+1` while the merger drains batch `n`.
    pub fn submit_batch(&mut self, docs: Vec<Document>) {
        // Pre-stamped ingestion advances the stream position too, so a
        // snapshot taken after `process`/`run_pipelined` captures a
        // consistent `next_doc`/`last_arrival`. The publish path has
        // already advanced both in `admit`, making this a no-op there.
        for d in &docs {
            self.next_doc = self.next_doc.max(d.id.0 + 1);
            self.last_arrival = self.last_arrival.max(d.arrival);
        }
        let docs: Arc<[Document]> = docs.into();
        for w in &self.workers {
            w.tx.send(Command::Process(Arc::clone(&docs))).expect("worker alive");
        }
        self.in_flight.push_back(docs.len());
    }

    /// Merge the oldest in-flight batch: blocks until every shard has
    /// answered it. Returns `None` when nothing is in flight. Shard-local
    /// query ids in the changes are translated to public ids here.
    pub fn drain_batch(&mut self) -> Option<BatchOutcome> {
        let len = self.in_flight.pop_front()?;
        let mut stats = vec![EventStats::default(); len];
        let mut changes = Vec::new();
        for (shard, w) in self.workers.iter().enumerate() {
            let reply = w.reply_rx.recv().expect("worker reply");
            debug_assert_eq!(reply.stats.len(), len, "shard answered a different batch");
            for (merged, ev) in stats.iter_mut().zip(&reply.stats) {
                merged.merge(ev);
            }
            let locals = &self.global_of_local[shard];
            changes.extend(reply.changes.into_iter().map(|mut c| {
                c.query = locals[c.query.index()];
                (shard as u32, c)
            }));
        }
        Some((stats, changes))
    }

    /// Number of submitted batches not yet drained.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Drive a whole stream of pre-stamped batches through the shards,
    /// keeping up to `window` batches in flight (0 = fully synchronous,
    /// equivalent to calling [`ShardedMonitor::process_batch`] per batch).
    /// `on_batch` receives each batch's merged outcome in stream order.
    pub fn run_pipelined<I, F>(&mut self, batches: I, window: usize, mut on_batch: F)
    where
        I: IntoIterator<Item = Vec<Document>>,
        F: FnMut(Vec<EventStats>, Vec<(u32, ResultChange)>),
    {
        for batch in batches {
            self.submit_batch(batch);
            // Drain down to the window immediately after submitting, so at
            // most `window` batches are in flight while the iterator
            // produces the next one (window 0: drained before we return to
            // the iterator — synchronous).
            while self.in_flight.len() > window {
                let (stats, changes) = self.drain_batch().expect("in-flight batch");
                on_batch(stats, changes);
            }
        }
        while let Some((stats, changes)) = self.drain_batch() {
            on_batch(stats, changes);
        }
    }

    /// Publish one document through the unified API (a batch of one).
    pub fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        self.publish_batch(vec![(pairs, arrival)])
    }

    /// Publish a batch: allocate ids, clamp arrivals monotone, then drive
    /// the submit/drain pipeline in chunks of the configured ingest batch
    /// size (whole batch at once by default), keeping up to the configured
    /// window of chunks in flight.
    pub fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        assert!(
            self.in_flight.is_empty(),
            "publish cannot interleave with an open submit/drain pipeline; drain it first"
        );
        let docs: Vec<Document> =
            batch.into_iter().map(|(pairs, arrival)| self.admit(pairs, arrival)).collect();
        let mut receipt = PublishReceipt {
            doc_ids: docs.iter().map(|d| d.id).collect(),
            changes: Vec::new(),
            stats: Vec::with_capacity(docs.len()),
        };
        let chunk = if self.ingest_batch == 0 { docs.len().max(1) } else { self.ingest_batch };
        let window = self.ingest_window;
        let drain_into = |m: &mut Self, receipt: &mut PublishReceipt| {
            let (stats, changes) = m.drain_batch().expect("in-flight batch");
            receipt.stats.extend(stats);
            receipt.changes.extend(changes.into_iter().map(|(_, c)| c));
        };
        // Split the stamped batch into owned chunks without cloning any
        // document: `split_off` moves the tail, the head is submitted.
        let mut rest = docs;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk.min(rest.len()));
            let part = std::mem::replace(&mut rest, tail);
            self.submit_batch(part);
            while self.in_flight.len() > window {
                drain_into(self, &mut receipt);
            }
        }
        while !self.in_flight.is_empty() {
            drain_into(self, &mut receipt);
        }
        receipt
    }

    /// Stamp one incoming document: next id, monotone-clamped arrival.
    fn admit(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> Document {
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        Document::new(id, pairs, arrival)
    }

    /// Current results of a query.
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        let route = self.routes.get(qid.index()).copied().flatten()?;
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[route.shard as usize]
            .tx
            .send(Command::Results(route.local, reply_tx))
            .expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Number of live queries across all shards.
    pub fn num_queries(&self) -> usize {
        self.live
    }

    /// Lifetime work counters of every shard's engine, shard order. The
    /// invariant checked by the equivalence tests: after `n` documents,
    /// every shard reports `events == n` (each document visits each shard
    /// exactly once), so the summed counters equal `n × shards`.
    pub fn shard_cumulative(&self) -> Vec<CumulativeStats> {
        self.workers
            .iter()
            .map(|w| {
                let (reply_tx, reply_rx) = bounded(1);
                w.tx.send(Command::Cumulative(reply_tx)).expect("worker alive");
                reply_rx.recv().expect("worker reply")
            })
            .collect()
    }

    fn shard_landmark(&self, shard: usize) -> Timestamp {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[shard].tx.send(Command::Landmark(reply_tx)).expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }

    /// Capture the full monitor state: one [`ShardSnapshot`] section per
    /// shard, each with its own landmark and its resident queries (public
    /// ids). Must not be called with batches in flight.
    pub fn snapshot(&self) -> Snapshot {
        assert!(self.in_flight.is_empty(), "snapshot requires a quiesced pipeline; drain first");
        let mut sections: Vec<ShardSnapshot> = (0..self.workers.len())
            .map(|s| ShardSnapshot { landmark: self.shard_landmark(s), queries: Vec::new() })
            .collect();
        for (i, spec) in self.specs.iter().enumerate() {
            let Some(spec) = spec else { continue };
            let qid = QueryId(i as u32);
            let route = self.routes[i].expect("spec implies route");
            sections[route.shard as usize].queries.push(SnapshotQuery {
                qid: qid.0,
                spec: spec.clone(),
                results: self.results(qid).unwrap_or_default(),
            });
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            lambda: self.lambda(),
            next_doc: self.next_doc,
            last_arrival: self.last_arrival,
            shards: sections,
        }
    }

    /// The decay parameter the shard engines were built with.
    pub fn lambda(&self) -> f64 {
        let (reply_tx, reply_rx) = bounded(1);
        self.workers[0].tx.send(Command::Lambda(reply_tx)).expect("worker alive");
        reply_rx.recv().expect("worker reply")
    }
}

impl MonitorBackend for ShardedMonitor {
    fn register(&mut self, spec: QuerySpec) -> QueryId {
        ShardedMonitor::register(self, spec)
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        ShardedMonitor::unregister(self, qid)
    }

    fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        ShardedMonitor::publish(self, pairs, arrival)
    }

    fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        ShardedMonitor::publish_batch(self, batch)
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        ShardedMonitor::results(self, qid)
    }

    fn num_queries(&self) -> usize {
        ShardedMonitor::num_queries(self)
    }

    fn shards(&self) -> usize {
        ShardedMonitor::shards(self)
    }

    fn lambda(&self) -> f64 {
        ShardedMonitor::lambda(self)
    }

    fn snapshot(&self) -> Snapshot {
        ShardedMonitor::snapshot(self)
    }

    fn restore_landmark(&mut self, landmark: Timestamp) {
        // FIFO per worker: the landmark lands before any subsequent seed.
        for w in &self.workers {
            w.tx.send(Command::RestoreLandmark(landmark)).expect("worker alive");
        }
    }

    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp) {
        self.next_doc = next_doc;
        self.last_arrival = last_arrival;
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        ShardedMonitor::seed_results(self, qid, seeds)
    }
}

impl Drop for ShardedMonitor {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Command::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use crate::mrio::MrioSeg;
    use crate::naive::Naive;
    use ctk_common::TermId;

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn sharded_matches_single_engine() {
        let mut sharded = ShardedMonitor::new(3, || MrioSeg::new(0.001));
        let mut single = Naive::new(0.001);

        let specs: Vec<QuerySpec> =
            (0..30).map(|i| spec(&[i % 7, 7 + i % 4], 2 + (i % 3) as usize)).collect();
        let sharded_ids: Vec<QueryId> = specs.iter().map(|s| sharded.register(s.clone())).collect();
        let single_ids: Vec<QueryId> = specs.iter().map(|s| single.register(s.clone())).collect();
        // Public ids are one monotone space, identical to the single engine's.
        assert_eq!(sharded_ids, single_ids);

        for i in 0..60u64 {
            let d = doc(i, &[((i % 7) as u32, 1.0), ((7 + i % 4) as u32, 0.6)], i as f64);
            sharded.process(d.clone());
            single.process(&d);
        }
        for qid in &sharded_ids {
            assert_eq!(sharded.results(*qid), single.results(*qid));
        }
    }

    #[test]
    fn round_robin_distributes_queries() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let a = m.register(spec(&[1], 1));
        let b = m.register(spec(&[1], 1));
        let c = m.register(spec(&[1], 1));
        assert_eq!((a, b, c), (QueryId(0), QueryId(1), QueryId(2)));
        assert_eq!(m.shards(), 2);
        assert_eq!(m.num_queries(), 3);
        // Placement is observable through the snapshot's sections.
        let snap = m.snapshot();
        let per_shard: Vec<Vec<u32>> =
            snap.shards.iter().map(|s| s.queries.iter().map(|q| q.qid).collect()).collect();
        assert_eq!(per_shard, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn unregister_and_changes_reporting() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        // k = 2 so the second document still has a free slot to enter.
        let a = m.register(spec(&[1], 2));
        let b = m.register(spec(&[1], 2));
        let (_, changes) = m.process(doc(0, &[(1, 1.0)], 0.0));
        assert_eq!(changes.len(), 2, "both shards report an insertion");
        // Changes speak public ids, whatever shard they came from.
        let mut qids: Vec<QueryId> = changes.iter().map(|(_, c)| c.query).collect();
        qids.sort();
        assert_eq!(qids, vec![a, b]);
        assert!(m.unregister(a));
        assert!(!m.unregister(a), "double unregister is a no-op");
        let (_, changes) = m.process(doc(1, &[(1, 2.0)], 1.0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1.query, b);
        assert!(m.results(b).is_some());
        assert!(m.results(a).is_none());
        assert_eq!(m.num_queries(), 1);
    }

    #[test]
    fn batch_path_matches_per_doc_path() {
        let mk = || {
            let mut m = ShardedMonitor::new(3, || MrioSeg::new(0.001));
            let ids: Vec<QueryId> = (0..20)
                .map(|i| m.register(spec(&[i % 5, 5 + i % 3], 1 + (i % 2) as usize)))
                .collect();
            (m, ids)
        };
        let docs: Vec<Document> = (0..50u64)
            .map(|i| doc(i, &[((i % 5) as u32, 1.0), ((5 + i % 3) as u32, 0.4)], i as f64))
            .collect();

        let (mut per_doc, ids_a) = mk();
        let mut stats_a = Vec::new();
        let mut changes_a = Vec::new();
        for d in &docs {
            let (ev, ch) = per_doc.process(d.clone());
            stats_a.push(ev);
            changes_a.extend(ch);
        }

        let (mut batched, ids_b) = mk();
        let mut stats_b = Vec::new();
        let mut changes_b = Vec::new();
        for chunk in docs.chunks(16) {
            let (evs, ch) = batched.process_batch(chunk.to_vec());
            stats_b.extend(evs);
            changes_b.extend(ch);
        }

        assert_eq!(stats_a, stats_b, "merged per-document stats must not depend on batching");
        // Changes are reported in unspecified order (per-doc groups by
        // document, the batch path groups by shard): compare as multisets.
        let key = |(shard, c): &(u32, ResultChange)| {
            (*shard, c.query.0, c.inserted.doc.0, c.inserted.score)
        };
        changes_a.sort_by_key(key);
        changes_b.sort_by_key(key);
        assert_eq!(changes_a, changes_b);
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(per_doc.results(*a), batched.results(*b));
        }
        // Every shard saw every document exactly once.
        for cum in batched.shard_cumulative() {
            assert_eq!(cum.events, docs.len() as u64);
        }
    }

    #[test]
    fn pipelined_ingestion_matches_synchronous() {
        let mk = || {
            let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
            let ids: Vec<QueryId> = (0..10).map(|i| m.register(spec(&[i % 4], 2))).collect();
            (m, ids)
        };
        let batches: Vec<Vec<Document>> = (0..8u64)
            .map(|b| {
                (0..16u64)
                    .map(|i| {
                        let id = b * 16 + i;
                        doc(id, &[((id % 4) as u32, 1.0 + (id % 3) as f32)], id as f64)
                    })
                    .collect()
            })
            .collect();

        let (mut sync_m, ids_a) = mk();
        let mut sync_out = Vec::new();
        for b in &batches {
            let (evs, ch) = sync_m.process_batch(b.clone());
            sync_out.push((evs, ch));
        }

        let (mut pipe_m, ids_b) = mk();
        let mut pipe_out = Vec::new();
        pipe_m.run_pipelined(batches.clone(), 2, |evs, ch| pipe_out.push((evs, ch)));
        assert_eq!(pipe_m.in_flight(), 0);

        assert_eq!(sync_out.len(), pipe_out.len());
        for ((ea, ca), (eb, cb)) in sync_out.iter().zip(&pipe_out) {
            assert_eq!(ea, eb);
            assert_eq!(ca, cb);
        }
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(sync_m.results(*a), pipe_m.results(*b));
        }
    }

    #[test]
    fn publish_path_matches_single_monitor() {
        // The same publish sequence through a Monitor and a ShardedMonitor
        // (including a chunked, pipelined configuration) yields identical
        // receipts up to change order, and identical results.
        let specs: Vec<QuerySpec> = (0..12).map(|i| spec(&[i % 4, 4 + i % 3], 2)).collect();
        let mut single = Monitor::new(Naive::new(0.01));
        let mut sharded = ShardedMonitor::new(3, || Naive::new(0.01));
        sharded.set_ingest_chunking(4, 2);
        for s in &specs {
            let a = single.register(s.clone());
            let b = ShardedMonitor::register(&mut sharded, s.clone());
            assert_eq!(a, b);
        }

        let batch: Vec<(Vec<(TermId, f32)>, Timestamp)> = (0..30u32)
            .map(|i| (vec![(TermId(i % 4), 1.0), (TermId(4 + i % 3), 0.7)], i as f64))
            .collect();
        let ra = single.publish_batch(batch.clone());
        let rb = sharded.publish_batch(batch);

        assert_eq!(ra.doc_ids, rb.doc_ids);
        // Index-traversal counters differ by construction (each shard owns
        // its own lists), but insertions are insertions wherever the query
        // lives: per-document update counts must agree exactly.
        let upd = |r: &PublishReceipt| r.stats.iter().map(|e| e.updates).collect::<Vec<u64>>();
        assert_eq!(upd(&ra), upd(&rb), "insertions per document match the single engine");
        let sort = |mut v: Vec<ResultChange>| {
            v.sort_by_key(|c| (c.query, c.inserted.doc));
            v
        };
        assert_eq!(sort(ra.changes), sort(rb.changes));
        for i in 0..specs.len() as u32 {
            assert_eq!(single.results(QueryId(i)), sharded.results(QueryId(i)));
        }

        // And single publishes keep allocating from the same id space.
        let r1 = single.publish(vec![(TermId(0), 1.0)], 31.0);
        let r2 = sharded.publish(vec![(TermId(0), 1.0)], 31.0);
        assert_eq!(r1.doc_id(), DocId(30));
        assert_eq!(r1.doc_ids, r2.doc_ids);
    }

    #[test]
    fn snapshot_after_prestamped_ingestion_captures_the_stream_position() {
        // `process`/`run_pipelined` take pre-stamped documents and bypass
        // `admit`; the snapshot must still record where the stream got to,
        // or a restore would re-allocate ids colliding with the seeded
        // result sets.
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        let q = m.register(spec(&[1, 2], 3));
        for i in 0..5u64 {
            // Single-term documents: cosine 1/√2 against the two-term query.
            m.process(doc(i, &[(1, 1.0)], i as f64));
        }
        let snap = m.snapshot();
        assert_eq!(snap.next_doc, 5);
        assert_eq!(snap.last_arrival, 4.0);

        let mut restored = ShardedMonitor::new(3, || MrioSeg::new(0.0));
        let mapping = snap.restore_into(&mut restored);
        // A perfect match (cosine 1) published after the restore must beat
        // the seeded history and carry the next id.
        let receipt = restored.publish(vec![(TermId(1), 1.0), (TermId(2), 1.0)], 10.0);
        assert_eq!(receipt.doc_id(), DocId(5), "ids continue past the capture");
        assert!(restored.results(mapping[&q]).unwrap().iter().any(|sd| sd.doc == DocId(5)));
    }

    #[test]
    fn drain_on_empty_pipeline_is_none() {
        let mut m = ShardedMonitor::new(2, || MrioSeg::new(0.0));
        assert!(m.drain_batch().is_none());
        assert_eq!(m.in_flight(), 0);
    }
}
