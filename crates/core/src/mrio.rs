//! MRIO — Minimal RIO (paper §III, Eq. 3).
//!
//! RIO's bounds use list-wide maxima; MRIO replaces them with maxima **local
//! to the zone a bound actually prunes**, which is exactly the id range
//! between the first cursor and the cursor after the prefix:
//!
//! ```text
//! UB*(i) = Σ_{j≤i} f_j · max_{q ∈ zone_i} u_j(q)
//! zone_i = [c_1, c_{i+1})  for i < m,   [c_1, c_m]  for i = m
//! ```
//!
//! For list `j` only positions at or after its own cursor can contribute, so
//! the implementation queries `[pos(c_j), pos(bound))` per list. `UB*` is
//! monotone in `i` (ranges extend, non-negative terms accumulate), so the
//! *smallest* `i` with `UB*(i) ≥ θ_d` — the pivot that makes MRIO minimal —
//! is found by galloping + binary search instead of a linear scan.
//!
//! Unlike RIO, a failed full bound (`UB*(m) < θ_d`) only prunes `[c_1, c_m]`;
//! the traversal jumps past `c_m` and continues, because local bounds say
//! nothing about ids beyond the last cursor.
//!
//! The zone-maximum structure is pluggable ([`ZoneMax`]): segment tree
//! (exact, O(log n)), block maxima, or suffix snapshot — the three
//! implementations the TKDE paper ablates (DESIGN.md A1).

use crate::engine::{advance_past_current, advance_to, CursorSet, EngineBase};
use crate::stats::{CumulativeStats, EventStats};
use crate::topk::TopKState;
use crate::traits::{ContinuousTopK, ResultChange};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use ctk_index::{
    BlockMax, MaxSegTree, QueryIndex, StorageConfig, StorageStats, SuffixMax, ZoneMax,
};

/// MRIO with a segment-tree zone index (the default, exact variant).
pub type MrioSeg = Mrio<MaxSegTree>;
/// MRIO with block maxima.
pub type MrioBlock = Mrio<BlockMax>;
/// MRIO with suffix-max snapshots (loosest bounds, cheapest maintenance).
pub type MrioSuffix = Mrio<SuffixMax>;

/// The MRIO algorithm, generic over the zone-maximum structure.
pub struct Mrio<Z: ZoneMax> {
    base: EngineBase,
    index: QueryIndex,
    /// One zone structure per postings list; position-aligned with the list.
    zones: Vec<Z>,
    cursors: CursorSet,
    name: &'static str,
}

impl Mrio<MaxSegTree> {
    /// MRIO with exact segment-tree zone maxima.
    pub fn new(lambda: f64) -> Self {
        Mrio::with_name(lambda, &StorageConfig::plain(), "MRIO")
    }

    /// As [`Mrio::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Mrio::with_name(lambda, storage, "MRIO")
    }
}

impl Mrio<BlockMax> {
    /// MRIO with block-max zone maxima.
    pub fn new(lambda: f64) -> Self {
        Mrio::with_name(lambda, &StorageConfig::plain(), "MRIO-block")
    }

    /// As [`Mrio::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Mrio::with_name(lambda, storage, "MRIO-block")
    }
}

impl Mrio<SuffixMax> {
    /// MRIO with suffix-snapshot zone maxima.
    pub fn new(lambda: f64) -> Self {
        Mrio::with_name(lambda, &StorageConfig::plain(), "MRIO-suffix")
    }

    /// As [`Mrio::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Mrio::with_name(lambda, storage, "MRIO-suffix")
    }
}

impl<Z: ZoneMax + Default> Mrio<Z> {
    fn with_name(lambda: f64, storage: &StorageConfig, name: &'static str) -> Self {
        Mrio {
            base: EngineBase::new(lambda),
            index: QueryIndex::with_storage(storage),
            zones: Vec::new(),
            cursors: CursorSet::default(),
            name,
        }
    }
}

impl<Z: ZoneMax> Mrio<Z> {
    /// Write the current `u = w/S_k` of every term of `qid` into the zones.
    fn update_query_zones(&mut self, qid: QueryId) {
        let Some(state) = self.base.state(qid) else { return };
        let Some(rec) = self.index.record(qid) else { return };
        for e in rec.entries_full() {
            let u = state.normalized(e.weight as f64);
            self.zones[e.list as usize].update(e.pos as usize, u);
        }
    }

    /// Rebuild list `li`'s zone structure from its postings: live entries
    /// map to their current `u = w/S_k`, tombstones to `-∞` — one shared
    /// definition ([`ctk_index::list_bound_values`]) with the doc-parallel
    /// epoch bounds. `vals` is the caller's scratch buffer (reused across
    /// lists).
    fn rebuild_zone(&mut self, li: u32, vals: &mut Vec<f64>) {
        let base = &self.base;
        ctk_index::list_bound_values(
            &self.index,
            li,
            |qid, w| base.normalized_of(qid, w as f64),
            vals,
        );
        self.zones[li as usize].rebuild(vals);
    }

    /// Rebuild every zone structure from the postings (after a landmark
    /// renormalization, which rescales all thresholds at once).
    fn rebuild_all_zones(&mut self) {
        let mut vals: Vec<f64> = Vec::new();
        for li in 0..self.index.num_lists() as u32 {
            self.rebuild_zone(li, &mut vals);
        }
    }

    /// `UB*` for the prefix `0..=i` of the sorted cursor set, compared
    /// against `theta`. `bound` is the exclusive id limit of the zone.
    /// Counts one bound computation per list term.
    fn prefix_bound(&mut self, i: usize, bound: QueryId, ev: &mut EventStats) -> f64 {
        let mut sum = 0.0f64;
        for c in &self.cursors.cursors[..=i] {
            let list = self.index.list(c.list);
            let hi = list.seek(c.pos, bound);
            let mx = self.zones[c.list as usize].range_max(c.pos, hi);
            ev.bound_computations += 1;
            if mx > 0.0 {
                sum += c.f * mx;
                if sum >= f64::INFINITY {
                    break;
                }
            }
        }
        sum
    }

    /// Exclusive id bound of zone `i`: the next cursor's id, or one past the
    /// last cursor for the final zone (making it inclusive of `c_m`).
    fn zone_bound(&self, i: usize) -> QueryId {
        let cs = &self.cursors.cursors;
        if i + 1 < cs.len() {
            cs[i + 1].qid
        } else {
            QueryId(cs[cs.len() - 1].qid.0 + 1)
        }
    }

    /// The traversal body of one event, after the decay prologue has run.
    /// Shared by the per-document and batched entry points.
    fn run_event(&mut self, doc: &Document, theta: f64, amp: f64) -> EventStats {
        let mut ev = EventStats {
            matched_lists: self.cursors.build(&self.index, doc) as u64,
            ..EventStats::default()
        };

        loop {
            if self.cursors.is_empty() {
                break;
            }
            ev.iterations += 1;
            let m = self.cursors.len();

            // --- Phase 1: cheap global-bound pre-filter (RIO's Eq. 2 with
            // the zone structures' O(1) global maxima). Since UB* <= UB,
            // the zone pivot can only be at or after the global pivot, so
            // the zone refinement starts there; and if even the global
            // bound never reaches theta, the whole event terminates (global
            // maxima cover every query id).
            let mut global_pivot: Option<usize> = None;
            {
                let mut gsum = 0.0f64;
                for (i, c) in self.cursors.cursors.iter().enumerate() {
                    let g = self.zones[c.list as usize].global_max();
                    ev.bound_computations += 1;
                    if g > 0.0 {
                        gsum += c.f * g;
                    }
                    if gsum >= theta {
                        global_pivot = Some(i);
                        break;
                    }
                }
            }
            let Some(ig) = global_pivot else {
                break; // nothing anywhere in the index can qualify
            };

            // --- Phase 2: find the smallest i >= ig with UB*(i) >= theta
            // (monotone in i): gallop up, then binary search the bracket.
            let mut pivot_idx: Option<usize> = None;
            let mut lo = ig; // smallest untested index
            let mut step = 0usize;
            loop {
                let i = (ig + step).min(m - 1);
                let b = self.zone_bound(i);
                if self.prefix_bound(i, b, &mut ev) >= theta {
                    // Bracket (lo-1, i]; binary search the boundary.
                    let mut hi = i;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let bm = self.zone_bound(mid);
                        if self.prefix_bound(mid, bm, &mut ev) >= theta {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    pivot_idx = Some(lo);
                    break;
                }
                if i == m - 1 {
                    break; // even UB*(m) < theta
                }
                lo = i + 1;
                step = step * 2 + 1;
            }

            match pivot_idx {
                None => {
                    // Local bound prunes [c_1, c_m] only: skip past the last
                    // cursor id and keep going.
                    let target = self.zone_bound(m - 1);
                    for c in self.cursors.cursors.iter_mut() {
                        advance_to(&self.index, c, target);
                        ev.postings_accessed += 1;
                    }
                    self.cursors.sort_full();
                }
                Some(p) => {
                    let pivot = self.cursors.cursors[p].qid;
                    if self.cursors.cursors[0].qid == pivot {
                        let mut dot = 0.0f64;
                        let mut moved = 0usize;
                        for c in self.cursors.cursors.iter_mut() {
                            if c.qid != pivot {
                                break;
                            }
                            let posting = self.index.list(c.list).get(c.pos);
                            dot += c.f * posting.weight as f64;
                            ev.postings_accessed += 1;
                            advance_past_current(&self.index, c);
                            moved += 1;
                        }
                        ev.full_evaluations += 1;
                        if self.base.offer(pivot, doc, dot, amp) {
                            ev.updates += 1;
                            self.update_query_zones(pivot);
                        }
                        self.cursors.repair_prefix(moved);
                    } else {
                        for c in self.cursors.cursors[..p].iter_mut() {
                            advance_to(&self.index, c, pivot);
                            ev.postings_accessed += 1;
                        }
                        self.cursors.repair_prefix(p);
                    }
                }
            }
        }

        ev.accumulate_into(&mut self.base.cum);
        ev
    }
}

impl<Z: ZoneMax + Default> ContinuousTopK for Mrio<Z> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.index.register(&spec.vector, spec.k as u32);
        self.base.push_state(spec.k as u32);
        // New lists may have been created; keep zones aligned.
        while self.zones.len() < self.index.num_lists() {
            self.zones.push(Z::default());
        }
        // Append the new postings' u values (positions align by append order
        // because lists are append-only).
        let state_u = f64::INFINITY; // fresh queries are unfilled
        if let Some(rec) = self.index.record(qid) {
            for e in rec.entries() {
                // The fresh posting is the list's last slot, so the zone's
                // next append position must be that slot's index.
                debug_assert_eq!(
                    self.zones[e.list as usize].len() + 1,
                    self.index.list(e.list).len()
                );
                self.zones[e.list as usize].append(state_u);
            }
        }
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        match self.index.unregister(qid) {
            Some(rec) => {
                for e in &rec.entries {
                    self.zones[e.list as usize].update(e.pos as usize, f64::NEG_INFINITY);
                }
                self.base.drop_state(qid);
                true
            }
            None => false,
        }
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        if self.base.seed(qid, seeds) {
            self.update_query_zones(qid);
        }
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (theta, amp, renorm) = self.base.begin_event(doc.arrival);
        if renorm.is_some() {
            self.rebuild_all_zones();
        }
        self.run_event(doc, theta, amp)
    }

    fn process_batch_into(
        &mut self,
        docs: &[Document],
        changes_out: &mut Vec<ResultChange>,
    ) -> Vec<EventStats> {
        let mut stats = Vec::with_capacity(docs.len());
        // Arrivals are non-decreasing, so if the *last* document of the
        // batch stays inside the decay headroom, every document does — one
        // check replaces a per-event test-and-branch in the steady state.
        let renorm_possible = docs.last().is_some_and(|d| self.base.decay.needs_renorm(d.arrival));
        for doc in docs {
            let ev = if renorm_possible {
                self.process(doc)
            } else {
                let (theta, amp) = self.base.begin_event_steady(doc.arrival);
                self.run_event(doc, theta, amp)
            };
            stats.push(ev);
            changes_out.extend_from_slice(&self.base.changes);
        }
        stats
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.index.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }

    fn tombstone_ratio(&self) -> f64 {
        self.index.tombstone_ratio()
    }

    fn compact_index(&mut self) -> usize {
        let changed = self.index.compact();
        // Rebuild the zone structure of exactly the lists whose layout
        // moved; untouched lists keep their (position-aligned) zones.
        let mut vals: Vec<f64> = Vec::new();
        for &li in &changed {
            self.rebuild_zone(li, &mut vals);
        }
        changed.len()
    }

    fn storage_stats(&self) -> StorageStats {
        self.index.storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    fn check_variant<Z: ZoneMax + Default>(mut m: Mrio<Z>) {
        let q1 = m.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        let q2 = m.register(spec(&[(2, 2.0), (3, 1.0)], 1));
        m.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        m.process(&doc(2, &[(2, 1.0), (3, 1.0)], 1.0));
        m.process(&doc(3, &[(5, 1.0)], 2.0));

        let r1 = m.results(q1).unwrap();
        assert_eq!(r1[0].doc, DocId(1));
        assert!((r1[0].score.get() - 1.0).abs() < 1e-6);
        assert_eq!(r1.len(), 2);

        let r2 = m.results(q2).unwrap();
        assert_eq!(r2.len(), 1);
        // doc2 · q2 = (1/√2)(2/√5) + (1/√2)(1/√5) = 3/√10
        assert!((r2[0].score.get() - 3.0 / 10f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn seg_variant_basics() {
        check_variant(MrioSeg::new(0.0));
    }

    #[test]
    fn block_variant_basics() {
        check_variant(MrioBlock::new(0.0));
    }

    #[test]
    fn suffix_variant_basics() {
        check_variant(MrioSuffix::new(0.0));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(MrioSeg::new(0.0).name(), "MRIO");
        assert_eq!(MrioBlock::new(0.0).name(), "MRIO-block");
        assert_eq!(MrioSuffix::new(0.0).name(), "MRIO-suffix");
    }

    #[test]
    fn unregister_updates_zones() {
        let mut m = MrioSeg::new(0.0);
        let a = m.register(spec(&[(1, 1.0)], 1));
        let b = m.register(spec(&[(1, 1.0)], 1));
        m.process(&doc(1, &[(1, 1.0)], 0.0));
        assert!(m.unregister(a));
        m.process(&doc(2, &[(1, 1.0)], 1.0));
        assert!(m.results(a).is_none());
        let rb = m.results(b).unwrap();
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn renorm_rebuilds_zones() {
        let mut m = MrioSeg::new(0.5);
        m.base.decay = crate::score::DecayModel::new(0.5).with_max_exponent(3.0);
        let q = m.register(spec(&[(1, 1.0)], 2));
        for i in 0..40u64 {
            m.process(&doc(i, &[(1, 1.0), (2, (i % 3) as f32 + 0.1)], i as f64));
        }
        assert!(m.cumulative().renormalizations > 0);
        let docs: Vec<u64> = m.results(q).unwrap().iter().map(|s| s.doc.0).collect();
        assert_eq!(docs, vec![39, 38]);
    }

    #[test]
    fn batched_processing_is_bit_identical_to_looped() {
        // Exercise the steady fast path AND the renorm slow path: λ = 0.5
        // with the default headroom of 60 renormalizes at arrival > 120.
        let mk = || {
            let mut m = MrioSeg::new(0.5);
            for i in 0..20u32 {
                m.register(spec(&[(i % 5, 1.0), (5 + i % 3, 0.5)], 2));
            }
            m
        };
        let docs: Vec<Document> = (0..150u64)
            .map(|i| doc(i, &[((i % 5) as u32, 1.0), ((5 + i % 3) as u32, 0.7)], i as f64 * 1.1))
            .collect();

        let mut looped = mk();
        let mut loop_changes = Vec::new();
        let mut loop_stats = Vec::new();
        for d in &docs {
            loop_stats.push(looped.process(d));
            loop_changes.extend_from_slice(looped.last_changes());
        }

        let mut batched = mk();
        let mut batch_changes = Vec::new();
        let mut batch_stats = Vec::new();
        for chunk in docs.chunks(32) {
            batch_stats.extend(batched.process_batch_into(chunk, &mut batch_changes));
        }

        assert!(looped.cumulative().renormalizations > 0, "stream must cross a renorm");
        assert_eq!(loop_stats, batch_stats);
        assert_eq!(loop_changes, batch_changes);
        assert_eq!(looped.cumulative(), batched.cumulative());
        for q in 0..20u32 {
            assert_eq!(looped.results(QueryId(q)), batched.results(QueryId(q)), "query {q}");
        }
    }

    #[test]
    fn minimality_vs_rio_on_small_stream() {
        use crate::rio::Rio;
        let mut rio = Rio::new(0.01);
        let mut mrio = MrioSeg::new(0.01);
        // Mixed difficulty queries to spread thresholds apart.
        for i in 0..30u32 {
            let s = spec(&[(i % 7, 1.0), (7 + i % 5, 0.5)], 1 + (i % 3) as usize);
            rio.register(s.clone());
            mrio.register(s);
        }
        for i in 0..200u64 {
            let terms =
                [((i % 7) as u32, 1.0f32), ((7 + i % 5) as u32, 0.8), ((12 + i % 3) as u32, 0.3)];
            let d = doc(i, &terms, i as f64);
            rio.process(&d);
            mrio.process(&d);
        }
        // Identical results...
        for q in 0..30u32 {
            assert_eq!(rio.results(QueryId(q)), mrio.results(QueryId(q)), "query {q}");
        }
        // ...with MRIO doing no more full evaluations (Lemma 2's claim).
        assert!(
            mrio.cumulative().full_evaluations <= rio.cumulative().full_evaluations,
            "MRIO {} > RIO {}",
            mrio.cumulative().full_evaluations,
            rio.cumulative().full_evaluations
        );
    }
}
