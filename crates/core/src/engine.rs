//! Shared machinery for all algorithm implementations.
//!
//! [`EngineBase`] owns what every algorithm needs regardless of its index
//! paradigm: the decay model (with landmark renormalization), the per-query
//! [`TopKState`]s, result-change reporting and cumulative counters.
//!
//! [`CursorSet`] is the per-event working set of the ID-ordering family
//! (RIO, MRIO, TPS): one cursor per matched postings list, re-sorted by the
//! query id under the cursor at the start of every iteration — this ordering
//! *is* the "processing order" of paper §III.

use crate::score::DecayModel;
use crate::stats::CumulativeStats;
use crate::topk::{Offer, TopKState};
use crate::traits::ResultChange;
use ctk_common::{Document, QueryId, ScoredDoc, Timestamp};
use ctk_index::QueryIndex;

/// Decay + result-set state shared by every algorithm.
#[derive(Debug)]
pub struct EngineBase {
    pub decay: DecayModel,
    states: Vec<Option<TopKState>>,
    pub changes: Vec<ResultChange>,
    pub cum: CumulativeStats,
}

impl EngineBase {
    pub fn new(lambda: f64) -> Self {
        EngineBase {
            decay: DecayModel::new(lambda),
            states: Vec::new(),
            changes: Vec::new(),
            cum: CumulativeStats::default(),
        }
    }

    /// Allocate the result state for a newly registered query.
    pub fn push_state(&mut self, k: u32) {
        self.states.push(Some(TopKState::new(k)));
    }

    /// Drop the state of an unregistered query.
    pub fn drop_state(&mut self, qid: QueryId) -> bool {
        match self.states.get_mut(qid.index()) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    #[inline]
    pub fn state(&self, qid: QueryId) -> Option<&TopKState> {
        self.states.get(qid.index()).and_then(|s| s.as_ref())
    }

    #[inline]
    pub fn state_mut(&mut self, qid: QueryId) -> Option<&mut TopKState> {
        self.states.get_mut(qid.index()).and_then(|s| s.as_mut())
    }

    /// `S_k` of a live query, `0.0` while unfilled.
    #[inline]
    pub fn threshold_of(&self, qid: QueryId) -> f64 {
        self.state(qid).map(|s| s.threshold()).unwrap_or(0.0)
    }

    /// Current `(version, u = w/S_k)` of a live query; used both to push
    /// fresh tracker entries and to validate stale ones.
    #[inline]
    pub fn normalized_of(&self, qid: QueryId, weight: f64) -> f64 {
        self.state(qid).map(|s| s.normalized(weight)).unwrap_or(f64::NEG_INFINITY)
    }

    /// True when `(qid, version)` matches the live state — the validity
    /// check for [`ctk_index::VersionedMaxTracker`] entries.
    #[inline]
    pub fn is_current(&self, qid: QueryId, version: u32) -> bool {
        self.state(qid).is_some_and(|s| s.version() == version)
    }

    /// Per-event prologue: perform a landmark renormalization if due (all
    /// result scores are rescaled here; index-side structures are the
    /// caller's job via the returned factor) and compute the event target
    /// `θ_d`. Returns `(theta, amplification, renorm_factor)`.
    pub fn begin_event(&mut self, arrival: Timestamp) -> (f64, f64, Option<f64>) {
        let mut renorm = None;
        if self.decay.needs_renorm(arrival) {
            let r = self.decay.renormalize(arrival);
            for s in self.states.iter_mut().flatten() {
                s.rescale(r);
            }
            self.cum.renormalizations += 1;
            renorm = Some(r);
        }
        self.changes.clear();
        (self.decay.theta(arrival), self.decay.amplification(arrival), renorm)
    }

    /// [`EngineBase::begin_event`] for callers that have already
    /// established no renormalization can be due — batched ingestion checks
    /// the batch's *last* arrival once (timestamps are non-decreasing, so
    /// it bounds every event in the batch) and then skips the per-event
    /// decay test in the inner loop.
    pub fn begin_event_steady(&mut self, arrival: Timestamp) -> (f64, f64) {
        debug_assert!(!self.decay.needs_renorm(arrival));
        self.changes.clear();
        (self.decay.theta(arrival), self.decay.amplification(arrival))
    }

    /// Offer a fully evaluated candidate to query `qid`. Records the result
    /// change and returns `true` on insertion (callers then refresh their
    /// bound structures for this query).
    pub fn offer(&mut self, qid: QueryId, doc: &Document, raw_dot: f64, amp: f64) -> bool {
        let cand = ScoredDoc::new(doc.id, raw_dot * amp);
        let Some(state) = self.states.get_mut(qid.index()).and_then(|s| s.as_mut()) else {
            return false;
        };
        match state.offer(cand) {
            Offer::Rejected => false,
            Offer::Inserted { evicted } => {
                self.changes.push(ResultChange { query: qid, inserted: cand, evicted });
                true
            }
        }
    }

    /// Results of a live query, best first.
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.state(qid).map(|s| s.sorted_results())
    }

    /// Offer pre-scored history entries to `qid` (warm start). Returns true
    /// when anything was inserted (callers then refresh bound structures).
    pub fn seed(&mut self, qid: QueryId, seeds: &[ScoredDoc]) -> bool {
        let Some(state) = self.states.get_mut(qid.index()).and_then(|s| s.as_mut()) else {
            return false;
        };
        let mut inserted = false;
        for sd in seeds {
            if matches!(state.offer(*sd), Offer::Inserted { .. }) {
                inserted = true;
            }
        }
        inserted
    }
}

/// One cursor over a matched postings list during an event.
#[derive(Debug, Clone, Copy)]
pub struct Cursor {
    /// Dense list index in the `QueryIndex`.
    pub list: u32,
    /// Document weight `f_j` for this term.
    pub f: f64,
    /// Current position in the list (always live or == len).
    pub pos: usize,
    /// Query id under the cursor (cache of `list[pos].qid`).
    pub qid: QueryId,
}

/// Reusable working set of cursors for the ID-ordering traversal.
///
/// The set is kept **sorted by the query id under each cursor** at all
/// times — this ordering *is* the paper's "processing order". Because an
/// iteration only moves a small prefix of cursors (the aligned lists of the
/// pivot, or the jumping lists), order is restored with an O(m) merge-repair
/// instead of a full re-sort; profiling showed the re-sort dominating event
/// cost at realistic scales.
#[derive(Debug, Default)]
pub struct CursorSet {
    pub cursors: Vec<Cursor>,
}

impl CursorSet {
    /// Populate from the document's matched terms: one cursor per non-empty
    /// list, positioned at the first live posting, sorted by query id.
    /// Returns the number of matched lists (`m`).
    pub fn build(&mut self, index: &QueryIndex, doc: &Document) -> usize {
        self.cursors.clear();
        for (term, f) in doc.vector.iter() {
            let Some(li) = index.list_of_term(term) else { continue };
            let list = index.list(li);
            let pos = list.seek_live(0, QueryId(0));
            if pos >= list.len() {
                continue;
            }
            self.cursors.push(Cursor { list: li, f: f as f64, pos, qid: list.get(pos).qid });
        }
        let m = self.cursors.len();
        self.sort_full();
        m
    }

    /// Full sort + exhausted-cursor truncation. Needed after *all* cursors
    /// move (MRIO's failed-full-bound skip); otherwise prefer
    /// [`CursorSet::repair_prefix`].
    pub fn sort_full(&mut self) {
        self.cursors.sort_unstable_by_key(|c| c.qid);
        while self.cursors.last().is_some_and(|c| c.qid == EXHAUSTED) {
            self.cursors.pop();
        }
    }

    /// Restore sortedness after the first `t` cursors were advanced (their
    /// qids only grew; [`EXHAUSTED`] sorts last).
    ///
    /// Jumped cursors usually land only a few slots deeper — the pivot was
    /// the id under a nearby cursor — so each moved cursor is *sifted
    /// forward* with short shifts (the classic WAND repair). Worst case
    /// O(t·m), typical cost a handful of moves per advanced cursor.
    pub fn repair_prefix(&mut self, t: usize) {
        let n = self.cursors.len();
        if t == 0 || n == 0 {
            return;
        }
        if t >= n {
            self.sort_full();
            return;
        }
        // Process moved cursors back-to-front: sifting cursors[i] forward
        // never disturbs the (still unsorted) prefix before it.
        for i in (0..t).rev() {
            let cur = self.cursors[i];
            let mut j = i;
            while j + 1 < n && self.cursors[j + 1].qid < cur.qid {
                self.cursors[j] = self.cursors[j + 1];
                j += 1;
            }
            self.cursors[j] = cur;
        }
        while self.cursors.last().is_some_and(|c| c.qid == EXHAUSTED) {
            self.cursors.pop();
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cursors.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.cursors.len()
    }
}

/// Sentinel query id marking an exhausted cursor (no u32 query id can reach
/// it in practice: it would require 2^32−1 registrations).
pub const EXHAUSTED: QueryId = QueryId(u32::MAX);

/// Advance cursor `c` to the first live posting with id `>= target`,
/// refreshing the qid cache (sets [`EXHAUSTED`] at end of list).
#[inline]
pub fn advance_to(index: &QueryIndex, c: &mut Cursor, target: QueryId) {
    let list = index.list(c.list);
    c.pos = list.seek_live(c.pos, target);
    c.qid = if c.pos < list.len() { list.get(c.pos).qid } else { EXHAUSTED };
}

/// Advance cursor `c` past its current posting.
#[inline]
pub fn advance_past_current(index: &QueryIndex, c: &mut Cursor) {
    let list = index.list(c.list);
    let mut pos = c.pos + 1;
    while pos < list.len() && list.get(pos).is_tombstone() {
        pos += 1;
    }
    c.pos = pos;
    c.qid = if pos < list.len() { list.get(pos).qid } else { EXHAUSTED };
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, SparseVector, TermId};

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    #[test]
    fn begin_event_renormalizes_states() {
        let mut base = EngineBase::new(1.0);
        base.decay = DecayModel::new(1.0).with_max_exponent(2.0);
        base.push_state(1);
        let doc = Document::new(DocId(1), vec![(TermId(0), 1.0)], 0.0);
        let (theta, amp, _) = base.begin_event(0.0);
        assert_eq!((theta, amp), (1.0, 1.0));
        base.offer(QueryId(0), &doc, 0.5, 1.0);
        assert_eq!(base.threshold_of(QueryId(0)), 0.5);

        // Past the exponent headroom: renorm fires and rescales thresholds.
        let (theta2, _, renorm) = base.begin_event(10.0);
        let r = renorm.expect("renorm due");
        assert!(r < 1.0);
        assert!((base.threshold_of(QueryId(0)) - 0.5 * r).abs() < 1e-15);
        assert!((theta2 - 1.0).abs() < 1e-12, "theta resets at the new landmark");
        assert_eq!(base.cum.renormalizations, 1);
    }

    #[test]
    fn offer_records_changes() {
        let mut base = EngineBase::new(0.0);
        base.push_state(1);
        let doc = Document::new(DocId(7), vec![(TermId(0), 1.0)], 0.0);
        base.begin_event(0.0);
        assert!(base.offer(QueryId(0), &doc, 0.9, 1.0));
        assert_eq!(base.changes.len(), 1);
        assert_eq!(base.changes[0].query, QueryId(0));
        assert!(!base.offer(QueryId(0), &doc, 0.1, 1.0), "worse score rejected");
        assert_eq!(base.changes.len(), 1);
    }

    #[test]
    fn cursor_set_builds_sorted() {
        let mut ix = QueryIndex::new();
        // q0 has terms 1,2; q1 has term 2.
        ix.register(&vector(&[(1, 1.0), (2, 1.0)]), 1);
        ix.register(&vector(&[(2, 1.0)]), 1);
        let doc = Document::new(DocId(1), vec![(TermId(2), 1.0), (TermId(9), 1.0)], 0.0);
        let mut cs = CursorSet::default();
        let m = cs.build(&ix, &doc);
        assert_eq!(m, 1, "term 9 has no list");
        assert_eq!(cs.cursors[0].qid, QueryId(0));
    }

    #[test]
    fn advance_handles_tombstones_and_exhaustion() {
        let mut ix = QueryIndex::new();
        let q0 = ix.register(&vector(&[(1, 1.0)]), 1);
        let q1 = ix.register(&vector(&[(1, 1.0)]), 1);
        let q2 = ix.register(&vector(&[(1, 1.0)]), 1);
        ix.unregister(q1);
        let li = ix.list_of_term(TermId(1)).unwrap();
        let mut c = Cursor { list: li, f: 1.0, pos: 0, qid: q0 };
        advance_past_current(&ix, &mut c);
        assert_eq!(c.qid, q2, "skips the tombstoned q1");
        advance_past_current(&ix, &mut c);
        assert_eq!(c.qid, EXHAUSTED);
        // advance_to is idempotent at the end.
        advance_to(&ix, &mut c, QueryId(0));
        assert_eq!(c.qid, EXHAUSTED);
    }

    #[test]
    fn drop_state_and_liveness() {
        let mut base = EngineBase::new(0.0);
        base.push_state(2);
        assert!(base.drop_state(QueryId(0)));
        assert!(!base.drop_state(QueryId(0)));
        assert!(base.state(QueryId(0)).is_none());
        assert!(!base.is_current(QueryId(0), 0));
    }
}
