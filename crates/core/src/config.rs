//! Grouped, typed configuration for the ingestion path.
//!
//! The builder historically grew one flat knob per concern
//! (`batch_size`, `pipeline_window`, `compact_at`, …). These structs bundle
//! the knobs by the subsystem they tune — [`IngestConfig`] for the
//! publish-side pipeline, [`IndexConfig`] for the query index — so a whole
//! deployment profile is one value with `Default` + builder-style setters.
//! The flat builder methods remain as delegating wrappers, so both styles
//! configure the same fields.

use crate::backend::DocPruning;
use ctk_index::StorageConfig;

/// AIMD controller parameters for adaptive ingest chunking (see
/// [`crate::ShardedMonitor::set_adaptive_batching`]).
///
/// The controller watches the wall-clock latency of each pipeline drain
/// during `publish_batch`: while drains come back under
/// [`AdaptiveConfig::target_drain_ms`], the chunk size grows additively by
/// [`AdaptiveConfig::increase_step`] (more documents in flight per
/// round-trip, higher throughput); the first drain over the target halves
/// it (multiplicative decrease, classic AIMD), bounded to
/// `[min_chunk, max_chunk]`.
///
/// Chunking is **result-invariant**: `publish_batch` produces bit-identical
/// receipts under any chunk-size schedule (proptested against a
/// fixed-window oracle in `tests/sharded_batch.rs`), so the controller only
/// ever moves throughput and latency, never results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Target per-drain latency in milliseconds: drains slower than this
    /// halve the chunk size. Default 5 ms.
    pub target_drain_ms: f64,
    /// Lower chunk-size clamp (never shrink below this). Default 8.
    pub min_chunk: usize,
    /// Upper chunk-size clamp (never grow above this). Default 4096.
    pub max_chunk: usize,
    /// Additive growth per under-target drain, in documents. Default 16.
    pub increase_step: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { target_drain_ms: 5.0, min_chunk: 8, max_chunk: 4096, increase_step: 16 }
    }
}

impl AdaptiveConfig {
    /// The per-drain latency target, in milliseconds.
    pub fn target_drain_ms(mut self, ms: f64) -> Self {
        self.target_drain_ms = ms;
        self
    }

    /// The chunk-size clamp `[min, max]`.
    ///
    /// # Panics
    /// Panics unless `1 <= min <= max`.
    pub fn chunk_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(1 <= min && min <= max, "need 1 <= min_chunk <= max_chunk");
        self.min_chunk = min;
        self.max_chunk = max;
        self
    }

    /// Documents added to the chunk per under-target drain.
    pub fn increase_step(mut self, step: usize) -> Self {
        self.increase_step = step.max(1);
        self
    }
}

/// How `publish_batch` drives the submit/drain pipeline on sharded
/// backends: chunk size, pipeline window, and the optional AIMD controller
/// that retunes the chunk size from measured drain latency.
///
/// ```
/// use ctk_core::{AdaptiveConfig, IngestConfig};
///
/// let cfg = IngestConfig::default()
///     .batch_size(256)
///     .pipeline_window(2)
///     .adaptive(AdaptiveConfig::default());
/// assert_eq!(cfg.batch_size, 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// `publish_batch` chunk size (0 = whole publish as one batch). With
    /// [`IngestConfig::adaptive`] set this is only the controller's
    /// starting point (clamped to its bounds).
    pub batch_size: usize,
    /// Chunks kept in flight while chunking (0 = fully synchronous).
    /// Default 1: shards score chunk *n+1* while the merger drains chunk
    /// *n*.
    pub pipeline_window: usize,
    /// AIMD chunk-size controller; `None` keeps the fixed `batch_size`.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { batch_size: 0, pipeline_window: 1, adaptive: None }
    }
}

impl IngestConfig {
    /// Set the (initial) publish chunk size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Set how many chunks stay in flight.
    pub fn pipeline_window(mut self, window: usize) -> Self {
        self.pipeline_window = window;
        self
    }

    /// Enable the AIMD chunk-size controller.
    pub fn adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }
}

/// How the query index(es) behind a monitor are stored and maintained:
/// postings layout, pager budget, tombstone compaction, and the
/// document-mode walk-pruning policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexConfig {
    /// Postings layout + pager budget (see `ctk_index::StorageConfig`).
    pub storage: StorageConfig,
    /// Compact the index at batch boundaries once
    /// `tombstone_ratio() >= threshold` (`<= 0.0` disables).
    pub compaction_threshold: f64,
    /// Whether document-mode workers prune their walk with frozen
    /// zone-maxima bounds (no effect in query mode).
    pub doc_pruning: DocPruning,
}

impl IndexConfig {
    /// Set the postings storage configuration.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Set the tombstone-compaction threshold.
    pub fn compaction_threshold(mut self, threshold: f64) -> Self {
        self.compaction_threshold = threshold;
        self
    }

    /// Set the document-mode walk-pruning policy.
    pub fn doc_pruning(mut self, pruning: DocPruning) -> Self {
        self.doc_pruning = pruning;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_defaults_are_sane_and_setters_clamp() {
        let d = AdaptiveConfig::default();
        assert!(d.min_chunk >= 1 && d.min_chunk <= d.max_chunk);
        assert!(d.target_drain_ms > 0.0);
        let c = AdaptiveConfig::default().chunk_bounds(4, 64).increase_step(0);
        assert_eq!((c.min_chunk, c.max_chunk), (4, 64));
        assert_eq!(c.increase_step, 1, "a zero step would freeze the controller");
    }

    #[test]
    #[should_panic]
    fn inverted_chunk_bounds_are_rejected() {
        let _ = AdaptiveConfig::default().chunk_bounds(64, 4);
    }

    #[test]
    fn ingest_config_builder_style() {
        let cfg = IngestConfig::default()
            .batch_size(128)
            .pipeline_window(3)
            .adaptive(AdaptiveConfig::default());
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.pipeline_window, 3);
        assert!(cfg.adaptive.is_some());
        assert_eq!(IngestConfig::default().adaptive, None);
        assert_eq!(IngestConfig::default().pipeline_window, 1, "default keeps one chunk in flight");
    }
}
