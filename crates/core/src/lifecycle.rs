//! Query lifecycle: namespaces, TTLs and retention-driven eviction.
//!
//! The paper's model registers queries once and monitors them forever; real
//! subscriber populations churn. This module adds the bookkeeping side of
//! that churn — *when* a query should leave — while the actual removal stays
//! the ordinary [`unregister`](crate::MonitorBackend::unregister) path
//! (tombstone now, compaction later), so a monitor with lifecycle policies
//! active remains **bit-identical** to one whose caller issues the same
//! unregisters by hand at the same batch boundaries.
//!
//! Three forces remove a query:
//!
//! - **Expiry**: a per-query `max_age` (or its namespace's
//!   [`RetentionPolicy::max_age`]) sets a deadline in *stream time*
//!   (`registered_at + max_age`). The manager keeps deadlines in a lazy
//!   min-heap; front-ends probe it once per publish batch, which is O(1)
//!   when nothing is due and costs nothing at all when no policy is set.
//! - **Cap eviction**: a namespace's [`RetentionPolicy::max_queries`] bounds
//!   its live population; crossing the cap evicts per
//!   [`EvictionPolicy`] (`Oldest` registration or `LowestScore` top result),
//!   never the query that just registered.
//! - **Bulk forget**: `forget_namespace` tombstones a whole tenant at once
//!   and forces a compaction, the hausKI-style "filtered forget".
//!
//! Deadlines use **stream time** (document arrival timestamps), not wall
//! time: the monitor's only clock is the stream, decay already runs on it,
//! and it keeps every lifecycle decision deterministic and replayable.

use ctk_common::{FxHashMap, Namespace, NamespaceRegistry, OrdF64, QueryId, Timestamp};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-query registration options. [`Default`] reproduces the pre-lifecycle
/// behaviour exactly: default namespace, no expiry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// The namespace this query belongs to (intern names via the backend's
    /// `intern_namespace`).
    pub namespace: Namespace,
    /// Per-query TTL in stream-time units, measured from registration. When
    /// set, it overrides the namespace policy's `max_age` for this query.
    pub max_age: Option<f64>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { namespace: Namespace::DEFAULT, max_age: None }
    }
}

/// Which query a namespace over its cap gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// The longest-registered member (smallest query id — ids are monotone).
    Oldest,
    /// The member with the lowest current top-1 score (an empty result set
    /// scores 0); ties fall back to the smallest id. "Least interesting
    /// first", per hausKI's `LowestScore` purge strategy.
    LowestScore,
}

/// Per-namespace retention: how long members live and how many may coexist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Default TTL (stream time) for members without a per-query `max_age`.
    pub max_age: Option<f64>,
    /// Cap on live members; crossing it evicts per `eviction`.
    pub max_queries: Option<u64>,
    /// Victim selection when `max_queries` is exceeded.
    pub eviction: EvictionPolicy,
}

/// Observable lifecycle state of one namespace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NamespaceStats {
    /// The interned name ("" is the default namespace).
    pub namespace: String,
    /// Currently registered members.
    pub live: u64,
    /// Members removed by TTL expiry since process start.
    pub expired: u64,
    /// Members removed by cap eviction since process start.
    pub evicted: u64,
}

#[derive(Debug, Clone, Copy)]
struct QueryMeta {
    ns: Namespace,
    registered_at: Timestamp,
    /// The per-query override, kept so a later `set_policy` can recompute
    /// the effective deadline without losing it.
    max_age: Option<f64>,
    deadline: Option<Timestamp>,
}

#[derive(Debug, Clone, Copy, Default)]
struct NsCounters {
    live: u64,
    expired: u64,
    evicted: u64,
}

/// The lifecycle bookkeeping a monitor front-end owns: namespace interning,
/// retention policies, per-query deadlines and the expiry heap.
///
/// The manager never touches an engine. It answers "which queries are due"
/// and "who is over cap"; the front-end performs the removals through its
/// ordinary unregister path so sharded and single-engine monitors stay
/// bit-identical to an explicit-unregister oracle.
#[derive(Debug)]
pub struct LifecycleManager {
    registry: NamespaceRegistry,
    policies: FxHashMap<u16, RetentionPolicy>,
    /// Indexed by raw query id; `None` = never registered here or removed.
    meta: Vec<Option<QueryMeta>>,
    /// Lazy-deletion min-heap of `(deadline, qid)`. Entries may be stale
    /// (deadline recomputed, query removed); `take_expired` revalidates
    /// against `meta` on pop.
    deadlines: BinaryHeap<Reverse<(OrdF64, u32)>>,
    counters: Vec<NsCounters>,
    total_expired: u64,
    total_evicted: u64,
}

impl Default for LifecycleManager {
    fn default() -> Self {
        LifecycleManager {
            registry: NamespaceRegistry::new(),
            policies: FxHashMap::default(),
            meta: Vec::new(),
            deadlines: BinaryHeap::new(),
            counters: vec![NsCounters::default()],
            total_expired: 0,
            total_evicted: 0,
        }
    }
}

impl LifecycleManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a namespace name (see [`NamespaceRegistry::intern`]).
    pub fn intern(&mut self, name: &str) -> Namespace {
        let ns = self.registry.intern(name);
        if ns.index() >= self.counters.len() {
            self.counters.resize(ns.index() + 1, NsCounters::default());
        }
        ns
    }

    /// Look up an interned namespace without creating it.
    pub fn find(&self, name: &str) -> Option<Namespace> {
        self.registry.find(name)
    }

    /// The name behind a handle.
    pub fn name(&self, ns: Namespace) -> Option<&str> {
        self.registry.name(ns)
    }

    /// All interned names, handle order.
    pub fn names(&self) -> &[String] {
        self.registry.names()
    }

    /// Install (or replace) a namespace's retention policy and recompute the
    /// deadlines of its existing members (a member's own `max_age` still
    /// wins). Cap enforcement is the front-end's job — it follows up while
    /// it can consult result scores.
    pub fn set_policy(&mut self, ns: Namespace, policy: RetentionPolicy) {
        debug_assert!(ns.index() < self.counters.len(), "policy on un-interned namespace");
        self.policies.insert(ns.0, policy);
        for (raw, slot) in self.meta.iter_mut().enumerate() {
            let Some(meta) = slot else { continue };
            if meta.ns != ns {
                continue;
            }
            let effective = meta.max_age.or(policy.max_age);
            let deadline = effective.map(|age| meta.registered_at + age);
            if deadline != meta.deadline {
                meta.deadline = deadline;
                if let Some(d) = deadline {
                    self.deadlines.push(Reverse((OrdF64::new(d), raw as u32)));
                }
            }
        }
    }

    /// The namespace's policy, if one was set.
    pub fn policy(&self, ns: Namespace) -> Option<RetentionPolicy> {
        self.policies.get(&ns.0).copied()
    }

    /// Record a registration at stream time `now`. The deadline is
    /// `now + max_age` where `max_age` is the per-query override or the
    /// namespace policy's default.
    pub fn on_register(&mut self, qid: QueryId, opts: QueryOptions, now: Timestamp) {
        debug_assert!(opts.namespace.index() < self.counters.len(), "un-interned namespace");
        if self.meta.len() <= qid.index() {
            self.meta.resize(qid.index() + 1, None);
        }
        let effective =
            opts.max_age.or_else(|| self.policies.get(&opts.namespace.0).and_then(|p| p.max_age));
        let deadline = effective.map(|age| now + age);
        self.meta[qid.index()] = Some(QueryMeta {
            ns: opts.namespace,
            registered_at: now,
            max_age: opts.max_age,
            deadline,
        });
        if let Some(d) = deadline {
            self.deadlines.push(Reverse((OrdF64::new(d), qid.0)));
        }
        self.counters[opts.namespace.index()].live += 1;
    }

    /// Record an explicit removal (caller-initiated unregister or bulk
    /// forget). No-op if the query is unknown or already removed — expiry
    /// and eviction clear the slot first, so the follow-up engine
    /// unregister doesn't double-count.
    pub fn on_unregister(&mut self, qid: QueryId) -> Option<Namespace> {
        let meta = self.meta.get_mut(qid.index())?.take()?;
        self.counters[meta.ns.index()].live -= 1;
        Some(meta.ns)
    }

    /// Record a cap eviction (counts toward `evicted`; the caller performs
    /// the engine-side unregister afterwards).
    pub fn note_evicted(&mut self, qid: QueryId) {
        if let Some(meta) = self.meta.get_mut(qid.index()).and_then(Option::take) {
            self.counters[meta.ns.index()].live -= 1;
            self.counters[meta.ns.index()].evicted += 1;
            self.total_evicted += 1;
        }
    }

    /// Pop every query whose deadline is strictly before `now`, ascending by
    /// id. O(1) when nothing is due (a heap peek); the caller unregisters
    /// the returned ids through its normal path.
    pub fn take_expired(&mut self, now: Timestamp) -> Vec<QueryId> {
        let mut due = Vec::new();
        while let Some(&Reverse((d, _))) = self.deadlines.peek() {
            if d.get() >= now {
                break;
            }
            let Reverse((_, raw)) = self.deadlines.pop().unwrap();
            let qid = QueryId(raw);
            // Lazy deletion: the entry may be stale (query gone, or its
            // deadline recomputed by a later `set_policy`). Only the meta
            // slot is authoritative.
            let expired = match self.meta.get(qid.index()).and_then(|m| *m) {
                Some(meta) => meta.deadline.is_some_and(|dl| dl < now),
                None => false,
            };
            if expired {
                let meta = self.meta[qid.index()].take().unwrap();
                self.counters[meta.ns.index()].live -= 1;
                self.counters[meta.ns.index()].expired += 1;
                self.total_expired += 1;
                due.push(qid);
            }
        }
        due.sort_unstable();
        due
    }

    /// True when no query has a deadline (modulo stale heap entries): the
    /// per-batch expiry probe reduces to this one check.
    pub fn no_deadlines(&self) -> bool {
        self.deadlines.is_empty()
    }

    /// Live members of a namespace, ascending by id.
    pub fn members(&self, ns: Namespace) -> Vec<QueryId> {
        self.meta
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().filter(|meta| meta.ns == ns).map(|_| QueryId(i as u32)))
            .collect()
    }

    /// The namespace a live query belongs to.
    pub fn namespace_of(&self, qid: QueryId) -> Option<Namespace> {
        self.meta.get(qid.index()).and_then(|m| m.map(|meta| meta.ns))
    }

    /// `(registered_at, max_age, deadline)` of a live query, for snapshots.
    pub fn meta_of(&self, qid: QueryId) -> Option<(Timestamp, Option<f64>, Option<Timestamp>)> {
        self.meta
            .get(qid.index())
            .and_then(|m| m.map(|meta| (meta.registered_at, meta.max_age, meta.deadline)))
    }

    /// Pin a restored query's exact lifecycle coordinates (snapshot path):
    /// the registration time and deadline recorded at capture replace
    /// whatever `on_register` computed from the restore-time stream clock.
    pub fn restore_pin(&mut self, qid: QueryId, registered_at: Timestamp, deadline: Option<f64>) {
        if let Some(meta) = self.meta.get_mut(qid.index()).and_then(Option::as_mut) {
            meta.registered_at = registered_at;
            meta.deadline = deadline;
            if let Some(d) = deadline {
                // A stale entry from `on_register` may coexist; lazy
                // deletion discards it on pop.
                self.deadlines.push(Reverse((OrdF64::new(d), qid.0)));
            }
        }
    }

    /// Per-namespace lifecycle stats, handle order.
    pub fn stats(&self) -> Vec<NamespaceStats> {
        self.registry
            .names()
            .iter()
            .zip(&self.counters)
            .map(|(name, c)| NamespaceStats {
                namespace: name.clone(),
                live: c.live,
                expired: c.expired,
                evicted: c.evicted,
            })
            .collect()
    }

    /// `(expired, evicted)` lifetime totals across all namespaces.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_expired, self.total_evicted)
    }

    /// Installed policies as `(namespace, policy)` pairs, handle order (for
    /// snapshots).
    pub fn policies(&self) -> Vec<(Namespace, RetentionPolicy)> {
        let mut out: Vec<(Namespace, RetentionPolicy)> =
            self.policies.iter().map(|(&ns, &p)| (Namespace(ns), p)).collect();
        out.sort_unstable_by_key(|(ns, _)| ns.0);
        out
    }
}

/// Pick the cap-eviction victim among `candidates` (live members of the
/// namespace, ascending, the protected newcomer already excluded).
/// `top_score` maps a query to its current top-1 result score (0 when the
/// result set is empty). `None` when there is no candidate.
pub fn pick_victim<F>(
    candidates: &[QueryId],
    policy: EvictionPolicy,
    mut top_score: F,
) -> Option<QueryId>
where
    F: FnMut(QueryId) -> f64,
{
    match policy {
        EvictionPolicy::Oldest => candidates.first().copied(),
        EvictionPolicy::LowestScore => {
            candidates.iter().copied().min_by_key(|&q| (OrdF64::new(top_score(q)), q.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(ns: Namespace, max_age: Option<f64>) -> QueryOptions {
        QueryOptions { namespace: ns, max_age }
    }

    #[test]
    fn default_options_have_no_lifecycle() {
        let mut lc = LifecycleManager::new();
        lc.on_register(QueryId(0), QueryOptions::default(), 5.0);
        assert!(lc.no_deadlines());
        assert!(lc.take_expired(1e12).is_empty());
        assert_eq!(lc.namespace_of(QueryId(0)), Some(Namespace::DEFAULT));
        assert_eq!(lc.totals(), (0, 0));
    }

    #[test]
    fn per_query_ttl_expires_strictly_after_deadline() {
        let mut lc = LifecycleManager::new();
        lc.on_register(QueryId(0), opts(Namespace::DEFAULT, Some(10.0)), 0.0);
        assert!(lc.take_expired(10.0).is_empty(), "deadline is inclusive");
        assert_eq!(lc.take_expired(10.1), vec![QueryId(0)]);
        assert_eq!(lc.totals(), (1, 0));
        assert!(lc.take_expired(100.0).is_empty(), "expiry is recorded once");
        assert_eq!(lc.namespace_of(QueryId(0)), None);
    }

    #[test]
    fn namespace_policy_supplies_default_ttl_and_override_wins() {
        let mut lc = LifecycleManager::new();
        let ns = lc.intern("alerts");
        lc.set_policy(
            ns,
            RetentionPolicy {
                max_age: Some(5.0),
                max_queries: None,
                eviction: EvictionPolicy::Oldest,
            },
        );
        lc.on_register(QueryId(0), opts(ns, None), 0.0); // deadline 5
        lc.on_register(QueryId(1), opts(ns, Some(20.0)), 0.0); // deadline 20
        assert_eq!(lc.take_expired(6.0), vec![QueryId(0)]);
        assert!(lc.take_expired(19.0).is_empty());
        assert_eq!(lc.take_expired(21.0), vec![QueryId(1)]);
    }

    #[test]
    fn set_policy_recomputes_existing_members() {
        let mut lc = LifecycleManager::new();
        let ns = lc.intern("t");
        lc.on_register(QueryId(0), opts(ns, None), 10.0);
        assert!(lc.no_deadlines());
        lc.set_policy(
            ns,
            RetentionPolicy {
                max_age: Some(2.0),
                max_queries: None,
                eviction: EvictionPolicy::Oldest,
            },
        );
        assert!(!lc.no_deadlines());
        // Deadline is registered_at + age = 12, not set_policy-time based.
        assert!(lc.take_expired(12.0).is_empty());
        assert_eq!(lc.take_expired(12.5), vec![QueryId(0)]);
        // Raising the age leaves a stale heap entry that must not fire.
        lc.on_register(QueryId(1), opts(ns, None), 20.0); // deadline 22
        lc.set_policy(
            ns,
            RetentionPolicy {
                max_age: Some(9.0),
                max_queries: None,
                eviction: EvictionPolicy::Oldest,
            },
        );
        assert!(lc.take_expired(23.0).is_empty(), "stale shorter deadline is lazily dropped");
        assert_eq!(lc.take_expired(29.5), vec![QueryId(1)]);
    }

    #[test]
    fn expired_batch_comes_out_ascending_by_id() {
        let mut lc = LifecycleManager::new();
        // Deadlines in reverse id order.
        lc.on_register(QueryId(0), opts(Namespace::DEFAULT, Some(3.0)), 0.0);
        lc.on_register(QueryId(1), opts(Namespace::DEFAULT, Some(2.0)), 0.0);
        lc.on_register(QueryId(2), opts(Namespace::DEFAULT, Some(1.0)), 0.0);
        assert_eq!(lc.take_expired(10.0), vec![QueryId(0), QueryId(1), QueryId(2)]);
    }

    #[test]
    fn unregister_and_evict_update_counters() {
        let mut lc = LifecycleManager::new();
        let ns = lc.intern("t");
        lc.on_register(QueryId(0), opts(ns, Some(5.0)), 0.0);
        lc.on_register(QueryId(1), opts(ns, None), 0.0);
        lc.on_register(QueryId(2), opts(ns, None), 0.0);
        assert_eq!(lc.members(ns), vec![QueryId(0), QueryId(1), QueryId(2)]);
        assert_eq!(lc.on_unregister(QueryId(1)), Some(ns));
        assert_eq!(lc.on_unregister(QueryId(1)), None, "second removal is a no-op");
        lc.note_evicted(QueryId(2));
        assert_eq!(lc.take_expired(6.0), vec![QueryId(0)]);
        let stats = lc.stats();
        assert_eq!(stats.len(), 2, "default namespace plus the interned one");
        assert_eq!(stats[1].namespace, "t");
        assert_eq!((stats[1].live, stats[1].expired, stats[1].evicted), (0, 1, 1));
        assert_eq!(lc.totals(), (1, 1));
    }

    #[test]
    fn restore_pin_overrides_the_computed_deadline() {
        let mut lc = LifecycleManager::new();
        lc.on_register(QueryId(0), opts(Namespace::DEFAULT, Some(100.0)), 50.0);
        lc.restore_pin(QueryId(0), 7.0, Some(30.0));
        assert_eq!(lc.meta_of(QueryId(0)), Some((7.0, Some(100.0), Some(30.0))));
        assert_eq!(lc.take_expired(31.0), vec![QueryId(0)]);
    }

    #[test]
    fn victim_selection_policies() {
        let c = [QueryId(3), QueryId(5), QueryId(9)];
        assert_eq!(pick_victim(&c, EvictionPolicy::Oldest, |_| 1.0), Some(QueryId(3)));
        let scores = |q: QueryId| match q.0 {
            3 => 0.8,
            5 => 0.2,
            _ => 0.5,
        };
        assert_eq!(pick_victim(&c, EvictionPolicy::LowestScore, scores), Some(QueryId(5)));
        // Ties break toward the smallest id; empty candidate set is None.
        assert_eq!(pick_victim(&c, EvictionPolicy::LowestScore, |_| 0.0), Some(QueryId(3)));
        assert_eq!(pick_victim(&[], EvictionPolicy::Oldest, |_| 0.0), None);
    }
}
