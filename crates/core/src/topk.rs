//! Per-query top-k result state.
//!
//! Each registered CTQD owns a bounded min-heap of its `k` best documents.
//! The heap root is the k-th best score `S_k(q)` — the paper's "normalized
//! factor" that turns preference weights into the prunable form `u = w/S_k`.
//! A query with fewer than `k` results reports `S_k = 0`, making `u = +∞`:
//! such queries can never be pruned and are always evaluated when touched
//! (warm-up semantics, DESIGN.md §1).
//!
//! Every change to the result set bumps a **version** counter; the lazy bound
//! structures (`VersionedMaxTracker`) use it to invalidate stale maxima.

use ctk_common::{DocId, ScoredDoc};
use std::collections::BinaryHeap;

/// Outcome of offering a candidate to a result set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Offer {
    /// The candidate did not beat the current k-th best.
    Rejected,
    /// Inserted; `evicted` is the entry that fell out (None while filling).
    Inserted { evicted: Option<ScoredDoc> },
}

/// Bounded top-k set with threshold and version tracking.
#[derive(Debug, Clone)]
pub struct TopKState {
    k: u32,
    version: u32,
    // [`ScoredDoc`]'s order makes "ranks better" compare as `Less`, so a
    // plain max-heap keeps the *worst* entry (lowest score, largest doc id
    // on ties) at the root — exactly the k-th best we need for `S_k`.
    heap: BinaryHeap<ScoredDoc>,
}

impl TopKState {
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        TopKState { k, version: 0, heap: BinaryHeap::with_capacity(k as usize + 1) }
    }

    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k as usize
    }

    /// Monotone counter bumped on every mutation of the set.
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// `S_k(q)`: score of the k-th best document, or `0.0` while unfilled.
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map(|r| r.score.get()).unwrap_or(0.0)
        } else {
            0.0
        }
    }

    /// Normalized preference `u = w/S_k` for a weight of this query.
    /// `+inf` while the set is unfilled.
    #[inline]
    pub fn normalized(&self, weight: f64) -> f64 {
        let t = self.threshold();
        if t > 0.0 {
            weight / t
        } else {
            f64::INFINITY
        }
    }

    /// Offer a candidate. Exact qualify test (pruning bounds elsewhere must
    /// be `>=`-lenient w.r.t. this): while unfilled always insert; when full,
    /// insert iff the candidate ranks strictly better than the current k-th
    /// (higher score, or equal score with smaller doc id).
    pub fn offer(&mut self, cand: ScoredDoc) -> Offer {
        if !self.is_full() {
            self.heap.push(cand);
            self.version += 1;
            return Offer::Inserted { evicted: None };
        }
        let worst = *self.heap.peek().expect("full heap");
        if cand.cmp(&worst) == std::cmp::Ordering::Less {
            // `Less` in ScoredDoc order == ranks better.
            let evicted = self.heap.pop();
            self.heap.push(cand);
            self.version += 1;
            Offer::Inserted { evicted }
        } else {
            Offer::Rejected
        }
    }

    /// Multiply every stored score by `r > 0` (landmark renormalization).
    /// Order is preserved, so the heap shape stays valid.
    pub fn rescale(&mut self, r: f64) {
        debug_assert!(r > 0.0);
        let mut v = std::mem::take(&mut self.heap).into_vec();
        for e in &mut v {
            e.score = ctk_common::OrdF64::new(e.score.get() * r);
        }
        self.heap = BinaryHeap::from(v);
        self.version += 1;
    }

    /// Remove a document (sliding-window expiry). O(k). Returns true when
    /// the document was present.
    pub fn remove_doc(&mut self, doc: DocId) -> bool {
        let before = self.heap.len();
        let v: Vec<ScoredDoc> =
            std::mem::take(&mut self.heap).into_iter().filter(|e| e.doc != doc).collect();
        self.heap = BinaryHeap::from(v);
        if self.heap.len() != before {
            self.version += 1;
            true
        } else {
            false
        }
    }

    /// The current results, best first.
    pub fn sorted_results(&self) -> Vec<ScoredDoc> {
        let mut v: Vec<ScoredDoc> = self.heap.iter().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(doc: u64, score: f64) -> ScoredDoc {
        ScoredDoc::new(DocId(doc), score)
    }

    #[test]
    fn fills_then_thresholds() {
        let mut t = TopKState::new(2);
        assert_eq!(t.threshold(), 0.0);
        assert_eq!(t.normalized(0.5), f64::INFINITY);
        assert!(matches!(t.offer(sd(1, 1.0)), Offer::Inserted { evicted: None }));
        assert_eq!(t.threshold(), 0.0, "still unfilled");
        assert!(matches!(t.offer(sd(2, 3.0)), Offer::Inserted { evicted: None }));
        assert_eq!(t.threshold(), 1.0, "k-th best");
        assert_eq!(t.normalized(0.5), 0.5);
    }

    #[test]
    fn eviction_of_worst() {
        let mut t = TopKState::new(2);
        t.offer(sd(1, 1.0));
        t.offer(sd(2, 3.0));
        match t.offer(sd(3, 2.0)) {
            Offer::Inserted { evicted: Some(e) } => assert_eq!(e, sd(1, 1.0)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(t.threshold(), 2.0);
        assert!(matches!(t.offer(sd(4, 1.5)), Offer::Rejected));
    }

    #[test]
    fn tie_breaking_matches_scored_doc_order() {
        let mut t = TopKState::new(1);
        t.offer(sd(5, 2.0));
        // Equal score, smaller doc id ranks better -> replaces.
        assert!(matches!(t.offer(sd(3, 2.0)), Offer::Inserted { .. }));
        // Equal score, larger doc id -> rejected.
        assert!(matches!(t.offer(sd(9, 2.0)), Offer::Rejected));
        assert_eq!(t.sorted_results(), vec![sd(3, 2.0)]);
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut t = TopKState::new(1);
        let v0 = t.version();
        t.offer(sd(1, 1.0));
        let v1 = t.version();
        assert!(v1 > v0);
        t.offer(sd(2, 0.5)); // rejected
        assert_eq!(t.version(), v1);
        t.rescale(0.5);
        assert!(t.version() > v1);
    }

    #[test]
    fn rescale_preserves_order_and_scales_threshold() {
        let mut t = TopKState::new(3);
        for (d, s) in [(1, 5.0), (2, 1.0), (3, 3.0)] {
            t.offer(sd(d, s));
        }
        t.rescale(0.1);
        assert!((t.threshold() - 0.1).abs() < 1e-12);
        let docs: Vec<u64> = t.sorted_results().iter().map(|x| x.doc.0).collect();
        assert_eq!(docs, vec![1, 3, 2]);
    }

    #[test]
    fn remove_doc_reopens_the_set() {
        let mut t = TopKState::new(2);
        t.offer(sd(1, 1.0));
        t.offer(sd(2, 2.0));
        assert!(t.remove_doc(DocId(2)));
        assert!(!t.remove_doc(DocId(2)));
        assert_eq!(t.threshold(), 0.0, "unfilled again");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorted_results_best_first() {
        let mut t = TopKState::new(3);
        for (d, s) in [(10, 0.5), (11, 2.5), (12, 1.5)] {
            t.offer(sd(d, s));
        }
        let r = t.sorted_results();
        assert_eq!(r[0], sd(11, 2.5));
        assert_eq!(r[2], sd(10, 0.5));
    }
}
