//! Work counters.
//!
//! The paper's primary metric is wall-clock response time per stream event,
//! but its *optimality* claim (Lemma 2: MRIO performs the fewest iterations /
//! considers the fewest queries of any ID-ordering algorithm) is about work
//! counts. Every algorithm reports both per-event and cumulative counters so
//! the `optimality` experiment (E4) can compare them directly.

use serde::{Deserialize, Serialize};

/// Counters for a single stream event (one `process` call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStats {
    /// Queries fully scored ("considered queries" in the paper's sense).
    pub full_evaluations: u64,
    /// Traversal iterations (pivot selections for the ID-ordering family;
    /// list-advance steps for the TA family).
    pub iterations: u64,
    /// Postings touched (cursor reads, accumulator updates).
    pub postings_accessed: u64,
    /// Upper-bound terms computed (prefix sums, zone queries).
    pub bound_computations: u64,
    /// Result-set insertions caused by the document.
    pub updates: u64,
    /// Document terms that had a non-empty list ("m" in the paper).
    pub matched_lists: u64,
}

impl EventStats {
    /// Fold this event into a cumulative record.
    pub fn accumulate_into(&self, cum: &mut CumulativeStats) {
        cum.events += 1;
        cum.full_evaluations += self.full_evaluations;
        cum.iterations += self.iterations;
        cum.postings_accessed += self.postings_accessed;
        cum.bound_computations += self.bound_computations;
        cum.updates += self.updates;
        cum.matched_lists += self.matched_lists;
    }
}

/// Counters accumulated over the lifetime of an algorithm instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CumulativeStats {
    pub events: u64,
    pub full_evaluations: u64,
    pub iterations: u64,
    pub postings_accessed: u64,
    pub bound_computations: u64,
    pub updates: u64,
    pub matched_lists: u64,
    /// Landmark renormalizations performed.
    pub renormalizations: u64,
}

impl CumulativeStats {
    /// Average full evaluations per event.
    pub fn avg_full_evaluations(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.full_evaluations as f64 / self.events as f64
        }
    }

    /// Average iterations per event.
    pub fn avg_iterations(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.iterations as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut cum = CumulativeStats::default();
        let e = EventStats {
            full_evaluations: 3,
            iterations: 7,
            postings_accessed: 20,
            bound_computations: 9,
            updates: 1,
            matched_lists: 4,
        };
        e.accumulate_into(&mut cum);
        e.accumulate_into(&mut cum);
        assert_eq!(cum.events, 2);
        assert_eq!(cum.full_evaluations, 6);
        assert_eq!(cum.avg_full_evaluations(), 3.0);
        assert_eq!(cum.avg_iterations(), 7.0);
    }

    #[test]
    fn empty_averages_are_zero() {
        let cum = CumulativeStats::default();
        assert_eq!(cum.avg_full_evaluations(), 0.0);
        assert_eq!(cum.avg_iterations(), 0.0);
    }
}
