//! Work counters.
//!
//! The paper's primary metric is wall-clock response time per stream event,
//! but its *optimality* claim (Lemma 2: MRIO performs the fewest iterations /
//! considers the fewest queries of any ID-ordering algorithm) is about work
//! counts. Every algorithm reports both per-event and cumulative counters so
//! the `optimality` experiment (E4) can compare them directly.

use serde::{Deserialize, Serialize};

/// Counters for a single stream event (one `process` call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStats {
    /// Queries fully scored ("considered queries" in the paper's sense).
    pub full_evaluations: u64,
    /// Traversal iterations (pivot selections for the ID-ordering family;
    /// list-advance steps for the TA family).
    pub iterations: u64,
    /// Postings touched (cursor reads, accumulator updates).
    pub postings_accessed: u64,
    /// Upper-bound terms computed (prefix sums, zone queries).
    pub bound_computations: u64,
    /// Result-set insertions caused by the document.
    pub updates: u64,
    /// Document terms that had a non-empty list ("m" in the paper).
    pub matched_lists: u64,
    /// Index zones skipped wholesale by a bound (the doc-parallel bounded
    /// walk; 0 for exhaustive walks).
    pub zones_skipped: u64,
    /// Postings slots covered by skipped zones — work a bound proved
    /// unnecessary. Counts slots (live + tombstoned), so
    /// `postings_accessed + postings_skipped >=` the exhaustive walk's
    /// `postings_accessed` on the same event.
    pub postings_skipped: u64,
    /// Queries removed by TTL expiry at this batch boundary. Set by the
    /// monitor front-ends (lifecycle layer), never by an engine: oracle
    /// comparisons of raw engine stats are unaffected.
    pub expired: u64,
    /// Queries removed by retention-cap eviction at this batch boundary.
    /// Front-end-only, like `expired`.
    pub evicted: u64,
}

impl EventStats {
    /// Fold another event record into this one, field by field. This is the
    /// single merge point for cross-shard aggregation: when a counter is
    /// added to the struct, extending `merge` (and `accumulate_into`) keeps
    /// every merger — sharded monitor, batch drains — consistent at once.
    pub fn merge(&mut self, other: &EventStats) {
        self.full_evaluations += other.full_evaluations;
        self.iterations += other.iterations;
        self.postings_accessed += other.postings_accessed;
        self.bound_computations += other.bound_computations;
        self.updates += other.updates;
        self.matched_lists += other.matched_lists;
        self.zones_skipped += other.zones_skipped;
        self.postings_skipped += other.postings_skipped;
        self.expired += other.expired;
        self.evicted += other.evicted;
    }

    /// Fold this event into a cumulative record.
    pub fn accumulate_into(&self, cum: &mut CumulativeStats) {
        cum.events += 1;
        cum.full_evaluations += self.full_evaluations;
        cum.iterations += self.iterations;
        cum.postings_accessed += self.postings_accessed;
        cum.bound_computations += self.bound_computations;
        cum.updates += self.updates;
        cum.matched_lists += self.matched_lists;
        cum.zones_skipped += self.zones_skipped;
        cum.postings_skipped += self.postings_skipped;
        cum.expired += self.expired;
        cum.evicted += self.evicted;
    }
}

impl std::ops::AddAssign<&EventStats> for EventStats {
    fn add_assign(&mut self, other: &EventStats) {
        self.merge(other);
    }
}

/// Counters accumulated over the lifetime of an algorithm instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CumulativeStats {
    pub events: u64,
    pub full_evaluations: u64,
    pub iterations: u64,
    pub postings_accessed: u64,
    pub bound_computations: u64,
    pub updates: u64,
    pub matched_lists: u64,
    pub zones_skipped: u64,
    pub postings_skipped: u64,
    pub expired: u64,
    pub evicted: u64,
    /// Landmark renormalizations performed.
    pub renormalizations: u64,
}

impl CumulativeStats {
    /// Average full evaluations per event.
    pub fn avg_full_evaluations(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.full_evaluations as f64 / self.events as f64
        }
    }

    /// Average iterations per event.
    pub fn avg_iterations(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.iterations as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut cum = CumulativeStats::default();
        let e = EventStats {
            full_evaluations: 3,
            iterations: 7,
            postings_accessed: 20,
            bound_computations: 9,
            updates: 1,
            matched_lists: 4,
            zones_skipped: 2,
            postings_skipped: 50,
            expired: 1,
            evicted: 2,
        };
        e.accumulate_into(&mut cum);
        e.accumulate_into(&mut cum);
        assert_eq!(cum.events, 2);
        assert_eq!(cum.full_evaluations, 6);
        assert_eq!(cum.zones_skipped, 4);
        assert_eq!(cum.postings_skipped, 100);
        assert_eq!((cum.expired, cum.evicted), (2, 4));
        assert_eq!(cum.avg_full_evaluations(), 3.0);
        assert_eq!(cum.avg_iterations(), 7.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = EventStats {
            full_evaluations: 1,
            iterations: 2,
            postings_accessed: 3,
            bound_computations: 4,
            updates: 5,
            matched_lists: 6,
            zones_skipped: 7,
            postings_skipped: 8,
            expired: 9,
            evicted: 10,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            EventStats {
                full_evaluations: 2,
                iterations: 4,
                postings_accessed: 6,
                bound_computations: 8,
                updates: 10,
                matched_lists: 12,
                zones_skipped: 14,
                postings_skipped: 16,
                expired: 18,
                evicted: 20,
            }
        );
        let mut c = EventStats::default();
        c += &a;
        assert_eq!(c, a);
    }

    #[test]
    fn empty_averages_are_zero() {
        let cum = CumulativeStats::default();
        assert_eq!(cum.avg_full_evaluations(), 0.0);
        assert_eq!(cum.avg_iterations(), 0.0);
    }
}
