//! Scoring and recency decay (paper §II, Eq. 1).
//!
//! The paper scores a document as `S(q,d) = c(q,d) / e^(−λ·Δτ_d)` where
//! `Δτ_d` is the arrival time of `d` relative to a landmark. Dividing by
//! `e^(−λΔτ)` *inflates newer documents*, which is the order-preserving form
//! of exponential decay: at any instant, ranking by `S` equals ranking by
//! `c·e^(−λ·age)`, but `S` never changes once assigned — so stored results
//! stay valid as time passes and only document arrivals trigger work.
//!
//! Because the inflation factor grows without bound, the landmark must
//! occasionally be advanced and all stored scores rescaled by a common
//! positive factor (an order-preserving operation). [`DecayModel`] owns that
//! bookkeeping.

use ctk_common::Timestamp;

/// Default headroom: renormalize when `λ·Δτ` exceeds this exponent. `e^60`
/// ≈ 1.1e26 keeps every product comfortably inside `f64` range while making
/// renormalizations rare.
pub const DEFAULT_MAX_EXPONENT: f64 = 60.0;

/// Exponential recency model with landmark renormalization.
#[derive(Debug, Clone)]
pub struct DecayModel {
    lambda: f64,
    landmark: Timestamp,
    max_exponent: f64,
}

impl DecayModel {
    /// `lambda >= 0`; `lambda == 0` disables decay entirely (pure cosine).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be finite and >= 0");
        DecayModel { lambda, landmark: 0.0, max_exponent: DEFAULT_MAX_EXPONENT }
    }

    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    #[inline]
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }

    /// The per-document pruning target `θ_d = e^(−λ·Δτ_d)` (see DESIGN.md
    /// §1): document `d` enters query `q` iff `Σ f·u ≥ θ_d`. Always in
    /// `(0, 1]` for `τ ≥ landmark`.
    #[inline]
    pub fn theta(&self, arrival: Timestamp) -> f64 {
        (-self.lambda * (arrival - self.landmark).max(0.0)).exp()
    }

    /// The inflation factor `1/θ_d` applied to raw cosine scores.
    #[inline]
    pub fn amplification(&self, arrival: Timestamp) -> f64 {
        (self.lambda * (arrival - self.landmark).max(0.0)).exp()
    }

    /// True when the inflation exponent has outgrown the headroom and a
    /// landmark renormalization is due.
    #[inline]
    pub fn needs_renorm(&self, arrival: Timestamp) -> bool {
        self.lambda * (arrival - self.landmark) > self.max_exponent
    }

    /// Advance the landmark to `arrival` and return the factor `r < 1` by
    /// which **all stored scores (and thresholds) must be multiplied** to
    /// stay consistent. Relative order of scores is unchanged.
    #[must_use = "the returned factor must be applied to every stored score"]
    pub fn renormalize(&mut self, arrival: Timestamp) -> f64 {
        let r = (-self.lambda * (arrival - self.landmark).max(0.0)).exp();
        self.landmark = arrival.max(self.landmark);
        r
    }

    /// Reinstate a landmark captured from another instance (snapshot
    /// restore). Stored scores are expressed relative to the landmark, so a
    /// restored engine must adopt the snapshot's landmark *before* seeding
    /// any scores — otherwise old-frame scores get compared (and later
    /// renormalized) in the new frame and thresholds silently corrupt.
    pub fn restore_landmark(&mut self, landmark: Timestamp) {
        assert!(landmark.is_finite() && landmark >= 0.0, "landmark must be finite and >= 0");
        self.landmark = landmark;
    }

    /// Override the renormalization headroom (tests use small values to
    /// exercise the renorm path frequently).
    pub fn with_max_exponent(mut self, max_exponent: f64) -> Self {
        assert!(max_exponent > 0.0);
        self.max_exponent = max_exponent;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_decreases_with_time() {
        let d = DecayModel::new(0.1);
        assert!((d.theta(0.0) - 1.0).abs() < 1e-12);
        assert!(d.theta(10.0) < d.theta(5.0));
        assert!((d.theta(10.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn amplification_is_inverse_theta() {
        let d = DecayModel::new(0.05);
        for t in [0.0, 3.0, 77.7] {
            assert!((d.theta(t) * d.amplification(t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_zero_disables_decay() {
        let d = DecayModel::new(0.0);
        assert_eq!(d.theta(1e9), 1.0);
        assert_eq!(d.amplification(1e9), 1.0);
        assert!(!d.needs_renorm(1e12));
    }

    #[test]
    fn renormalization_preserves_qualify_test() {
        let mut d = DecayModel::new(0.01).with_max_exponent(5.0);
        // A document scored before the renorm.
        let s_old = 0.8 * d.amplification(400.0); // exponent 4.0
        assert!(d.needs_renorm(600.0));
        let r = d.renormalize(600.0);
        assert!(r < 1.0);
        let s_rescaled = s_old * r;
        // The same document scored directly under the new landmark
        // (τ < landmark clamps).
        let s_fresh = 0.8 * d.amplification(400.0) * d.theta(400.0);
        // Direct algebra: s under new landmark = 0.8·e^{0.01·(400−600)}.
        let expect = 0.8 * (0.01f64 * (400.0 - 600.0)).exp();
        assert!((s_rescaled - expect).abs() < 1e-12, "{s_rescaled} vs {expect}");
        let _ = s_fresh;
    }

    #[test]
    fn needs_renorm_threshold() {
        let d = DecayModel::new(1.0).with_max_exponent(10.0);
        assert!(!d.needs_renorm(10.0));
        assert!(d.needs_renorm(10.1));
    }

    #[test]
    fn pre_landmark_arrivals_are_clamped() {
        let mut d = DecayModel::new(0.5);
        let _ = d.renormalize(100.0);
        assert_eq!(d.theta(50.0), 1.0, "stale arrival clamps to landmark");
        assert_eq!(d.amplification(50.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_lambda_rejected() {
        let _ = DecayModel::new(-0.1);
    }

    #[test]
    fn restore_landmark_matches_original_frame() {
        let mut original = DecayModel::new(0.1).with_max_exponent(5.0);
        let _ = original.renormalize(80.0);
        let mut restored = DecayModel::new(0.1);
        restored.restore_landmark(original.landmark());
        assert_eq!(restored.landmark(), 80.0);
        assert_eq!(original.theta(90.0), restored.theta(90.0));
        assert_eq!(original.amplification(90.0), restored.amplification(90.0));
    }

    #[test]
    #[should_panic]
    fn restore_landmark_rejects_non_finite() {
        DecayModel::new(0.1).restore_landmark(f64::NAN);
    }
}
