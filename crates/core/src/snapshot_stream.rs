//! Streaming snapshot serialization: capture a monitor to any
//! [`io::Write`] sink without materializing the full JSON tree.
//!
//! [`Snapshot::to_json`] builds one `serde::Value` tree for the whole
//! capture and then prints it — at large query populations that tree (plus
//! the output `String`) roughly doubles the monitor's resident memory at
//! the worst possible moment, mid-capture on a loaded server.
//! [`SnapshotWriter`] produces **byte-identical** output by streaming it in
//! pieces: the snapshot envelope (version, stream position, namespaces,
//! policies) is serialized once with an empty `shards` list, and each
//! shard section's queries are serialized in small chunks by a pool of
//! worker threads, re-indented, and spliced into the envelope in order.
//! Peak transient memory is a handful of in-flight chunks, independent of
//! the capture size (measured: [`SnapshotStreamStats::peak_buffered_bytes`]).
//!
//! The splicing is sound because the JSON shim's pretty printer is strictly
//! line-structural: it emits two-space indentation, never a literal newline
//! inside a string (control characters are `\n`-escaped), and an empty
//! array always prints as `[]`. A standalone pretty-printed subtree
//! therefore embeds exactly at depth *d* by prefixing every newline with
//! `2·d` spaces — byte-for-byte what the one-pass printer would have
//! written. Both facts are pinned by the byte-equality tests below, so a
//! printer change breaks the build, not the format.
//!
//! Restore needs no counterpart: the streamed output **is** the v3 format,
//! so [`Snapshot::from_json`] (and the server's `POST /restore`) accept it
//! unchanged.

use crate::monitor::{ShardSnapshot, Snapshot, SnapshotQuery};
use crossbeam::channel::bounded;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Marker where the envelope's (empty) `shards` array sits; everything
/// after the `[` is the envelope's tail.
const SHARDS_SPLIT: &str = "\"shards\": []";
/// Marker where a section envelope's (empty) `queries` array sits.
const QUERIES_SPLIT: &str = "\"queries\": []";

/// Streams a [`Snapshot`] to a sink, byte-identical to
/// [`Snapshot::to_json`], serializing query chunks on worker threads.
///
/// ```
/// use ctk_core::{Monitor, MonitorBackend, Naive, SnapshotWriter};
/// use ctk_common::{QuerySpec, TermId};
///
/// let mut m = Monitor::new(Naive::new(0.0));
/// m.register(QuerySpec::uniform(&[TermId(1)], 2).unwrap());
/// let snapshot = MonitorBackend::snapshot(&m);
/// let mut out = Vec::new();
/// let stats = SnapshotWriter::new().write(&snapshot, &mut out).unwrap();
/// assert_eq!(out, snapshot.to_json().unwrap().into_bytes());
/// assert_eq!(stats.total_bytes, out.len() as u64);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    workers: usize,
    chunk_queries: usize,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

/// What one [`SnapshotWriter::write`] call did: output size, job shape, and
/// the writer-side memory high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStreamStats {
    /// Bytes written to the sink (equals the [`Snapshot::to_json`] length).
    pub total_bytes: u64,
    /// Shard sections streamed.
    pub sections: usize,
    /// Query chunks serialized by the worker pool.
    pub query_jobs: usize,
    /// High-water mark of serialized-but-not-yet-written bytes held in the
    /// writer's reorder buffer. Bounded by a few chunks regardless of the
    /// capture size — the measured "never materializes the tree" claim.
    pub peak_buffered_bytes: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// One unit of worker parallelism: a contiguous run of one section's
/// queries, identified by its position in the global write order.
struct Job<'a> {
    section: usize,
    queries: &'a [SnapshotQuery],
}

impl SnapshotWriter {
    /// A writer with the default pool (up to 8 workers, chunks of 64
    /// queries).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        SnapshotWriter { workers, chunk_queries: 64 }
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set how many queries each worker job serializes (clamped to at
    /// least 1). Smaller chunks lower peak memory; larger chunks lower
    /// coordination overhead.
    pub fn chunk_queries(mut self, chunk: usize) -> Self {
        self.chunk_queries = chunk.max(1);
        self
    }

    /// Stream `snapshot` to `out`, byte-identical to
    /// [`Snapshot::to_json`]. Returns the run's [`SnapshotStreamStats`].
    pub fn write<W: Write>(
        &self,
        snapshot: &Snapshot,
        out: &mut W,
    ) -> io::Result<SnapshotStreamStats> {
        let mut stats = SnapshotStreamStats {
            sections: snapshot.shards.len(),
            workers: self.workers,
            ..Default::default()
        };
        let mut sink = CountingWrite { inner: out, written: 0 };

        // The envelope: the whole snapshot minus its sections. `shards` is
        // the struct's last field, so the envelope splits cleanly at the
        // empty array.
        let envelope = pretty(&Snapshot {
            version: snapshot.version,
            lambda: snapshot.lambda,
            next_doc: snapshot.next_doc,
            last_arrival: snapshot.last_arrival,
            namespaces: snapshot.namespaces.clone(),
            policies: snapshot.policies.clone(),
            shards: Vec::new(),
        })?;
        if snapshot.shards.is_empty() {
            sink.write_all(envelope.as_bytes())?;
            stats.total_bytes = sink.written;
            return Ok(stats);
        }
        let split = envelope
            .rfind(SHARDS_SPLIT)
            .expect("the envelope of a v3 snapshot ends with an empty shards array");
        // Head ends with the array's `[`; the tail is the envelope's close.
        let (head, tail) = envelope.split_at(split + SHARDS_SPLIT.len() - 1);
        sink.write_all(head.as_bytes())?;

        // One job per run of `chunk_queries` queries, global write order.
        let jobs: Vec<Job<'_>> = snapshot
            .shards
            .iter()
            .enumerate()
            .flat_map(|(section, s)| {
                s.queries.chunks(self.chunk_queries).map(move |queries| Job { section, queries })
            })
            .collect();
        stats.query_jobs = jobs.len();

        self.stream_sections(snapshot, &jobs, &mut sink, &mut stats)?;

        // Close the shards array, then the envelope's tail (`\n}`).
        sink.write_all(b"\n  ]")?;
        sink.write_all(&tail.as_bytes()[1..])?; // skip the split's `]`
        stats.total_bytes = sink.written;
        Ok(stats)
    }

    /// Serialize every job on the pool and splice sections into the sink in
    /// capture order.
    fn stream_sections<W: Write>(
        &self,
        snapshot: &Snapshot,
        jobs: &[Job<'_>],
        sink: &mut CountingWrite<'_, W>,
        stats: &mut SnapshotStreamStats,
    ) -> io::Result<()> {
        // The writer hands out job indices through a bounded queue and never
        // dispatches more than `lookahead` jobs past what it has written.
        // That window — not channel backpressure — is what bounds buffered
        // bytes: a bounded result channel alone cannot, because every recv
        // while waiting for a straggler frees a slot and lets fast workers
        // run arbitrarily far ahead.
        let lookahead = (self.workers * 2).max(2);
        let (job_tx, job_rx) = bounded::<usize>(lookahead);
        let job_rx = std::sync::Mutex::new(job_rx);
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(usize, serde_json::Result<String>)>();
        std::thread::scope(|scope| -> io::Result<()> {
            // Owned by the scope body so it drops (closing the job queue and
            // releasing the workers) before the scope joins them.
            let job_tx = job_tx;
            for _ in 0..self.workers.min(jobs.len()) {
                let job_rx = &job_rx;
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    // The queue is multi-producer single-consumer underneath;
                    // a mutex turns it into the work queue the pool shares.
                    let Ok(i) = job_rx.lock().expect("job queue poisoned").recv() else {
                        break;
                    };
                    if res_tx.send((i, serialize_chunk(jobs[i].queries))).is_err() {
                        break; // writer bailed on an I/O error
                    }
                });
            }
            drop(res_tx);

            // Reorder buffer: results arrive in completion order, the sink
            // needs them in job order. `dispatched - next_write <= lookahead`
            // holds throughout, so at most `lookahead` serialized chunks are
            // ever resident (in the buffer or in flight).
            let mut buffered: BTreeMap<usize, String> = BTreeMap::new();
            let mut buffered_bytes = 0u64;
            let mut dispatched = 0usize;
            let mut next_write = 0usize;
            let mut take = |want: usize,
                            dispatched: &mut usize,
                            buffered: &mut BTreeMap<usize, String>,
                            buffered_bytes: &mut u64|
             -> io::Result<String> {
                while *dispatched < jobs.len() && *dispatched < want + lookahead {
                    job_tx
                        .send(*dispatched)
                        .map_err(|_| io::Error::other("snapshot worker pool died"))?;
                    *dispatched += 1;
                }
                loop {
                    if let Some(text) = buffered.remove(&want) {
                        *buffered_bytes -= text.len() as u64;
                        return Ok(text);
                    }
                    let (i, result) =
                        res_rx.recv().map_err(|_| io::Error::other("snapshot worker pool died"))?;
                    let text = result.map_err(io::Error::from)?;
                    *buffered_bytes += text.len() as u64;
                    stats.peak_buffered_bytes = stats.peak_buffered_bytes.max(*buffered_bytes);
                    buffered.insert(i, text);
                }
            };

            for (section_idx, section) in snapshot.shards.iter().enumerate() {
                if section_idx > 0 {
                    sink.write_all(b",")?;
                }
                sink.write_all(b"\n    ")?;
                // The section envelope, re-indented to its depth in the
                // shards array.
                let envelope = indent(
                    &pretty(&ShardSnapshot { landmark: section.landmark, queries: Vec::new() })?,
                    "    ",
                );
                if section.queries.is_empty() {
                    sink.write_all(envelope.as_bytes())?;
                    continue;
                }
                let split = envelope
                    .rfind(QUERIES_SPLIT)
                    .expect("a section envelope ends with an empty queries array");
                let (head, tail) = envelope.split_at(split + QUERIES_SPLIT.len() - 1);
                sink.write_all(head.as_bytes())?;
                let section_jobs =
                    jobs[next_write..].iter().take_while(|j| j.section == section_idx).count();
                for chunk in 0..section_jobs {
                    if chunk > 0 {
                        sink.write_all(b",")?;
                    }
                    let text =
                        take(next_write, &mut dispatched, &mut buffered, &mut buffered_bytes)?;
                    sink.write_all(text.as_bytes())?;
                    next_write += 1;
                }
                sink.write_all(b"\n      ]")?;
                sink.write_all(&tail.as_bytes()[1..])?; // skip the split's `]`
            }
            Ok(())
        })
    }
}

/// Serialize one run of queries as `shards[i].queries` array elements:
/// each query pretty-printed standalone, re-indented to element depth, and
/// prefixed with the element's newline; elements joined with `,`.
fn serialize_chunk(queries: &[SnapshotQuery]) -> serde_json::Result<String> {
    let mut out = String::new();
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        ");
        out.push_str(&indent(&serde_json::to_string_pretty(q)?, "        "));
    }
    Ok(out)
}

fn pretty<T: serde::Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string_pretty(value).map_err(io::Error::from)
}

/// Re-indent a standalone pretty-printed subtree for embedding: add
/// `extra` after every newline. Exact because the printer never emits a
/// literal newline inside a string.
fn indent(s: &str, extra: &str) -> String {
    let mut out = String::with_capacity(s.len() + extra.len() * 8);
    for c in s.chars() {
        out.push(c);
        if c == '\n' {
            out.push_str(extra);
        }
    }
    out
}

/// Counts what flows through so the caller gets exact output sizes.
struct CountingWrite<'a, W: Write> {
    inner: &'a mut W,
    written: u64,
}

impl<W: Write> Write for CountingWrite<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MonitorBackend;
    use crate::lifecycle::{EvictionPolicy, QueryOptions, RetentionPolicy};
    use crate::monitor::Monitor;
    use crate::naive::Naive;
    use crate::sharded::ShardedMonitor;
    use ctk_common::{QuerySpec, TermId};

    fn streamed(snapshot: &Snapshot, writer: &SnapshotWriter) -> (String, SnapshotStreamStats) {
        let mut out = Vec::new();
        let stats = writer.write(snapshot, &mut out).expect("stream");
        (String::from_utf8(out).expect("utf8 JSON"), stats)
    }

    fn assert_byte_identical(snapshot: &Snapshot, writer: &SnapshotWriter) {
        let want = snapshot.to_json().expect("to_json");
        let (got, stats) = streamed(snapshot, writer);
        assert_eq!(got, want, "streamed snapshot must be byte-identical to to_json");
        assert_eq!(stats.total_bytes, want.len() as u64);
    }

    #[test]
    fn empty_monitor_streams_byte_identical() {
        let m = Monitor::new(Naive::new(0.001));
        assert_byte_identical(&MonitorBackend::snapshot(&m), &SnapshotWriter::new());
    }

    #[test]
    fn no_sections_at_all_streams_byte_identical() {
        // A hand-built capture with zero sections: the envelope's empty
        // `shards` array must come through untouched.
        let snap = Snapshot {
            version: crate::monitor::SNAPSHOT_VERSION,
            lambda: 0.5,
            next_doc: 7,
            last_arrival: 3.25,
            namespaces: vec![String::new(), "tenant \"a\"\n".to_string()],
            policies: Vec::new(),
            shards: Vec::new(),
        };
        assert_byte_identical(&snap, &SnapshotWriter::new());
    }

    #[test]
    fn populated_sections_stream_byte_identical_under_many_chunkings() {
        // Query mode: several sections, some empty, with lifecycle state,
        // policies, a namespace needing string escapes, renormalized decay
        // frames and real float scores — every piece the splicing must not
        // disturb.
        let mut m = ShardedMonitor::new(3, || Naive::new(0.5));
        let ns = m.intern_namespace("tenant \"x\"\n\t");
        m.set_retention(
            ns,
            RetentionPolicy {
                max_age: Some(1e6),
                max_queries: Some(64),
                eviction: EvictionPolicy::LowestScore,
            },
        );
        for i in 0..17u32 {
            let spec = QuerySpec::uniform(&[TermId(i % 5), TermId(5 + i % 3)], 2).unwrap();
            if i % 3 == 0 {
                m.register_with(spec, QueryOptions { namespace: ns, max_age: Some(5e5) });
            } else {
                m.register(spec);
            }
        }
        // Unregister a whole shard's worth so one section can end up empty
        // only through luck — and definitely uneven.
        for q in [0u32, 3, 6, 9, 12, 15] {
            m.unregister(ctk_common::QueryId(q));
        }
        for i in 0..40u64 {
            // Arrivals up to 160 under λ = 0.5 cross the renorm headroom.
            m.publish(vec![(TermId((i % 5) as u32), 1.0), (TermId(7), 0.3)], i as f64 * 4.0);
        }
        let snap = MonitorBackend::snapshot(&m);
        assert!(snap.num_queries() > 0);

        for (workers, chunk) in [(1, 1), (1, 1000), (4, 1), (4, 3), (8, 64)] {
            assert_byte_identical(
                &snap,
                &SnapshotWriter::new().workers(workers).chunk_queries(chunk),
            );
        }
    }

    #[test]
    fn doc_mode_single_section_streams_byte_identical() {
        let mut m = ShardedMonitor::new_doc_parallel(2, 0.001);
        for i in 0..9u32 {
            m.register(QuerySpec::uniform(&[TermId(i % 4)], 1).unwrap());
        }
        m.publish_batch(vec![
            (vec![(TermId(1), 1.0)], 1.0),
            (vec![(TermId(2), 0.25)], 2.0),
            (vec![(TermId(3), 0.1)], 3.5),
        ]);
        let snap = MonitorBackend::snapshot(&m);
        assert_eq!(snap.shards.len(), 1);
        assert_byte_identical(&snap, &SnapshotWriter::new().workers(3).chunk_queries(2));
    }

    #[test]
    fn streamed_output_restores_like_the_materialized_one() {
        let mut m = ShardedMonitor::new(2, || Naive::new(0.01));
        let q = m.register(QuerySpec::uniform(&[TermId(1), TermId(2)], 3).unwrap());
        m.publish(vec![(TermId(1), 1.0), (TermId(2), 0.5)], 1.0);
        let snap = MonitorBackend::snapshot(&m);
        let (text, _) = streamed(&snap, &SnapshotWriter::new());
        let parsed = Snapshot::from_json(&text).expect("streamed output is a valid v3 capture");
        let mut restored = ShardedMonitor::new(3, || Naive::new(0.01));
        let mapping = parsed.restore_into(&mut restored);
        assert_eq!(restored.results(mapping[&q]), m.results(q));
    }

    #[test]
    fn peak_buffer_stays_a_few_chunks_regardless_of_capture_size() {
        let mut m = Monitor::new(Naive::new(0.0));
        for i in 0..3000u32 {
            m.register(QuerySpec::uniform(&[TermId(i % 64), TermId(64 + i % 32)], 3).unwrap());
        }
        m.publish(vec![(TermId(3), 1.0)], 1.0);
        let snap = MonitorBackend::snapshot(&m);
        let writer = SnapshotWriter::new().workers(4).chunk_queries(16);
        let (text, stats) = streamed(&snap, &writer);
        assert_eq!(text, snap.to_json().unwrap());
        assert!(stats.query_jobs > 100);
        assert!(
            stats.peak_buffered_bytes < stats.total_bytes / 8,
            "peak buffered {} must stay far below total {}",
            stats.peak_buffered_bytes,
            stats.total_bytes
        );
    }
}
