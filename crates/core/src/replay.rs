//! The replay seam behind the server's write-ahead journal: a serializable
//! representation of every state-mutating command, plus the [`Replayer`]
//! that re-applies a recovered sequence onto a fresh (or snapshot-restored)
//! backend.
//!
//! # Why replay reproduces the crashed state bit-identically
//!
//! Every mutating operation is linearized through the server's single
//! ingest thread, so the journal records a total order. The backend itself
//! is deterministic given that order: document ids come from a restored
//! `next_doc` counter, decay scores from the restored landmark, and
//! expiry/eviction fire at publish boundaries as pure functions of stream
//! time. Re-applying the journaled suffix on top of the checkpoint
//! snapshot therefore lands on the same ids, the same scores and the same
//! result sets the live process had when it died — the property the
//! SIGKILL crash test asserts end-to-end.
//!
//! # Id remapping
//!
//! Snapshot restore re-registers queries and may renumber them;
//! [`crate::Snapshot::restore_into`] returns the captured-id → live-id
//! mapping. Journaled commands speak the *pre-crash* id space, so the
//! [`Replayer`] carries that mapping forward: a replayed
//! [`ReplayCommand::Register`] extends it with the id the dead process
//! assigned, and a replayed [`ReplayCommand::Unregister`] translates
//! through it. An unregister whose id never maps (e.g. the query expired
//! before the checkpoint) is skipped — removal of an absent query is a
//! no-op either way.

use crate::backend::{MonitorBackend, PublishRequest};
use crate::lifecycle::{QueryOptions, RetentionPolicy};
use ctk_common::{FxHashMap, Namespace, QueryId, QuerySpec, TermId, Timestamp};
use serde::{Deserialize, Error, Number, Serialize, Value};

/// One journaled mutating command, in the shape the wire layer produced it.
///
/// Serialized as an `"op"`-tagged JSON object (mirroring the wire API's
/// request bodies), so journal payloads are greppable with standard tools:
///
/// ```json
/// {"op": "publish", "docs": [[[[1, 0.5]], 2.0]]}
/// {"op": "register", "assigned": 3, "spec": {...}, "namespace": "", "max_age": null}
/// {"op": "unregister", "qid": 3}
/// {"op": "retention", "namespace": "alerts", "policy": {...}}
/// {"op": "forget", "namespace": "alerts"}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayCommand {
    /// The documents of one `POST /publish`, verbatim.
    Publish {
        /// `(pairs, arrival)` per document, the [`PublishRequest`] shape.
        docs: Vec<(Vec<(TermId, f32)>, Timestamp)>,
    },
    /// One query registration, journaled *after* the backend assigned its
    /// id so replay can rebuild the pre-crash id space.
    Register {
        /// The public id the original process assigned.
        assigned: QueryId,
        spec: QuerySpec,
        /// Namespace name ("" is the default namespace).
        namespace: String,
        /// Per-query TTL override, if one was requested.
        max_age: Option<f64>,
    },
    /// One query removal, in the pre-crash id space.
    Unregister { qid: QueryId },
    /// A retention-policy install for a namespace (interned on replay).
    SetRetention { namespace: String, policy: RetentionPolicy },
    /// A confirmed `POST /forget` bulk removal.
    Forget { namespace: String },
}

impl ReplayCommand {
    /// Build the publish variant from a typed request (cheap clone of the
    /// document vectors; the journal serializes before the backend consumes
    /// the request).
    pub fn publish(request: &PublishRequest) -> ReplayCommand {
        ReplayCommand::Publish { docs: request.docs().to_vec() }
    }

    /// The wire token naming this command kind (the `"op"` tag).
    pub fn op(&self) -> &'static str {
        match self {
            ReplayCommand::Publish { .. } => "publish",
            ReplayCommand::Register { .. } => "register",
            ReplayCommand::Unregister { .. } => "unregister",
            ReplayCommand::SetRetention { .. } => "retention",
            ReplayCommand::Forget { .. } => "forget",
        }
    }
}

impl Serialize for ReplayCommand {
    fn to_value(&self) -> Value {
        let mut entries = vec![("op".to_string(), Value::Str(self.op().to_string()))];
        match self {
            ReplayCommand::Publish { docs } => {
                entries.push(("docs".to_string(), docs.to_value()));
            }
            ReplayCommand::Register { assigned, spec, namespace, max_age } => {
                entries.push(("assigned".to_string(), Value::Num(Number::U64(assigned.0.into()))));
                entries.push(("spec".to_string(), spec.to_value()));
                entries.push(("namespace".to_string(), Value::Str(namespace.clone())));
                entries.push(("max_age".to_string(), max_age.to_value()));
            }
            ReplayCommand::Unregister { qid } => {
                entries.push(("qid".to_string(), Value::Num(Number::U64(qid.0.into()))));
            }
            ReplayCommand::SetRetention { namespace, policy } => {
                entries.push(("namespace".to_string(), Value::Str(namespace.clone())));
                entries.push(("policy".to_string(), policy.to_value()));
            }
            ReplayCommand::Forget { namespace } => {
                entries.push(("namespace".to_string(), Value::Str(namespace.clone())));
            }
        }
        Value::Object(entries)
    }
}

impl Deserialize for ReplayCommand {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let op = value.field("op")?.as_str()?;
        match op {
            "publish" => {
                Ok(ReplayCommand::Publish { docs: Deserialize::from_value(value.field("docs")?)? })
            }
            "register" => Ok(ReplayCommand::Register {
                assigned: QueryId::from_value(value.field("assigned")?)?,
                spec: QuerySpec::from_value(value.field("spec")?)?,
                namespace: String::from_value(value.field("namespace")?)?,
                max_age: Deserialize::from_value(value.field("max_age")?)?,
            }),
            "unregister" => {
                Ok(ReplayCommand::Unregister { qid: QueryId::from_value(value.field("qid")?)? })
            }
            "retention" => Ok(ReplayCommand::SetRetention {
                namespace: String::from_value(value.field("namespace")?)?,
                policy: RetentionPolicy::from_value(value.field("policy")?)?,
            }),
            "forget" => Ok(ReplayCommand::Forget {
                namespace: String::from_value(value.field("namespace")?)?,
            }),
            other => Err(Error::custom(format!("unknown journal op {other:?}"))),
        }
    }
}

/// Re-applies a recovered command sequence onto a backend, translating
/// journaled query ids through the snapshot-restore mapping (see the module
/// docs for why the mapping exists and how replay extends it).
#[derive(Debug, Default)]
pub struct Replayer {
    mapping: FxHashMap<QueryId, QueryId>,
    applied: u64,
}

impl Replayer {
    /// A replayer for a fresh backend (no checkpoint): journaled ids map to
    /// themselves as registers are replayed in order.
    pub fn new() -> Replayer {
        Replayer::default()
    }

    /// A replayer seeded with the captured-id → live-id mapping a snapshot
    /// restore returned.
    pub fn with_mapping(mapping: FxHashMap<QueryId, QueryId>) -> Replayer {
        Replayer { mapping, applied: 0 }
    }

    /// Commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The journaled-id → live-id view after everything applied so far.
    pub fn mapping(&self) -> &FxHashMap<QueryId, QueryId> {
        &self.mapping
    }

    /// Apply one recovered command.
    pub fn apply<B: MonitorBackend + ?Sized>(&mut self, backend: &mut B, command: ReplayCommand) {
        self.applied += 1;
        match command {
            ReplayCommand::Publish { docs } => {
                let _ = backend.publish_request(PublishRequest::from(docs));
            }
            ReplayCommand::Register { assigned, spec, namespace, max_age } => {
                let ns = if namespace.is_empty() {
                    Namespace::DEFAULT
                } else {
                    backend.intern_namespace(&namespace)
                };
                let live = backend.register_with(spec, QueryOptions { namespace: ns, max_age });
                self.mapping.insert(assigned, live);
            }
            ReplayCommand::Unregister { qid } => {
                // Registers always precede unregisters of the same id and
                // every replayed register extends the mapping, so a miss
                // means the id never named a live query (journaled no-op
                // removal, or a query the checkpoint already saw expire) —
                // skipping reproduces the original no-op.
                if let Some(live) = self.mapping.get(&qid).copied() {
                    backend.unregister(live);
                }
            }
            ReplayCommand::SetRetention { namespace, policy } => {
                let ns = backend.intern_namespace(&namespace);
                backend.set_retention(ns, policy);
            }
            ReplayCommand::Forget { namespace } => {
                if let Some(ns) = backend.find_namespace(&namespace) {
                    backend.forget_namespace(ns);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::EvictionPolicy;
    use crate::{Monitor, Naive};

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn commands() -> Vec<ReplayCommand> {
        vec![
            ReplayCommand::SetRetention {
                namespace: "alerts".to_string(),
                policy: RetentionPolicy {
                    max_age: Some(100.0),
                    max_queries: Some(8),
                    eviction: EvictionPolicy::LowestScore,
                },
            },
            ReplayCommand::Register {
                assigned: QueryId(0),
                spec: spec(&[(1, 1.0)], 3),
                namespace: String::new(),
                max_age: None,
            },
            ReplayCommand::Register {
                assigned: QueryId(1),
                spec: spec(&[(2, 0.6), (3, 0.8)], 2),
                namespace: "alerts".to_string(),
                max_age: Some(50.0),
            },
            ReplayCommand::Publish {
                docs: vec![
                    (vec![(TermId(1), 1.0)], 1.0),
                    (vec![(TermId(2), 0.5), (TermId(3), 0.5)], 2.0),
                ],
            },
            ReplayCommand::Unregister { qid: QueryId(0) },
            ReplayCommand::Forget { namespace: "alerts".to_string() },
        ]
    }

    #[test]
    fn commands_round_trip_through_the_value_tree() {
        for cmd in commands() {
            let json = serde_json::to_string(&cmd).unwrap();
            let back: ReplayCommand = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cmd, "round-trip of {json}");
        }
        assert!(serde_json::from_str::<ReplayCommand>(r#"{"op": "explode"}"#).is_err());
        assert!(serde_json::from_str::<ReplayCommand>(r#"{"docs": []}"#).is_err());
    }

    #[test]
    fn replay_reproduces_a_live_run() {
        // Drive a backend live, mirror every operation through the replay
        // seam onto a second backend, and compare the observable state.
        let mut live: Box<dyn MonitorBackend + Send> = Box::new(Monitor::new(Naive::new(0.01)));
        let mut replayed: Box<dyn MonitorBackend + Send> = Box::new(Monitor::new(Naive::new(0.01)));
        let mut replayer = Replayer::new();

        for cmd in commands() {
            match cmd.clone() {
                ReplayCommand::Publish { docs } => {
                    live.publish_request(PublishRequest::from(docs));
                }
                ReplayCommand::Register { spec, namespace, max_age, .. } => {
                    let ns = live.intern_namespace(&namespace);
                    live.register_with(spec, QueryOptions { namespace: ns, max_age });
                }
                ReplayCommand::Unregister { qid } => {
                    live.unregister(qid);
                }
                ReplayCommand::SetRetention { namespace, policy } => {
                    let ns = live.intern_namespace(&namespace);
                    live.set_retention(ns, policy);
                }
                ReplayCommand::Forget { namespace } => {
                    let ns = live.find_namespace(&namespace).unwrap();
                    live.forget_namespace(ns);
                }
            }
            replayer.apply(&mut *replayed, cmd);
        }

        assert_eq!(replayer.applied(), 6);
        assert_eq!(replayed.num_queries(), live.num_queries());
        for qid in 0..2 {
            assert_eq!(replayed.results(QueryId(qid)), live.results(QueryId(qid)));
        }
        assert_eq!(
            replayed.snapshot().to_json().unwrap(),
            live.snapshot().to_json().unwrap(),
            "replayed state serializes bit-identically"
        );
    }

    #[test]
    fn unregister_of_an_unmapped_id_is_skipped() {
        let mut backend: Box<dyn MonitorBackend + Send> = Box::new(Monitor::new(Naive::new(0.01)));
        let seeded: FxHashMap<QueryId, QueryId> = [(QueryId(7), QueryId(0))].into_iter().collect();
        let mut replayer = Replayer::with_mapping(seeded);
        // No query registered at all: the mapped id misses, the unmapped id
        // is dropped — neither panics.
        replayer.apply(&mut *backend, ReplayCommand::Unregister { qid: QueryId(7) });
        replayer.apply(&mut *backend, ReplayCommand::Unregister { qid: QueryId(99) });
        assert_eq!(replayer.applied(), 2);
        assert_eq!(backend.num_queries(), 0);
    }
}
