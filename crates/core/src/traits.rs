//! The common interface every continuous top-k algorithm implements.
//!
//! RIO, MRIO, the naive oracle and the three published baselines all expose
//! the same contract, which is what the equivalence tests, the monitor
//! front-end and the benchmark harness program against.

use crate::stats::{CumulativeStats, EventStats};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};

/// A change to one query's result set caused by a stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultChange {
    pub query: QueryId,
    /// The document that entered the top-k.
    pub inserted: ScoredDoc,
    /// The entry that fell out, if the set was already full.
    pub evicted: Option<ScoredDoc>,
}

/// A continuous top-k monitoring algorithm over a document stream.
///
/// ## Contract
///
/// * `process` must be called with non-decreasing `Document::arrival`
///   timestamps (stale timestamps are clamped to the current landmark).
/// * After any sequence of `register` / `unregister` / `process` calls, the
///   result set of every live query must equal — score for score, document
///   for document — the result of exhaustively scoring every processed
///   document against the query (this is checked against [`crate::Naive`]
///   in the cross-algorithm equivalence tests).
/// * `last_changes` reports the result-set deltas of the most recent
///   `process` call, in unspecified order.
pub trait ContinuousTopK {
    /// Short algorithm name used in reports ("RIO", "MRIO-seg", ...).
    fn name(&self) -> &'static str;

    /// Register a CTQD; returns its id. Ids are unique and increasing.
    fn register(&mut self, spec: QuerySpec) -> QueryId;

    /// Remove a query. Returns false when the id is unknown or removed.
    fn unregister(&mut self, qid: QueryId) -> bool;

    /// Process one stream event, refreshing all affected results.
    fn process(&mut self, doc: &Document) -> EventStats;

    /// Warm-start a query's result set with pre-scored history (e.g. from a
    /// snapshot of a long-running deployment, or the benchmark harness's
    /// steady-state emulation). Implementations must refresh their bound
    /// structures to reflect the new `S_k`. Seeds are offered through the
    /// normal insertion path, so exactness w.r.t. the seeded history holds.
    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]);

    /// Current results of a live query, best first.
    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>>;

    /// Current `S_k(q)` (0.0 while the query has fewer than k results).
    fn threshold(&self, qid: QueryId) -> Option<f64>;

    /// Number of live queries.
    fn num_queries(&self) -> usize;

    /// Result deltas produced by the last `process` call.
    fn last_changes(&self) -> &[ResultChange];

    /// Lifetime work counters.
    fn cumulative(&self) -> &CumulativeStats;

    /// The decay parameter the instance was built with.
    fn lambda(&self) -> f64;
}
