//! The common interface every continuous top-k algorithm implements.
//!
//! RIO, MRIO, the naive oracle and the three published baselines all expose
//! the same contract, which is what the equivalence tests, the monitor
//! front-end and the benchmark harness program against.

use crate::stats::{CumulativeStats, EventStats};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc, Timestamp};
use ctk_index::StorageStats;
use serde::{Deserialize, Serialize};

/// A change to one query's result set caused by a stream event.
///
/// Serializes with serde — this is the payload the HTTP server's change
/// stream pushes per subscriber, so the wire shape is the struct itself:
/// `{"query": q, "inserted": {"doc": d, "score": s}, "evicted": ... |
/// null}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResultChange {
    pub query: QueryId,
    /// The document that entered the top-k.
    pub inserted: ScoredDoc,
    /// The entry that fell out, if the set was already full.
    pub evicted: Option<ScoredDoc>,
}

/// A continuous top-k monitoring algorithm over a document stream.
///
/// ## Contract
///
/// * `process` must be called with non-decreasing `Document::arrival`
///   timestamps (stale timestamps are clamped to the current landmark).
/// * After any sequence of `register` / `unregister` / `process` calls, the
///   result set of every live query must equal — score for score, document
///   for document — the result of exhaustively scoring every processed
///   document against the query (this is checked against [`crate::Naive`]
///   in the cross-algorithm equivalence tests).
/// * `last_changes` reports the result-set deltas of the most recent
///   `process` call, in unspecified order.
pub trait ContinuousTopK {
    /// Short algorithm name used in reports ("RIO", "MRIO-seg", ...).
    fn name(&self) -> &'static str;

    /// Register a CTQD; returns its id. Ids are unique and increasing.
    fn register(&mut self, spec: QuerySpec) -> QueryId;

    /// Remove a query. Returns false when the id is unknown or removed.
    fn unregister(&mut self, qid: QueryId) -> bool;

    /// Process one stream event, refreshing all affected results.
    fn process(&mut self, doc: &Document) -> EventStats;

    /// Process a batch of stream events (arrival timestamps non-decreasing
    /// across the whole batch, like repeated `process` calls), appending
    /// every result change of the batch — in document order — to
    /// `changes_out`. Returns per-document work counters.
    ///
    /// This is the throughput entry point: callers that ingest at high
    /// stream rates (the sharded monitor's workers, the bench harness)
    /// amortize per-event overhead here. The default implementation loops
    /// over [`ContinuousTopK::process`]; engines may override it to reuse
    /// working sets and hoist steady-state checks (e.g. the decay
    /// renormalization test) out of the inner loop, but must stay
    /// bit-identical to the looped form.
    ///
    /// Changes carry their document id (`ResultChange::inserted`), so the
    /// flat `changes_out` remains fully attributable per document.
    fn process_batch_into(
        &mut self,
        docs: &[Document],
        changes_out: &mut Vec<ResultChange>,
    ) -> Vec<EventStats> {
        let mut stats = Vec::with_capacity(docs.len());
        for doc in docs {
            stats.push(self.process(doc));
            changes_out.extend_from_slice(self.last_changes());
        }
        stats
    }

    /// [`ContinuousTopK::process_batch_into`] for callers that do not need
    /// the result changes.
    fn process_batch(&mut self, docs: &[Document]) -> Vec<EventStats> {
        let mut sink = Vec::new();
        self.process_batch_into(docs, &mut sink)
    }

    /// Warm-start a query's result set with pre-scored history (e.g. from a
    /// snapshot of a long-running deployment, or the benchmark harness's
    /// steady-state emulation). Implementations must refresh their bound
    /// structures to reflect the new `S_k`. Seeds are offered through the
    /// normal insertion path, so exactness w.r.t. the seeded history holds.
    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]);

    /// Current results of a live query, best first.
    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>>;

    /// Current `S_k(q)` (0.0 while the query has fewer than k results).
    fn threshold(&self, qid: QueryId) -> Option<f64>;

    /// Number of live queries.
    fn num_queries(&self) -> usize;

    /// Result deltas produced by the last `process` call.
    fn last_changes(&self) -> &[ResultChange];

    /// Lifetime work counters.
    fn cumulative(&self) -> &CumulativeStats;

    /// The decay parameter the instance was built with.
    fn lambda(&self) -> f64;

    /// The current decay landmark: the timestamp all stored scores are
    /// expressed relative to. Advances on every landmark renormalization,
    /// so it is part of any durable capture of engine state.
    fn landmark(&self) -> Timestamp;

    /// Adopt a landmark captured from another instance (snapshot restore).
    /// Must be called on a fresh engine *before* seeding any scores:
    /// snapshot scores are expressed in the snapshot's landmark frame, and
    /// mixing frames corrupts thresholds as soon as decay math runs.
    fn restore_landmark(&mut self, landmark: Timestamp);

    /// Fraction of dead (tombstoned) postings in the engine's query index,
    /// `0.0` for engines without one. Cheap enough to probe per batch.
    fn tombstone_ratio(&self) -> f64 {
        0.0
    }

    /// Compact dead postings out of the engine's index and rebuild the
    /// bound structures of exactly the lists that changed. Returns the
    /// number of lists compacted (0 for engines without an index).
    ///
    /// Only sound **between events** — front-ends call it at batch
    /// boundaries when the tombstone ratio crosses their configured
    /// threshold. Results are unaffected; only the index layout changes.
    fn compact_index(&mut self) -> usize {
        0
    }

    /// Point-in-time storage counters of the engine's query index (RAM
    /// footprint plus pager activity); all-zero for engines without one.
    fn storage_stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

/// Boxed engines are engines: the monitor front-ends and the builder work
/// with `Box<dyn ContinuousTopK + Send>`. Every method forwards explicitly —
/// in particular `process_batch_into`, so an engine's batched override (e.g.
/// MRIO's hoisted renormalization check) is never shadowed by the trait's
/// default looping implementation.
impl<T: ContinuousTopK + ?Sized> ContinuousTopK for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        (**self).register(spec)
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        (**self).unregister(qid)
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        (**self).process(doc)
    }

    fn process_batch_into(
        &mut self,
        docs: &[Document],
        changes_out: &mut Vec<ResultChange>,
    ) -> Vec<EventStats> {
        (**self).process_batch_into(docs, changes_out)
    }

    fn process_batch(&mut self, docs: &[Document]) -> Vec<EventStats> {
        (**self).process_batch(docs)
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        (**self).seed_results(qid, seeds)
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        (**self).results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        (**self).threshold(qid)
    }

    fn num_queries(&self) -> usize {
        (**self).num_queries()
    }

    fn last_changes(&self) -> &[ResultChange] {
        (**self).last_changes()
    }

    fn cumulative(&self) -> &CumulativeStats {
        (**self).cumulative()
    }

    fn lambda(&self) -> f64 {
        (**self).lambda()
    }

    fn landmark(&self) -> Timestamp {
        (**self).landmark()
    }

    fn restore_landmark(&mut self, landmark: Timestamp) {
        (**self).restore_landmark(landmark)
    }

    fn tombstone_ratio(&self) -> f64 {
        (**self).tombstone_ratio()
    }

    fn compact_index(&mut self) -> usize {
        (**self).compact_index()
    }

    fn storage_stats(&self) -> StorageStats {
        (**self).storage_stats()
    }
}
