//! The unified application-facing API over every monitor front-end.
//!
//! The paper's system model is **one** server front-end hosting millions of
//! CTQDs; deployments should not care whether that front-end runs a single
//! engine or shards the query population across worker threads. This module
//! defines the contract both implement:
//!
//! * [`crate::Monitor`] — one engine, zero threads;
//! * [`crate::ShardedMonitor`] — the query-sharded parallel monitor.
//!
//! Both speak plain [`QueryId`]s (the sharded backend maps them to shard
//! routes internally), return [`PublishReceipt`]s from ingestion, and
//! capture/restore through the versioned [`crate::Snapshot`] format —
//! including restoring a capture into a backend with a *different* shard
//! count. Application code written against `dyn MonitorBackend` is
//! untouched by any later re-partitioning of the work behind it.

use crate::lifecycle::{NamespaceStats, QueryOptions, RetentionPolicy};
use crate::monitor::Snapshot;
use crate::stats::EventStats;
use crate::traits::ResultChange;
use ctk_common::{DocId, Document, Namespace, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};
use ctk_index::StorageStats;
use serde::{Deserialize, Serialize};

/// How a parallel monitor partitions its work across worker shards.
///
/// Both modes serve the identical [`MonitorBackend`] contract and produce
/// bit-identical results; they differ in *what* is replicated and therefore
/// in how they scale (see the builder's "Choosing a sharding mode" notes):
///
/// * [`ShardingMode::Queries`] replicates the **stream**: every worker owns
///   a slice of the query population (its own engine and index) and scores
///   every document against it. Per-document index-probe work is paid once
///   per shard, so this wins when the query population is large enough that
///   each shard's slice still amortizes the walk.
/// * [`ShardingMode::Documents`] replicates **nothing**: each ingest batch
///   is split across workers that walk one shared, read-only index epoch,
///   and per-worker candidates are merged serially in stream order. The
///   per-document walk is paid once in total, so this wins for small query
///   populations and high stream rates — exactly the regime where
///   query-sharding degenerates into S redundant walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardingMode {
    /// Partition the query population; broadcast every document to all
    /// shards (the classic continuous-top-k scale-out).
    Queries,
    /// Partition each document batch across shards over a shared, read-only
    /// index epoch; merge candidate results in stream order.
    Documents,
}

impl ShardingMode {
    /// Both modes, report order.
    pub const ALL: [ShardingMode; 2] = [ShardingMode::Queries, ShardingMode::Documents];

    /// The short name used by reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ShardingMode::Queries => "query",
            ShardingMode::Documents => "doc",
        }
    }
}

impl std::fmt::Display for ShardingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ShardingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "query" | "queries" => Ok(ShardingMode::Queries),
            "doc" | "docs" | "document" | "documents" => Ok(ShardingMode::Documents),
            _ => Err(format!("unknown sharding mode: {s} (expected 'query' or 'doc')")),
        }
    }
}

/// Whether document-mode scorer workers prune their walk with the shared
/// epoch's zone-maxima bounds (see `ctk_index::epoch_bounds`).
///
/// Pruning never changes results, changes or per-document insertion counts
/// — skipped zones hold only candidates the submit-time threshold filter
/// would reject — but it does change the *work* counters: a pruned walk
/// reports fewer `postings_accessed`/`full_evaluations` plus the
/// `zones_skipped`/`postings_skipped` it saved, exactly like MRIO's counters
/// differ from the oracle's. It is a pure throughput knob:
///
/// * [`DocPruning::Auto`] (default) engages the bounded walk once the live
///   query population reaches the crossover region where bound probes pay
///   for themselves, and stays exhaustive below it (where the walk is
///   already cheap and bound probes are pure overhead).
/// * [`DocPruning::On`] / [`DocPruning::Off`] force one walk unconditionally
///   (benchmarking, tests, and workloads that sit on one side for sure).
///
/// Query-sharded backends ignore the knob: their engines (MRIO) carry their
/// own bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DocPruning {
    /// Never consult the epoch bounds: every worker runs the exhaustive
    /// walk (PR-4 behavior, bit-identical work counters to the oracle).
    Off,
    /// Always run the bounded walk when a batch has a valid threshold
    /// snapshot (renormalization-crossing batches still fall back to the
    /// exhaustive walk — frozen bounds are not comparable across frames).
    On,
    /// Decide per batch from the live query population (the default).
    #[default]
    Auto,
}

impl DocPruning {
    /// All modes, report order.
    pub const ALL: [DocPruning; 3] = [DocPruning::Off, DocPruning::On, DocPruning::Auto];

    /// The short name used by reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DocPruning::Off => "off",
            DocPruning::On => "on",
            DocPruning::Auto => "auto",
        }
    }
}

impl std::fmt::Display for DocPruning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DocPruning {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(DocPruning::Off),
            "on" => Ok(DocPruning::On),
            "auto" => Ok(DocPruning::Auto),
            _ => Err(format!("unknown doc-pruning mode: {s} (expected 'off', 'on' or 'auto')")),
        }
    }
}

/// A typed publish request: the documents of one ingest call, each a
/// `(term, weight)` pair list plus its arrival timestamp.
///
/// This is the one input shape every front door accepts —
/// [`MonitorBackend::publish_request`], the HTTP wire layer, the examples
/// and the bench harness all build one of these instead of hand-assembling
/// `Vec<(TermId, f32)>` tuples in their own shapes. Conversions cover the
/// common origins:
///
/// * `Vec<(TermId, f32)>` — a single document, arrival 0 (the backend
///   clamps arrivals monotone, so 0 means "now" on a live stream);
/// * `(Vec<(TermId, f32)>, Timestamp)` — a single timestamped document;
/// * `Vec<(Vec<(TermId, f32)>, Timestamp)>` — a raw batch (the legacy
///   `publish_batch` argument shape);
/// * `&[Document]` / iterators of pair lists — generator and replay input.
///
/// ```
/// use ctk_core::PublishRequest;
/// use ctk_common::TermId;
///
/// let single: PublishRequest = vec![(TermId(3), 1.0)].into();
/// assert_eq!(single.len(), 1);
/// let batch = PublishRequest::new().doc(vec![(TermId(3), 1.0)], 0.0).doc(vec![], 1.0);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PublishRequest {
    docs: Vec<(Vec<(TermId, f32)>, Timestamp)>,
}

impl PublishRequest {
    /// An empty request; add documents with [`PublishRequest::doc`] /
    /// [`PublishRequest::push`].
    pub fn new() -> Self {
        PublishRequest::default()
    }

    /// Append a document (builder style).
    pub fn doc(mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> Self {
        self.push(pairs, arrival);
        self
    }

    /// Append a document.
    pub fn push(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) {
        self.docs.push((pairs, arrival));
    }

    /// Number of documents in the request.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the request holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The arrival timestamp of the first document, if any. Backends use it
    /// (clamped monotone against their stream clock) as "now" for the
    /// expiry check at the top of the publish path.
    pub fn first_arrival(&self) -> Option<Timestamp> {
        self.docs.first().map(|(_, at)| *at)
    }

    /// The documents as `(pairs, arrival)` slices — what the journal layer
    /// serializes so a replayed publish rebuilds this exact request.
    pub fn docs(&self) -> &[(Vec<(TermId, f32)>, Timestamp)] {
        &self.docs
    }

    /// The raw batch shape consumed by [`MonitorBackend::publish_batch`].
    pub fn into_batch(self) -> Vec<(Vec<(TermId, f32)>, Timestamp)> {
        self.docs
    }
}

impl From<Vec<(TermId, f32)>> for PublishRequest {
    /// A single document with arrival 0 (clamped monotone by the backend).
    fn from(pairs: Vec<(TermId, f32)>) -> Self {
        PublishRequest { docs: vec![(pairs, 0.0)] }
    }
}

impl From<(Vec<(TermId, f32)>, Timestamp)> for PublishRequest {
    fn from(doc: (Vec<(TermId, f32)>, Timestamp)) -> Self {
        PublishRequest { docs: vec![doc] }
    }
}

impl From<Vec<(Vec<(TermId, f32)>, Timestamp)>> for PublishRequest {
    fn from(docs: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> Self {
        PublishRequest { docs }
    }
}

impl From<&[Document]> for PublishRequest {
    /// Re-publish materialized documents (stream replay, generator output).
    /// Carries each document's vector and arrival; the receiving backend
    /// assigns fresh ids.
    fn from(docs: &[Document]) -> Self {
        PublishRequest {
            docs: docs.iter().map(|d| (d.vector.iter().collect(), d.arrival)).collect(),
        }
    }
}

impl FromIterator<(Vec<(TermId, f32)>, Timestamp)> for PublishRequest {
    fn from_iter<I: IntoIterator<Item = (Vec<(TermId, f32)>, Timestamp)>>(iter: I) -> Self {
        PublishRequest { docs: iter.into_iter().collect() }
    }
}

/// The typed admission outcome of a publish: what the ingest path did with
/// the request *before* (or instead of) processing it.
///
/// Embedded backends ([`crate::Monitor`], [`crate::ShardedMonitor`]) are
/// synchronous — the publish runs on the caller's thread — so their
/// [`MonitorBackend::try_publish`] always reports
/// [`Admission::Accepted`]. The variants beyond `Accepted` exist for
/// queueing front doors: the `ctk-server` ingest thread reports
/// [`Admission::Enqueued`] with the observed queue depth, and — under its
/// reject admission policy — [`Admission::Overloaded`] with a retry hint
/// when the bounded ingest queue is full, which the HTTP layer maps to
/// `429 Too Many Requests` + `Retry-After`.
///
/// Wire shape (serde): `{"state": "accepted"}`,
/// `{"state": "enqueued", "depth": N}`, or
/// `{"state": "overloaded", "retry_after": seconds}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The publish was processed synchronously.
    Accepted,
    /// The publish entered a bounded queue at the given depth (this request
    /// included) and was then processed.
    Enqueued {
        /// Queue occupancy observed at admission, including this request.
        depth: usize,
    },
    /// The ingest queue was full and the publish was **not** processed.
    Overloaded {
        /// Suggested wait before retrying, in seconds.
        retry_after: f64,
    },
}

impl Admission {
    /// True when the publish was actually processed (accepted or enqueued).
    pub fn is_admitted(&self) -> bool {
        !matches!(self, Admission::Overloaded { .. })
    }
}

impl Serialize for Admission {
    fn to_value(&self) -> serde::Value {
        use serde::{Number, Value};
        let mut entries = Vec::with_capacity(2);
        match self {
            Admission::Accepted => {
                entries.push(("state".to_string(), Value::Str("accepted".into())))
            }
            Admission::Enqueued { depth } => {
                entries.push(("state".to_string(), Value::Str("enqueued".into())));
                entries.push(("depth".to_string(), Value::Num(Number::U64(*depth as u64))));
            }
            Admission::Overloaded { retry_after } => {
                entries.push(("state".to_string(), Value::Str("overloaded".into())));
                entries.push(("retry_after".to_string(), Value::Num(Number::F64(*retry_after))));
            }
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for Admission {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let state = value.field("state")?.as_str()?;
        match state {
            "accepted" => Ok(Admission::Accepted),
            "enqueued" => {
                let depth = value.field("depth")?.as_u64()?;
                Ok(Admission::Enqueued { depth: depth as usize })
            }
            "overloaded" => {
                let retry_after = value.field("retry_after")?.as_f64()?;
                Ok(Admission::Overloaded { retry_after })
            }
            other => Err(serde::Error::custom(format!("unknown admission state {other:?}"))),
        }
    }
}

/// The typed outcome of a [`MonitorBackend::publish`] /
/// [`MonitorBackend::publish_batch`] call: the ids assigned to the admitted
/// documents, every result change they caused, and per-document work
/// counters (summed across shards on sharded backends).
///
/// Serializes with serde (the HTTP server returns one per `POST /publish`,
/// and the load harness reads the same schema back), so the wire shape is
/// exactly this struct: `{"doc_ids": [...], "changes": [...], "stats":
/// [...]}`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PublishReceipt {
    /// Ids assigned to the admitted documents, in submission order.
    pub doc_ids: Vec<DocId>,
    /// Every result-set change of the batch. Attribute a change to its
    /// document via `change.inserted.doc`; order within the receipt is
    /// unspecified across queries (sharded backends group by shard).
    pub changes: Vec<ResultChange>,
    /// Per-document work counters, aligned with `doc_ids`.
    pub stats: Vec<EventStats>,
}

impl PublishReceipt {
    /// The id of the first (for single publishes: the only) document.
    ///
    /// # Panics
    /// Panics on a receipt for an empty batch.
    pub fn doc_id(&self) -> DocId {
        self.doc_ids[0]
    }

    /// True when the batch changed no result set.
    pub fn is_quiet(&self) -> bool {
        self.changes.is_empty()
    }

    /// All counters of the batch folded into one record.
    pub fn merged_stats(&self) -> EventStats {
        let mut total = EventStats::default();
        for ev in &self.stats {
            total.merge(ev);
        }
        total
    }

    /// The changes that affected one query, in document order.
    pub fn changes_for(&self, qid: QueryId) -> impl Iterator<Item = &ResultChange> + '_ {
        self.changes.iter().filter(move |c| c.query == qid)
    }

    /// The changes grouped per affected query, ascending query id; document
    /// order is preserved within each group. This is the notification-fanout
    /// view: one entry per subscriber to wake.
    pub fn changes_by_query(&self) -> Vec<(QueryId, Vec<ResultChange>)> {
        let mut sorted = self.changes.clone();
        sorted.sort_by_key(|c| (c.query, c.inserted.doc));
        let mut grouped: Vec<(QueryId, Vec<ResultChange>)> = Vec::new();
        for change in sorted {
            match grouped.last_mut() {
                Some((qid, group)) if *qid == change.query => group.push(change),
                _ => grouped.push((change.query, vec![change])),
            }
        }
        grouped
    }
}

/// One application-facing monitor API over single-engine and sharded
/// backends alike.
///
/// ## Contract
///
/// * `register` assigns unique, monotonically increasing [`QueryId`]s,
///   regardless of how queries are partitioned internally.
/// * `publish_request` (and its `publish`/`publish_batch` wrappers)
///   allocates document ids in submission order and clamps arrival
///   timestamps to be monotone across calls.
/// * After identical `register`/`unregister`/`publish` sequences, two
///   backends with the same `lambda` report **bit-identical** `results` for
///   every query, whatever their engine kind or shard count (checked against
///   the exhaustive oracle in `tests/backend_api.rs`).
/// * `snapshot` captures the full monitor state; [`Snapshot::restore_into`]
///   rebuilds it on any freshly built backend of the same `lambda` —
///   including one with a different shard count.
///
/// ## Wire visibility
///
/// The `ctk-server` HTTP daemon exposes this trait one-to-one, so its
/// methods split into a **wire-visible** surface and **internal plumbing**:
///
/// * Exposed by the HTTP layer: `register` (`POST /queries`), `unregister`
///   (`DELETE /queries/{id}`), `publish_request` (`POST /publish`, returning
///   the serialized [`PublishReceipt`]), `results`
///   (`GET /queries/{id}/results`), `num_queries`/`shards`/`sharding_mode`/
///   `lambda` (folded into `GET /stats`), and `snapshot` (`POST /snapshot`).
///   Anything these return may therefore appear verbatim in HTTP responses:
///   public [`QueryId`]s, [`DocId`]s, scores and per-document
///   [`EventStats`] are all wire-visible, deliberately — work counters are
///   part of the paper's evaluation surface, not a secret.
/// * Hidden by the HTTP layer: the restore plumbing (`restore_landmark`,
///   `restore_stream_position`, `seed_results`). These are only sound in
///   the middle of [`Snapshot::restore_into`] on a fresh backend; the
///   server's `POST /restore` drives them through that one entry point and
///   never exposes them individually. Engine internals (shard routes,
///   landmark frames, decayed score representations) likewise never cross
///   the wire: scores are always reported in the current landmark frame,
///   exactly as `results` returns them.
pub trait MonitorBackend {
    /// Register a user's continuous query; returns its public id. Wrapper
    /// over [`MonitorBackend::register_with`] with default
    /// [`QueryOptions`] — default namespace, no TTL — which reproduces the
    /// pre-lifecycle behaviour exactly.
    fn register(&mut self, spec: QuerySpec) -> QueryId {
        self.register_with(spec, QueryOptions::default())
    }

    /// Register a query with lifecycle options: its namespace (intern names
    /// first via [`MonitorBackend::intern_namespace`]) and an optional
    /// per-query `max_age` overriding the namespace policy's default TTL.
    ///
    /// Registration may evict: if the namespace has a
    /// [`RetentionPolicy::max_queries`] cap and this registration crosses
    /// it, existing members are removed per the policy's
    /// [`EvictionPolicy`](crate::EvictionPolicy) — never the query just
    /// registered.
    fn register_with(&mut self, spec: QuerySpec, opts: QueryOptions) -> QueryId;

    /// Remove a query. Returns false when the id is unknown or removed.
    fn unregister(&mut self, qid: QueryId) -> bool;

    // --- Lifecycle: namespaces, retention, expiry (see `lifecycle`). ---

    /// Intern a namespace name, allocating its handle on first sight. The
    /// empty string is always [`Namespace::DEFAULT`].
    fn intern_namespace(&mut self, name: &str) -> Namespace;

    /// Look up an interned namespace without creating it.
    fn find_namespace(&self, name: &str) -> Option<Namespace>;

    /// Install (or replace) a namespace's retention policy. Deadlines of
    /// existing members are recomputed (a per-query `max_age` still wins),
    /// and a lowered `max_queries` cap evicts immediately.
    fn set_retention(&mut self, ns: Namespace, policy: RetentionPolicy);

    /// The namespace's retention policy, if one was set.
    fn retention(&self, ns: Namespace) -> Option<RetentionPolicy>;

    /// Remove every query of a namespace at once: bulk-tombstone and
    /// force-compact, the "filtered forget". Returns how many queries were
    /// removed.
    fn forget_namespace(&mut self, ns: Namespace) -> usize;

    /// The namespace a live query belongs to.
    fn namespace_of(&self, qid: QueryId) -> Option<Namespace>;

    /// Per-namespace lifecycle stats (live/expired/evicted), handle order.
    fn namespace_stats(&self) -> Vec<NamespaceStats>;

    /// `(expired, evicted)` lifetime totals across all namespaces.
    fn lifecycle_totals(&self) -> (u64, u64);

    /// Publish the documents of a typed [`PublishRequest`] through the
    /// backend's batched (and, on sharded backends, pipelined) ingestion
    /// path. This is the one ingestion entry point implementations provide;
    /// [`MonitorBackend::publish`] and [`MonitorBackend::publish_batch`]
    /// are thin wrappers over it.
    fn publish_request(&mut self, request: PublishRequest) -> PublishReceipt;

    /// Publish with a typed admission outcome instead of silent blocking.
    ///
    /// Returns what the ingest path did with the request
    /// ([`Admission`]) and — whenever the request was admitted — the
    /// receipt. The receipt is `None` **iff** the admission is
    /// [`Admission::Overloaded`]: an overloaded publish has no effects at
    /// all (no ids allocated, no documents scored) and may be retried
    /// verbatim after the suggested backoff.
    ///
    /// Embedded backends process the request on the caller's thread, so
    /// this default implementation always admits; queueing front ends (the
    /// `ctk-server` ingest thread) override the *semantics* by reporting
    /// their bounded-queue occupancy through the same type on the wire.
    fn try_publish(&mut self, request: PublishRequest) -> (Admission, Option<PublishReceipt>) {
        (Admission::Accepted, Some(self.publish_request(request)))
    }

    /// Publish one document to the stream. Wrapper over
    /// [`MonitorBackend::publish_request`].
    fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        self.publish_request(PublishRequest::from((pairs, arrival)))
    }

    /// Publish a batch of documents. Wrapper over
    /// [`MonitorBackend::publish_request`].
    fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        self.publish_request(PublishRequest::from(batch))
    }

    /// Current top-k of a query, best first. `None` after unregistration.
    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>>;

    /// Number of live queries.
    fn num_queries(&self) -> usize;

    /// Number of shards doing the work (1 for single-engine backends).
    fn shards(&self) -> usize {
        1
    }

    /// How the backend partitions its work (see [`ShardingMode`]).
    /// Single-engine backends report [`ShardingMode::Queries`] — the
    /// degenerate one-shard query partition.
    fn sharding_mode(&self) -> ShardingMode {
        ShardingMode::Queries
    }

    /// The decay parameter the backend was built with.
    fn lambda(&self) -> f64;

    /// Point-in-time storage counters of the backend's query index(es):
    /// estimated heap bytes plus pager activity, summed across shards on
    /// sharded backends. All-zero when no engine carries an index.
    fn storage_stats(&self) -> StorageStats {
        StorageStats::default()
    }

    /// Capture the full monitor state (versioned, engine-agnostic).
    fn snapshot(&self) -> Snapshot;

    // --- Restore plumbing, driven by [`Snapshot::restore_into`]. ---

    /// Adopt a captured decay landmark on every engine. Must run on a fresh
    /// backend *before* any seeding: snapshot scores are expressed in the
    /// snapshot's landmark frame.
    fn restore_landmark(&mut self, landmark: Timestamp);

    /// Adopt a captured stream position (next document id, last arrival).
    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp);

    /// Warm-start a query's result set with pre-scored history.
    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]);

    /// Pin a restored query's exact lifecycle coordinates — the
    /// registration time and deadline captured in the snapshot — replacing
    /// whatever `register_with` computed from the restore-time stream
    /// clock.
    fn restore_lifecycle(&mut self, qid: QueryId, registered_at: Timestamp, deadline: Option<f64>);
}
