//! The unified application-facing API over every monitor front-end.
//!
//! The paper's system model is **one** server front-end hosting millions of
//! CTQDs; deployments should not care whether that front-end runs a single
//! engine or shards the query population across worker threads. This module
//! defines the contract both implement:
//!
//! * [`crate::Monitor`] — one engine, zero threads;
//! * [`crate::ShardedMonitor`] — the query-sharded parallel monitor.
//!
//! Both speak plain [`QueryId`]s (the sharded backend maps them to shard
//! routes internally), return [`PublishReceipt`]s from ingestion, and
//! capture/restore through the versioned [`crate::Snapshot`] format —
//! including restoring a capture into a backend with a *different* shard
//! count. Application code written against `dyn MonitorBackend` is
//! untouched by any later re-partitioning of the work behind it.

use crate::monitor::Snapshot;
use crate::stats::EventStats;
use crate::traits::ResultChange;
use ctk_common::{DocId, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};

/// The typed outcome of a [`MonitorBackend::publish`] /
/// [`MonitorBackend::publish_batch`] call: the ids assigned to the admitted
/// documents, every result change they caused, and per-document work
/// counters (summed across shards on sharded backends).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PublishReceipt {
    /// Ids assigned to the admitted documents, in submission order.
    pub doc_ids: Vec<DocId>,
    /// Every result-set change of the batch. Attribute a change to its
    /// document via `change.inserted.doc`; order within the receipt is
    /// unspecified across queries (sharded backends group by shard).
    pub changes: Vec<ResultChange>,
    /// Per-document work counters, aligned with `doc_ids`.
    pub stats: Vec<EventStats>,
}

impl PublishReceipt {
    /// The id of the first (for single publishes: the only) document.
    ///
    /// # Panics
    /// Panics on a receipt for an empty batch.
    pub fn doc_id(&self) -> DocId {
        self.doc_ids[0]
    }

    /// True when the batch changed no result set.
    pub fn is_quiet(&self) -> bool {
        self.changes.is_empty()
    }

    /// All counters of the batch folded into one record.
    pub fn merged_stats(&self) -> EventStats {
        let mut total = EventStats::default();
        for ev in &self.stats {
            total.merge(ev);
        }
        total
    }

    /// The changes that affected one query, in document order.
    pub fn changes_for(&self, qid: QueryId) -> impl Iterator<Item = &ResultChange> + '_ {
        self.changes.iter().filter(move |c| c.query == qid)
    }

    /// The changes grouped per affected query, ascending query id; document
    /// order is preserved within each group. This is the notification-fanout
    /// view: one entry per subscriber to wake.
    pub fn changes_by_query(&self) -> Vec<(QueryId, Vec<ResultChange>)> {
        let mut sorted = self.changes.clone();
        sorted.sort_by_key(|c| (c.query, c.inserted.doc));
        let mut grouped: Vec<(QueryId, Vec<ResultChange>)> = Vec::new();
        for change in sorted {
            match grouped.last_mut() {
                Some((qid, group)) if *qid == change.query => group.push(change),
                _ => grouped.push((change.query, vec![change])),
            }
        }
        grouped
    }
}

/// One application-facing monitor API over single-engine and sharded
/// backends alike.
///
/// ## Contract
///
/// * `register` assigns unique, monotonically increasing [`QueryId`]s,
///   regardless of how queries are partitioned internally.
/// * `publish`/`publish_batch` allocate document ids in submission order and
///   clamp arrival timestamps to be monotone across calls.
/// * After identical `register`/`unregister`/`publish` sequences, two
///   backends with the same `lambda` report **bit-identical** `results` for
///   every query, whatever their engine kind or shard count (checked against
///   the exhaustive oracle in `tests/backend_api.rs`).
/// * `snapshot` captures the full monitor state; [`Snapshot::restore_into`]
///   rebuilds it on any freshly built backend of the same `lambda` —
///   including one with a different shard count.
pub trait MonitorBackend {
    /// Register a user's continuous query; returns its public id.
    fn register(&mut self, spec: QuerySpec) -> QueryId;

    /// Remove a query. Returns false when the id is unknown or removed.
    fn unregister(&mut self, qid: QueryId) -> bool;

    /// Publish one document to the stream.
    fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt;

    /// Publish a batch of documents through the backend's batched (and, on
    /// sharded backends, pipelined) ingestion path.
    fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt;

    /// Current top-k of a query, best first. `None` after unregistration.
    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>>;

    /// Number of live queries.
    fn num_queries(&self) -> usize;

    /// Number of shards doing the work (1 for single-engine backends).
    fn shards(&self) -> usize {
        1
    }

    /// The decay parameter the backend was built with.
    fn lambda(&self) -> f64;

    /// Capture the full monitor state (versioned, engine-agnostic).
    fn snapshot(&self) -> Snapshot;

    // --- Restore plumbing, driven by [`Snapshot::restore_into`]. ---

    /// Adopt a captured decay landmark on every engine. Must run on a fresh
    /// backend *before* any seeding: snapshot scores are expressed in the
    /// snapshot's landmark frame.
    fn restore_landmark(&mut self, landmark: Timestamp);

    /// Adopt a captured stream position (next document id, last arrival).
    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp);

    /// Warm-start a query's result set with pre-scored history.
    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]);
}
