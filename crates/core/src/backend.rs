//! The unified application-facing API over every monitor front-end.
//!
//! The paper's system model is **one** server front-end hosting millions of
//! CTQDs; deployments should not care whether that front-end runs a single
//! engine or shards the query population across worker threads. This module
//! defines the contract both implement:
//!
//! * [`crate::Monitor`] — one engine, zero threads;
//! * [`crate::ShardedMonitor`] — the query-sharded parallel monitor.
//!
//! Both speak plain [`QueryId`]s (the sharded backend maps them to shard
//! routes internally), return [`PublishReceipt`]s from ingestion, and
//! capture/restore through the versioned [`crate::Snapshot`] format —
//! including restoring a capture into a backend with a *different* shard
//! count. Application code written against `dyn MonitorBackend` is
//! untouched by any later re-partitioning of the work behind it.

use crate::monitor::Snapshot;
use crate::stats::EventStats;
use crate::traits::ResultChange;
use ctk_common::{DocId, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};

/// How a parallel monitor partitions its work across worker shards.
///
/// Both modes serve the identical [`MonitorBackend`] contract and produce
/// bit-identical results; they differ in *what* is replicated and therefore
/// in how they scale (see the builder's "Choosing a sharding mode" notes):
///
/// * [`ShardingMode::Queries`] replicates the **stream**: every worker owns
///   a slice of the query population (its own engine and index) and scores
///   every document against it. Per-document index-probe work is paid once
///   per shard, so this wins when the query population is large enough that
///   each shard's slice still amortizes the walk.
/// * [`ShardingMode::Documents`] replicates **nothing**: each ingest batch
///   is split across workers that walk one shared, read-only index epoch,
///   and per-worker candidates are merged serially in stream order. The
///   per-document walk is paid once in total, so this wins for small query
///   populations and high stream rates — exactly the regime where
///   query-sharding degenerates into S redundant walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardingMode {
    /// Partition the query population; broadcast every document to all
    /// shards (the classic continuous-top-k scale-out).
    Queries,
    /// Partition each document batch across shards over a shared, read-only
    /// index epoch; merge candidate results in stream order.
    Documents,
}

impl ShardingMode {
    /// Both modes, report order.
    pub const ALL: [ShardingMode; 2] = [ShardingMode::Queries, ShardingMode::Documents];

    /// The short name used by reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ShardingMode::Queries => "query",
            ShardingMode::Documents => "doc",
        }
    }
}

impl std::fmt::Display for ShardingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ShardingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "query" | "queries" => Ok(ShardingMode::Queries),
            "doc" | "docs" | "document" | "documents" => Ok(ShardingMode::Documents),
            _ => Err(format!("unknown sharding mode: {s} (expected 'query' or 'doc')")),
        }
    }
}

/// Whether document-mode scorer workers prune their walk with the shared
/// epoch's zone-maxima bounds (see `ctk_index::epoch_bounds`).
///
/// Pruning never changes results, changes or per-document insertion counts
/// — skipped zones hold only candidates the submit-time threshold filter
/// would reject — but it does change the *work* counters: a pruned walk
/// reports fewer `postings_accessed`/`full_evaluations` plus the
/// `zones_skipped`/`postings_skipped` it saved, exactly like MRIO's counters
/// differ from the oracle's. It is a pure throughput knob:
///
/// * [`DocPruning::Auto`] (default) engages the bounded walk once the live
///   query population reaches the crossover region where bound probes pay
///   for themselves, and stays exhaustive below it (where the walk is
///   already cheap and bound probes are pure overhead).
/// * [`DocPruning::On`] / [`DocPruning::Off`] force one walk unconditionally
///   (benchmarking, tests, and workloads that sit on one side for sure).
///
/// Query-sharded backends ignore the knob: their engines (MRIO) carry their
/// own bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DocPruning {
    /// Never consult the epoch bounds: every worker runs the exhaustive
    /// walk (PR-4 behavior, bit-identical work counters to the oracle).
    Off,
    /// Always run the bounded walk when a batch has a valid threshold
    /// snapshot (renormalization-crossing batches still fall back to the
    /// exhaustive walk — frozen bounds are not comparable across frames).
    On,
    /// Decide per batch from the live query population (the default).
    #[default]
    Auto,
}

impl DocPruning {
    /// All modes, report order.
    pub const ALL: [DocPruning; 3] = [DocPruning::Off, DocPruning::On, DocPruning::Auto];

    /// The short name used by reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DocPruning::Off => "off",
            DocPruning::On => "on",
            DocPruning::Auto => "auto",
        }
    }
}

impl std::fmt::Display for DocPruning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DocPruning {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(DocPruning::Off),
            "on" => Ok(DocPruning::On),
            "auto" => Ok(DocPruning::Auto),
            _ => Err(format!("unknown doc-pruning mode: {s} (expected 'off', 'on' or 'auto')")),
        }
    }
}

/// The typed outcome of a [`MonitorBackend::publish`] /
/// [`MonitorBackend::publish_batch`] call: the ids assigned to the admitted
/// documents, every result change they caused, and per-document work
/// counters (summed across shards on sharded backends).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PublishReceipt {
    /// Ids assigned to the admitted documents, in submission order.
    pub doc_ids: Vec<DocId>,
    /// Every result-set change of the batch. Attribute a change to its
    /// document via `change.inserted.doc`; order within the receipt is
    /// unspecified across queries (sharded backends group by shard).
    pub changes: Vec<ResultChange>,
    /// Per-document work counters, aligned with `doc_ids`.
    pub stats: Vec<EventStats>,
}

impl PublishReceipt {
    /// The id of the first (for single publishes: the only) document.
    ///
    /// # Panics
    /// Panics on a receipt for an empty batch.
    pub fn doc_id(&self) -> DocId {
        self.doc_ids[0]
    }

    /// True when the batch changed no result set.
    pub fn is_quiet(&self) -> bool {
        self.changes.is_empty()
    }

    /// All counters of the batch folded into one record.
    pub fn merged_stats(&self) -> EventStats {
        let mut total = EventStats::default();
        for ev in &self.stats {
            total.merge(ev);
        }
        total
    }

    /// The changes that affected one query, in document order.
    pub fn changes_for(&self, qid: QueryId) -> impl Iterator<Item = &ResultChange> + '_ {
        self.changes.iter().filter(move |c| c.query == qid)
    }

    /// The changes grouped per affected query, ascending query id; document
    /// order is preserved within each group. This is the notification-fanout
    /// view: one entry per subscriber to wake.
    pub fn changes_by_query(&self) -> Vec<(QueryId, Vec<ResultChange>)> {
        let mut sorted = self.changes.clone();
        sorted.sort_by_key(|c| (c.query, c.inserted.doc));
        let mut grouped: Vec<(QueryId, Vec<ResultChange>)> = Vec::new();
        for change in sorted {
            match grouped.last_mut() {
                Some((qid, group)) if *qid == change.query => group.push(change),
                _ => grouped.push((change.query, vec![change])),
            }
        }
        grouped
    }
}

/// One application-facing monitor API over single-engine and sharded
/// backends alike.
///
/// ## Contract
///
/// * `register` assigns unique, monotonically increasing [`QueryId`]s,
///   regardless of how queries are partitioned internally.
/// * `publish`/`publish_batch` allocate document ids in submission order and
///   clamp arrival timestamps to be monotone across calls.
/// * After identical `register`/`unregister`/`publish` sequences, two
///   backends with the same `lambda` report **bit-identical** `results` for
///   every query, whatever their engine kind or shard count (checked against
///   the exhaustive oracle in `tests/backend_api.rs`).
/// * `snapshot` captures the full monitor state; [`Snapshot::restore_into`]
///   rebuilds it on any freshly built backend of the same `lambda` —
///   including one with a different shard count.
pub trait MonitorBackend {
    /// Register a user's continuous query; returns its public id.
    fn register(&mut self, spec: QuerySpec) -> QueryId;

    /// Remove a query. Returns false when the id is unknown or removed.
    fn unregister(&mut self, qid: QueryId) -> bool;

    /// Publish one document to the stream.
    fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt;

    /// Publish a batch of documents through the backend's batched (and, on
    /// sharded backends, pipelined) ingestion path.
    fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt;

    /// Current top-k of a query, best first. `None` after unregistration.
    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>>;

    /// Number of live queries.
    fn num_queries(&self) -> usize;

    /// Number of shards doing the work (1 for single-engine backends).
    fn shards(&self) -> usize {
        1
    }

    /// How the backend partitions its work (see [`ShardingMode`]).
    /// Single-engine backends report [`ShardingMode::Queries`] — the
    /// degenerate one-shard query partition.
    fn sharding_mode(&self) -> ShardingMode {
        ShardingMode::Queries
    }

    /// The decay parameter the backend was built with.
    fn lambda(&self) -> f64;

    /// Capture the full monitor state (versioned, engine-agnostic).
    fn snapshot(&self) -> Snapshot;

    // --- Restore plumbing, driven by [`Snapshot::restore_into`]. ---

    /// Adopt a captured decay landmark on every engine. Must run on a fresh
    /// backend *before* any seeding: snapshot scores are expressed in the
    /// snapshot's landmark frame.
    fn restore_landmark(&mut self, landmark: Timestamp);

    /// Adopt a captured stream position (next document id, last arrival).
    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp);

    /// Warm-start a query's result set with pre-scored history.
    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]);
}
