//! The candidate-collection walk strategies shared by the oracle and the
//! doc-parallel scorer workers.
//!
//! [`collect_scored_candidates`] is the term-filtered **exhaustive** walk:
//! the arithmetic that defines correctness. [`Naive`](crate::Naive) runs it
//! verbatim, and so do document-mode workers by default — which is what
//! makes "bit-identical across sharding modes" a structural property rather
//! than two copies kept in sync by hand.
//!
//! [`collect_scored_candidates_bounded`] is the **bounded** walk document
//! mode switches to when pruning is enabled: the same collection semantics,
//! but consulting a frozen [`EpochBounds`] epoch to skip whole zones of a
//! postings list whose score upper bound cannot reach the document's target
//! `θ_d` (see [`ctk_index::epoch_bounds`] for the bound's derivation). Both
//! walks score every surviving candidate with the **same helper over the
//! same registration records in the same accumulation order**, so a
//! candidate collected by either walk carries a bit-identical raw cosine —
//! the bounded walk can only *drop* candidates the submit-time threshold
//! filter would reject anyway, never change one.
//!
//! Work accounting: both walks fill the same [`EventStats`] fields for the
//! work they actually perform; the bounded walk additionally reports
//! `zones_skipped` / `postings_skipped` for the work its bounds proved
//! unnecessary, and `bound_computations` for the zone probes that proved
//! it. Skipping changes the *work* counters (that is the point), never the
//! results, changes or per-document `updates`.

use crate::engine::{advance_past_current, advance_to, CursorSet};
use crate::stats::EventStats;
use ctk_common::{Document, FxHashMap, QueryId, TermId};
use ctk_index::{BlockMax, EpochBounds, QueryIndex};

/// The zone granularity of the bounded walk, aligned with [`BlockMax`]'s
/// default block so every whole-zone probe is answered from the block cache
/// in O(1).
pub const DOC_WALK_ZONE: usize = ctk_index::block_max::DEFAULT_BLOCK;

/// The epoch-bound instantiation document mode uses.
pub type DocEpochBounds = EpochBounds<BlockMax>;

/// Relative safety margin on the skip test: a zone is skipped only when its
/// bound is below `θ_d · (1 − ε)`. The bound and the oracle's dot product
/// are both f64 sums taken in different association orders, so they can
/// disagree by a few ulps per term; ε = 1e-12 covers documents with up to
/// ~10⁴ matched terms with orders of magnitude to spare, keeping boundary
/// ties (score exactly equal to a threshold — real insertions under the
/// smaller-doc-id tie-break) out of pruning's reach.
const SKIP_MARGIN: f64 = 1.0 - 1e-12;

/// Reusable scratch for the collection walks: the per-event document-weight
/// map, the epoch-stamped dedup array, and the bounded walk's cursor set.
#[derive(Debug, Default)]
pub struct MatchScratch {
    doc_weights: FxHashMap<TermId, f64>,
    seen: Vec<u32>,
    epoch: u32,
    /// The bounded walk's per-event cursor working set (one cursor per
    /// matched list, id-ordered — the same machinery MRIO traverses with).
    cursors: CursorSet,
}

impl MatchScratch {
    /// Reset the per-event state shared by both walks: document weights and
    /// the dedup stamp.
    fn begin_event(&mut self, index: &QueryIndex, doc: &Document) {
        self.doc_weights.clear();
        for (t, f) in doc.vector.iter() {
            self.doc_weights.insert(t, f as f64);
        }
        if self.seen.len() < index.num_slots() {
            self.seen.resize(index.num_slots(), 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrap: stale marks could alias the new epoch.
            self.seen.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
    }
}

/// Fully score every collected candidate: exact raw cosine as f64
/// accumulation over the query's registration record, in record order. One
/// function, called by both walks — the definition of a candidate's score.
fn score_candidates(
    index: &QueryIndex,
    s: &MatchScratch,
    ev: &mut EventStats,
    out: &mut [(QueryId, f64)],
) {
    for (qid, dot) in out.iter_mut() {
        let rec = index.record(*qid).expect("live posting implies record");
        let mut acc = 0.0f64;
        for e in rec.entries() {
            if let Some(&f) = s.doc_weights.get(&e.term) {
                acc += f * e.weight as f64;
            }
        }
        *dot = acc;
        ev.full_evaluations += 1;
        ev.iterations += 1;
    }
}

/// The term-filtered exhaustive walk: collect every live query sharing at
/// least one term with `doc` (via the ID-ordered lists), ascending query
/// id, together with its **exact raw cosine**, updating the walk counters
/// in `ev`.
///
/// This single function is the arithmetic that both the [`crate::Naive`]
/// oracle and the doc-parallel monitor's scorer workers run.
pub fn collect_scored_candidates(
    index: &QueryIndex,
    doc: &Document,
    s: &mut MatchScratch,
    ev: &mut EventStats,
    out: &mut Vec<(QueryId, f64)>,
) {
    out.clear();
    s.begin_event(index, doc);

    // Union of matching queries via the live postings.
    for (term, _) in doc.vector.iter() {
        let Some(li) = index.list_of_term(term) else { continue };
        let list = index.list(li);
        if list.live() == 0 {
            continue;
        }
        ev.matched_lists += 1;
        list.for_each_live(|qid, _| {
            ev.postings_accessed += 1;
            let slot = qid.index();
            if s.seen[slot] != s.epoch {
                s.seen[slot] = s.epoch;
                out.push((qid, 0.0));
            }
        });
    }
    out.sort_unstable_by_key(|&(qid, _)| qid);
    score_candidates(index, s, ev, out);
}

/// Exclusive id bound of zone `i` of a cursor set: the next cursor's id, or
/// one past the last cursor for the final zone (making it inclusive of
/// `c_m`) — MRIO's zone geometry.
fn zone_bound(cursors: &CursorSet, i: usize) -> QueryId {
    let cs = &cursors.cursors;
    if i + 1 < cs.len() {
        cs[i + 1].qid
    } else {
        QueryId(cs[cs.len() - 1].qid.0 + 1)
    }
}

/// `UB*` for the prefix `0..=i` of the cursor set against the frozen
/// bounds: for each prefix list, the zone maximum between its cursor and
/// the zone's id bound. Counts one bound computation per term.
fn prefix_bound(
    index: &QueryIndex,
    bounds: &DocEpochBounds,
    cursors: &CursorSet,
    i: usize,
    bound: QueryId,
    ev: &mut EventStats,
) -> f64 {
    let mut sum = 0.0f64;
    for c in &cursors.cursors[..=i] {
        let hi = index.list(c.list).seek(c.pos, bound);
        let mx = bounds.zone_max(c.list, c.pos, hi);
        ev.bound_computations += 1;
        if mx > 0.0 {
            sum += c.f * mx;
            if sum >= f64::INFINITY {
                break;
            }
        }
    }
    sum
}

/// The bounded walk: identical collection semantics to
/// [`collect_scored_candidates`], except that id zones whose `UB*` proves
/// no resident query can reach the document's target `θ_d` are skipped
/// wholesale — MRIO's traversal (global pre-filter, galloped minimal
/// pivot, zone jumps) run against the epoch's *frozen* bounds instead of an
/// engine's live ones.
///
/// `bounds` must be a frozen epoch built over (a prefix of the threshold
/// history of) the same `index` epoch, and `theta` the document's pruning
/// target `θ_d = e^{−λΔτ}` in the *same decay frame* the bounds were built
/// in. Conservativeness then follows from threshold monotonicity: `S_k`
/// only rises between bound rebuilds, so every frozen zone value
/// upper-bounds the live `u = w/S_k`, and a skipped query's score is
/// strictly below its own threshold — the submit-time filter (and the
/// merge) would reject it anyway. The walk is therefore a *filter
/// accelerator*: it changes which candidates are even looked at, never
/// which candidates survive.
pub fn collect_scored_candidates_bounded(
    index: &QueryIndex,
    bounds: &DocEpochBounds,
    theta: f64,
    doc: &Document,
    s: &mut MatchScratch,
    ev: &mut EventStats,
    out: &mut Vec<(QueryId, f64)>,
) {
    out.clear();
    s.begin_event(index, doc);
    let mut cursors = std::mem::take(&mut s.cursors);
    ev.matched_lists += cursors.build(index, doc) as u64;
    let target = theta * SKIP_MARGIN;

    if cursors.len() == 1 {
        // Single matched list: cursor zones degenerate to one id per zone,
        // so jump block-aligned position zones instead — every probe is an
        // O(1) block-cache read.
        let c = cursors.cursors[0];
        let list = index.list(c.list);
        let len = list.len();
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + DOC_WALK_ZONE).min(len);
            ev.bound_computations += 1;
            if c.f * bounds.zone_max(c.list, lo, hi) < target {
                ev.zones_skipped += 1;
                ev.postings_skipped += (hi - lo) as u64;
            } else {
                for pos in lo..hi {
                    let p = list.get(pos);
                    if !p.is_tombstone() {
                        ev.postings_accessed += 1;
                        out.push((p.qid, 0.0));
                    }
                }
            }
            lo = hi;
        }
    } else {
        loop {
            if cursors.is_empty() {
                break;
            }
            let m = cursors.len();

            // Phase 1: RIO-style global pre-filter over the cached per-list
            // maxima. If even the sum of global bounds never reaches the
            // target, the entire remaining id space is pruned.
            let mut global_pivot: Option<usize> = None;
            {
                let mut gsum = 0.0f64;
                for (i, c) in cursors.cursors.iter().enumerate() {
                    let g = bounds.global_max(c.list);
                    ev.bound_computations += 1;
                    if g > 0.0 {
                        gsum += c.f * g;
                    }
                    if gsum >= target {
                        global_pivot = Some(i);
                        break;
                    }
                }
            }
            let Some(ig) = global_pivot else {
                ev.zones_skipped += 1;
                for c in &cursors.cursors {
                    ev.postings_skipped += (index.list(c.list).len() - c.pos) as u64;
                }
                break;
            };

            // Phase 2: smallest i >= ig with UB*(i) >= target (UB* is
            // monotone in i): gallop up, then binary-search the bracket.
            let mut pivot_idx: Option<usize> = None;
            let mut lo = ig;
            let mut step = 0usize;
            loop {
                let i = (ig + step).min(m - 1);
                let b = zone_bound(&cursors, i);
                if prefix_bound(index, bounds, &cursors, i, b, ev) >= target {
                    let mut hi = i;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let bm = zone_bound(&cursors, mid);
                        if prefix_bound(index, bounds, &cursors, mid, bm, ev) >= target {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    pivot_idx = Some(lo);
                    break;
                }
                if i == m - 1 {
                    break; // even UB*(m) < target
                }
                lo = i + 1;
                step = step * 2 + 1;
            }

            match pivot_idx {
                None => {
                    // The bound refutes the whole zone [c_1, c_m]: jump
                    // every cursor past the last covered id.
                    ev.zones_skipped += 1;
                    let jump = zone_bound(&cursors, m - 1);
                    for c in cursors.cursors.iter_mut() {
                        let from = c.pos;
                        advance_to(index, c, jump);
                        ev.postings_accessed += 1;
                        ev.postings_skipped += (c.pos - from).saturating_sub(1) as u64;
                    }
                    cursors.sort_full();
                }
                Some(p) => {
                    let pivot = cursors.cursors[p].qid;
                    if cursors.cursors[0].qid == pivot {
                        // Collect the pivot (scored with the shared record
                        // helper below) and consume its aligned postings.
                        out.push((pivot, 0.0));
                        let mut moved = 0usize;
                        for c in cursors.cursors.iter_mut() {
                            if c.qid != pivot {
                                break;
                            }
                            ev.postings_accessed += 1;
                            advance_past_current(index, c);
                            moved += 1;
                        }
                        cursors.repair_prefix(moved);
                    } else {
                        for c in cursors.cursors[..p].iter_mut() {
                            let from = c.pos;
                            advance_to(index, c, pivot);
                            ev.postings_accessed += 1;
                            ev.postings_skipped += (c.pos - from).saturating_sub(1) as u64;
                        }
                        cursors.repair_prefix(p);
                    }
                }
            }
        }
    }
    s.cursors = cursors;
    out.sort_unstable_by_key(|&(qid, _)| qid);
    score_candidates(index, s, ev, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, SparseVector};

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    /// Bounds built from a threshold table, frozen.
    fn bounds_from(index: &QueryIndex, thresholds: &[f64]) -> DocEpochBounds {
        let mut b = DocEpochBounds::new();
        b.rebuild_all(index, |qid, w| {
            let t = thresholds[qid.index()];
            if t > 0.0 {
                w as f64 / t
            } else {
                f64::INFINITY
            }
        });
        b.freeze();
        b
    }

    /// The bounded walk's surviving candidates must be exactly the
    /// exhaustive walk's minus entries failing the threshold test, carrying
    /// bit-identical dots — across a spread of thresholds and documents.
    #[test]
    fn bounded_walk_is_a_lossless_filter_accelerator() {
        let mut index = QueryIndex::new();
        let n = 400usize;
        for i in 0..n {
            index.register(&vector(&[(i as u32 % 7, 1.0), (7 + i as u32 % 5, 0.5)]), 1);
        }
        // A spread of filled thresholds, a few unfilled stragglers, a few
        // tombstones.
        let mut thresholds: Vec<f64> = (0..n).map(|i| 0.2 + (i % 10) as f64 * 0.08).collect();
        for t in thresholds.iter_mut().step_by(97) {
            *t = 0.0; // unfilled: must always be collected when matched
        }
        for q in [13u32, 14, 15, 200] {
            index.unregister(QueryId(q));
        }
        let bounds = bounds_from(&index, &thresholds);

        let mut s_ex = MatchScratch::default();
        let mut s_bd = MatchScratch::default();
        for d in 0..40u64 {
            let docv =
                doc(d, &[((d % 7) as u32, 1.0), ((7 + d % 5) as u32, 0.3), (999, 1.0)], d as f64);
            let theta = 0.9f64; // pure-cosine frame: amp = 1/theta
            let mut ev_ex = EventStats::default();
            let mut ev_bd = EventStats::default();
            let mut out_ex = Vec::new();
            let mut out_bd = Vec::new();
            collect_scored_candidates(&index, &docv, &mut s_ex, &mut ev_ex, &mut out_ex);
            collect_scored_candidates_bounded(
                &index,
                &bounds,
                theta,
                &docv,
                &mut s_bd,
                &mut ev_bd,
                &mut out_bd,
            );

            // Every surviving exhaustive candidate (dot/S_k >= theta, or
            // unfilled) must appear in the bounded output with the same dot.
            for &(qid, dot) in &out_ex {
                let t = thresholds[qid.index()];
                if t == 0.0 || dot / t >= theta {
                    let found = out_bd.iter().find(|&&(q, _)| q == qid);
                    match found {
                        Some(&(_, bdot)) => {
                            assert!(bdot == dot, "query {qid}: dot {bdot} != oracle {dot}")
                        }
                        None => panic!("query {qid} (dot {dot}, S_k {t}) was wrongly pruned"),
                    }
                }
            }
            // And the bounded output is a subset of the exhaustive one.
            for &(qid, dot) in &out_bd {
                let ex = out_ex.iter().find(|&&(q, _)| q == qid);
                assert_eq!(ex, Some(&(qid, dot)), "bounded walk invented a candidate");
            }
            // Conservation: skipped slots at least cover the oracle's extra
            // posting reads.
            assert!(ev_bd.postings_accessed <= ev_ex.postings_accessed);
            assert!(
                ev_bd.postings_accessed + ev_bd.postings_skipped >= ev_ex.postings_accessed,
                "skips must account for the walk delta"
            );
            assert_eq!(ev_bd.matched_lists, ev_ex.matched_lists);
        }
    }

    #[test]
    fn bounded_walk_skips_zones_under_tight_thresholds() {
        // One hot term, hundreds of filled queries with high thresholds: a
        // weak document must skip nearly everything.
        let mut index = QueryIndex::new();
        let n = 512usize;
        for _ in 0..n {
            index.register(&vector(&[(1, 1.0), (2, 1.0)]), 1);
        }
        let thresholds = vec![0.95f64; n];
        let bounds = bounds_from(&index, &thresholds);
        let mut s = MatchScratch::default();
        let mut ev = EventStats::default();
        let mut out = Vec::new();
        // cos(doc, q) = (1/√2)·(1/√10·3) ≈ 0.67 < 0.95: nothing qualifies.
        let weak = doc(0, &[(1, 1.0), (3, 3.0)], 0.0);
        collect_scored_candidates_bounded(&index, &bounds, 1.0, &weak, &mut s, &mut ev, &mut out);
        assert!(out.is_empty(), "no candidate can beat 0.95");
        assert_eq!(ev.postings_accessed, 0, "every zone is skipped");
        assert_eq!(ev.zones_skipped as usize, n.div_ceil(DOC_WALK_ZONE));
        assert_eq!(ev.postings_skipped as usize, n);
        assert_eq!(ev.full_evaluations, 0);

        // A perfect-match document walks everything and keeps all dots.
        let strong = doc(1, &[(1, 1.0), (2, 1.0)], 0.0);
        let mut ev2 = EventStats::default();
        collect_scored_candidates_bounded(
            &index, &bounds, 1.0, &strong, &mut s, &mut ev2, &mut out,
        );
        assert_eq!(out.len(), n);
        assert_eq!(ev2.zones_skipped, 0);
    }

    #[test]
    fn unfilled_queries_are_never_pruned() {
        let mut index = QueryIndex::new();
        for _ in 0..128 {
            index.register(&vector(&[(1, 1.0)]), 1);
        }
        let unfilled = index.register(&vector(&[(1, 1.0)]), 1);
        let mut thresholds = vec![0.99f64; 129];
        thresholds[unfilled.index()] = 0.0;
        let bounds = bounds_from(&index, &thresholds);
        let mut s = MatchScratch::default();
        let mut ev = EventStats::default();
        let mut out = Vec::new();
        let weak = doc(0, &[(1, 0.1), (9, 3.0)], 0.0);
        collect_scored_candidates_bounded(&index, &bounds, 1.0, &weak, &mut s, &mut ev, &mut out);
        assert_eq!(out.len(), 1, "only the unfilled query survives");
        assert_eq!(out[0].0, unfilled);
        assert!(ev.zones_skipped >= 2, "the filled-only zones are skipped");
    }
}
