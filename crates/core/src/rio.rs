//! RIO — Reverse ID-Ordering (paper §III, Eq. 2).
//!
//! The preliminary method of the paper: ID-ordered postings lists over the
//! *queries*, probed by each arriving document with a WAND-style pivot
//! traversal. The upper bound for the prefix of lists `1..i` in the
//! processing order uses each list's **global** maximum normalized
//! preference `max_q w_t(q)/S_k(q)`:
//!
//! ```text
//! UB(i) = Σ_{j≤i} f_j · max_{q∈Q} u_j(q)      (compared against θ_d)
//! ```
//!
//! Global maxima shrink whenever any query's `S_k` grows, so they are
//! maintained with one [`VersionedMaxTracker`] per list. When even `UB(m)`
//! stays below `θ_d` the event terminates outright — a global bound covers
//! every query id, including those beyond the last cursor.

use crate::engine::{advance_past_current, advance_to, CursorSet, EngineBase};
use crate::stats::{CumulativeStats, EventStats};
use crate::topk::TopKState;
use crate::traits::{ContinuousTopK, ResultChange};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use ctk_index::{QueryIndex, StorageConfig, StorageStats, VersionedMaxTracker};

/// The RIO algorithm.
pub struct Rio {
    base: EngineBase,
    index: QueryIndex,
    /// One tracker per postings list, holding `u = w/S_k` maxima.
    trackers: Vec<VersionedMaxTracker>,
    cursors: CursorSet,
}

impl Rio {
    pub fn new(lambda: f64) -> Self {
        Rio::with_storage(lambda, &StorageConfig::plain())
    }

    /// As [`Rio::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Rio {
            base: EngineBase::new(lambda),
            index: QueryIndex::with_storage(storage),
            trackers: Vec::new(),
            cursors: CursorSet::default(),
        }
    }

    fn sync_tracker_count(&mut self) {
        while self.trackers.len() < self.index.num_lists() {
            self.trackers.push(VersionedMaxTracker::new());
        }
    }

    /// Push fresh `u` entries for every term of `qid` (called after any
    /// `S_k` change).
    fn push_query_maxima(&mut self, qid: QueryId) {
        let Some(state) = self.base.state(qid) else { return };
        let version = state.version();
        let Some(rec) = self.index.record(qid) else { return };
        for e in rec.entries() {
            let u = state.normalized(e.weight as f64);
            self.trackers[e.list as usize].push(qid, version, u);
        }
    }

    /// After a landmark renormalization every version was bumped; re-push
    /// current maxima for all live queries (rare, amortized negligible).
    fn refresh_all_trackers(&mut self) {
        let qids: Vec<QueryId> = self.index.live_ids().collect();
        for qid in qids {
            self.push_query_maxima(qid);
        }
    }
}

impl ContinuousTopK for Rio {
    fn name(&self) -> &'static str {
        "RIO"
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.index.register(&spec.vector, spec.k as u32);
        self.base.push_state(spec.k as u32);
        self.sync_tracker_count();
        self.push_query_maxima(qid);
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        if self.index.unregister(qid).is_some() {
            self.base.drop_state(qid);
            // Tracker entries die lazily: no version is current any more.
            true
        } else {
            false
        }
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        if self.base.seed(qid, seeds) {
            self.push_query_maxima(qid);
        }
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (theta, amp, renorm) = self.base.begin_event(doc.arrival);
        if renorm.is_some() {
            self.refresh_all_trackers();
        }
        let mut ev = EventStats {
            matched_lists: self.cursors.build(&self.index, doc) as u64,
            ..EventStats::default()
        };

        loop {
            if self.cursors.is_empty() {
                break;
            }
            ev.iterations += 1;

            // Pivot selection over global per-list maxima (Eq. 2).
            let mut pivot_idx = None;
            {
                let base = &self.base;
                let trackers = &mut self.trackers;
                let mut prefix = 0.0f64;
                for (i, c) in self.cursors.cursors.iter().enumerate() {
                    let mx = trackers[c.list as usize].peek_max(|q, v| base.is_current(q, v));
                    ev.bound_computations += 1;
                    if mx > 0.0 {
                        prefix += c.f * mx;
                    }
                    if prefix >= theta {
                        pivot_idx = Some(i);
                        break;
                    }
                }
            }
            let Some(p) = pivot_idx else {
                // Even the full global bound misses θ: nothing anywhere in
                // the index can qualify for this document.
                break;
            };
            let pivot = self.cursors.cursors[p].qid;

            if self.cursors.cursors[0].qid == pivot {
                // Candidate: fully evaluate from the aligned cursors.
                let mut dot = 0.0f64;
                let mut moved = 0usize;
                for c in self.cursors.cursors.iter_mut() {
                    if c.qid != pivot {
                        break; // sorted: aligned cursors form a prefix
                    }
                    let posting = self.index.list(c.list).get(c.pos);
                    dot += c.f * posting.weight as f64;
                    ev.postings_accessed += 1;
                    advance_past_current(&self.index, c);
                    moved += 1;
                }
                ev.full_evaluations += 1;
                if self.base.offer(pivot, doc, dot, amp) {
                    ev.updates += 1;
                    self.push_query_maxima(pivot);
                }
                self.cursors.repair_prefix(moved);
            } else {
                // Jump: queries in [c_1, pivot) are pruned by UB(p-1) < θ.
                for c in self.cursors.cursors[..p].iter_mut() {
                    advance_to(&self.index, c, pivot);
                    ev.postings_accessed += 1;
                }
                self.cursors.repair_prefix(p);
            }
        }

        // Opportunistic heap hygiene for the touched lists.
        {
            let base = &self.base;
            for c in &self.cursors.cursors {
                self.trackers[c.list as usize].maybe_compact(|q, v| base.is_current(q, v));
            }
        }

        ev.accumulate_into(&mut self.base.cum);
        ev
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.index.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }

    fn tombstone_ratio(&self) -> f64 {
        self.index.tombstone_ratio()
    }

    fn compact_index(&mut self) -> usize {
        // Trackers are keyed by (qid, version), not list position, so the
        // postings can move freely underneath them.
        self.index.compact().len()
    }

    fn storage_stats(&self) -> StorageStats {
        self.index.storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn single_query_lifecycle() {
        let mut r = Rio::new(0.0);
        let q = r.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        r.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        r.process(&doc(2, &[(2, 1.0), (7, 1.0)], 1.0));
        r.process(&doc(3, &[(9, 1.0)], 2.0));
        let res = r.results(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].doc, DocId(1));
        assert!((res[0].score.get() - 1.0).abs() < 1e-6);
        assert_eq!(res[1].doc, DocId(2));
    }

    #[test]
    fn pruning_skips_hopeless_queries_but_results_stay_exact() {
        let mut r = Rio::new(0.0);
        let q_easy = r.register(spec(&[(1, 1.0)], 1));
        let q_hard = r.register(spec(&[(2, 1.0)], 3));
        // A perfect match fills q_easy with threshold 1.0 ...
        r.process(&doc(0, &[(1, 1.0)], 0.0));
        // ... then a run of documents that barely touch term 1: their
        // f_1·u_1 = ~0.1 < θ = 1, so q_easy must be pruned, while q_hard
        // still gets its updates.
        for i in 1..21u64 {
            r.process(&doc(i, &[(1, 0.1), (2, 1.0)], i as f64));
        }
        let easy = r.results(q_easy).unwrap();
        assert_eq!(easy.len(), 1);
        assert_eq!(easy[0].doc, DocId(0), "exactness despite pruning");
        assert_eq!(r.results(q_hard).unwrap().len(), 3);
        // 21 events, 2 queries: exhaustive matching would fully evaluate
        // q_easy on every event; pruning must cut that down.
        let cum = r.cumulative();
        assert!(cum.full_evaluations < cum.events * 2, "{cum:?}");
    }

    #[test]
    fn unregister_mid_stream() {
        let mut r = Rio::new(0.0);
        let a = r.register(spec(&[(1, 1.0)], 1));
        let b = r.register(spec(&[(1, 1.0)], 1));
        r.process(&doc(1, &[(1, 1.0)], 0.0));
        assert!(r.unregister(a));
        r.process(&doc(2, &[(1, 2.0)], 1.0));
        assert!(r.results(a).is_none());
        assert_eq!(r.results(b).unwrap().len(), 1);
        assert_eq!(r.num_queries(), 1);
    }

    #[test]
    fn renormalization_keeps_results_consistent() {
        let mut r = Rio::new(0.5);
        // Force frequent renorms.
        r.base.decay = crate::score::DecayModel::new(0.5).with_max_exponent(3.0);
        let q = r.register(spec(&[(1, 1.0)], 2));
        for i in 0..40u64 {
            r.process(&doc(i, &[(1, 1.0), (2, (i % 3) as f32 + 0.1)], i as f64));
        }
        assert!(r.cumulative().renormalizations > 0);
        // With decay, the newest matching docs win.
        let docs: Vec<u64> = r.results(q).unwrap().iter().map(|s| s.doc.0).collect();
        assert_eq!(docs, vec![39, 38]);
    }
}
