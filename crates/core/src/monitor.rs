//! The application-facing monitor front-end.
//!
//! Wraps any [`ContinuousTopK`] engine and adds what deployments need
//! around the core algorithm:
//!
//! * document id allocation and monotone arrival-time clamping;
//! * result-change notifications per published document;
//! * snapshot / restore of the full monitor state (queries + results) via
//!   serde, so a server can restart without replaying the stream.

use crate::traits::{ContinuousTopK, ResultChange};
use ctk_common::{DocId, FxHashMap, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};
use serde::{Deserialize, Serialize};

/// A monitor wrapping an engine `E`.
pub struct Monitor<E: ContinuousTopK> {
    engine: E,
    specs: Vec<Option<QuerySpec>>,
    next_doc: u64,
    last_arrival: Timestamp,
}

impl<E: ContinuousTopK> Monitor<E> {
    pub fn new(engine: E) -> Self {
        Monitor { engine, specs: Vec::new(), next_doc: 0, last_arrival: 0.0 }
    }

    /// The wrapped engine (read access for stats etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Register a user's continuous query.
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.engine.register(spec.clone());
        if self.specs.len() <= qid.index() {
            self.specs.resize(qid.index() + 1, None);
        }
        self.specs[qid.index()] = Some(spec);
        qid
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: QueryId) -> bool {
        if self.engine.unregister(qid) {
            self.specs[qid.index()] = None;
            true
        } else {
            false
        }
    }

    /// Publish a document to the stream: assigns the next document id,
    /// clamps the arrival time to be monotone, refreshes all results and
    /// returns the changes it caused.
    pub fn publish(
        &mut self,
        pairs: Vec<(TermId, f32)>,
        arrival: Timestamp,
    ) -> (DocId, Vec<ResultChange>) {
        let doc = self.admit(pairs, arrival);
        let id = doc.id;
        self.engine.process(&doc);
        (id, self.engine.last_changes().to_vec())
    }

    /// Publish a batch of documents through the engine's batched ingestion
    /// path: ids are allocated in order, arrival times are clamped monotone
    /// across the whole batch, and the returned changes cover every
    /// document (attribute them via `ResultChange::inserted`).
    pub fn publish_batch(
        &mut self,
        batch: Vec<(Vec<(TermId, f32)>, Timestamp)>,
    ) -> (Vec<DocId>, Vec<ResultChange>) {
        let docs: Vec<ctk_common::Document> =
            batch.into_iter().map(|(pairs, arrival)| self.admit(pairs, arrival)).collect();
        let ids = docs.iter().map(|d| d.id).collect();
        let mut changes = Vec::new();
        self.engine.process_batch_into(&docs, &mut changes);
        (ids, changes)
    }

    /// Stamp one incoming document: next id, monotone-clamped arrival.
    fn admit(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> ctk_common::Document {
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        ctk_common::Document::new(id, pairs, arrival)
    }

    /// Current top-k of a query, best first.
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.engine.results(qid)
    }

    /// Number of live queries.
    pub fn num_queries(&self) -> usize {
        self.engine.num_queries()
    }

    /// Capture the full monitor state.
    pub fn snapshot(&self) -> Snapshot {
        let queries = self
            .specs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|spec| {
                    let qid = QueryId(i as u32);
                    SnapshotQuery {
                        qid: qid.0,
                        spec: spec.clone(),
                        results: self.engine.results(qid).unwrap_or_default(),
                    }
                })
            })
            .collect();
        Snapshot {
            lambda: self.engine.lambda(),
            landmark: self.engine.landmark(),
            next_doc: self.next_doc,
            last_arrival: self.last_arrival,
            queries,
        }
    }

    /// Rebuild a monitor from a snapshot using a fresh engine (which must
    /// have been constructed with `snapshot.lambda`). Returns the mapping
    /// from snapshot query ids to the new ids.
    pub fn restore(engine: E, snapshot: &Snapshot) -> (Self, FxHashMap<QueryId, QueryId>) {
        assert_eq!(
            engine.lambda(),
            snapshot.lambda,
            "engine must be constructed with the snapshot's lambda"
        );
        let mut monitor = Monitor::new(engine);
        // Adopt the snapshot's decay landmark before seeding: the seeded
        // scores are expressed relative to it. A fresh engine sits at
        // landmark 0, so skipping this step after any renormalization had
        // fired would re-inflate (and soon re-renormalize) the seeds in the
        // wrong frame, corrupting every threshold.
        monitor.engine.restore_landmark(snapshot.landmark);
        monitor.next_doc = snapshot.next_doc;
        monitor.last_arrival = snapshot.last_arrival;
        let mut mapping = FxHashMap::default();
        for q in &snapshot.queries {
            let new_qid = monitor.register(q.spec.clone());
            monitor.engine.seed_results(new_qid, &q.results);
            mapping.insert(QueryId(q.qid), new_qid);
        }
        (monitor, mapping)
    }
}

/// One query's state inside a [`Snapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotQuery {
    pub qid: u32,
    pub spec: QuerySpec,
    pub results: Vec<ScoredDoc>,
}

/// A serializable capture of the whole monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub lambda: f64,
    /// The decay landmark all stored scores are relative to. Restoring
    /// without it mixes score frames once any renormalization has fired.
    pub landmark: Timestamp,
    pub next_doc: u64,
    pub last_arrival: Timestamp,
    pub queries: Vec<SnapshotQuery>,
}

impl Snapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Snapshot> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrio::MrioSeg;

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    #[test]
    fn publish_assigns_ids_and_reports_changes() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1, 2], 2));
        let (d0, ch0) = m.publish(vec![(TermId(1), 1.0)], 0.0);
        assert_eq!(d0, DocId(0));
        assert_eq!(ch0.len(), 1);
        assert_eq!(ch0[0].query, q);
        let (d1, ch1) = m.publish(vec![(TermId(9), 1.0)], 1.0);
        assert_eq!(d1, DocId(1));
        assert!(ch1.is_empty());
    }

    #[test]
    fn arrival_times_are_clamped_monotone() {
        let mut m = Monitor::new(MrioSeg::new(0.1));
        m.register(spec(&[1], 1));
        m.publish(vec![(TermId(1), 1.0)], 10.0);
        // A stale timestamp must not travel back in time.
        let (_, changes) = m.publish(vec![(TermId(1), 2.0)], 3.0);
        // Same cosine, clamped to the same arrival => tie, smaller doc id
        // stays: no change reported... but doc 1 has same score and LARGER
        // id, so no update.
        assert!(changes.is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_results() {
        let mut m = Monitor::new(MrioSeg::new(0.001));
        let q1 = m.register(spec(&[1, 2], 2));
        let q2 = m.register(spec(&[3], 1));
        for i in 0..20u32 {
            m.publish(vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)], i as f64);
        }
        let snap = m.snapshot();
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();

        let (restored, mapping) = Monitor::restore(MrioSeg::new(0.001), &parsed);
        for (old, new) in [(q1, mapping[&q1]), (q2, mapping[&q2])] {
            assert_eq!(m.results(old), restored.results(new), "query {old}");
        }
        assert_eq!(restored.num_queries(), 2);
    }

    #[test]
    fn restored_monitor_keeps_processing_correctly() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[5], 2));
        m.publish(vec![(TermId(5), 1.0)], 0.0);
        let snap = m.snapshot();
        let (mut r, map) = Monitor::restore(MrioSeg::new(0.0), &snap);
        let rq = map[&q];
        // New stronger doc enters the restored monitor's results.
        let (_, changes) = r.publish(vec![(TermId(5), 3.0)], 1.0);
        assert_eq!(changes.len(), 1);
        let res = r.results(rq).unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn snapshot_after_renormalization_restores_the_landmark_frame() {
        // λ = 0.1 with the default headroom of 60 renormalizes once the
        // stream passes arrival 600 — well before the snapshot at 700.
        let mut m = Monitor::new(MrioSeg::new(0.1));
        let q = m.register(spec(&[1, 2], 3));
        for i in 0..=70u32 {
            // Strong documents: high cosine against the query.
            m.publish(vec![(TermId(1), 1.0), (TermId(2), 1.0)], i as f64 * 10.0);
        }
        assert!(
            m.engine().cumulative().renormalizations >= 1,
            "stream must renormalize before the snapshot for this regression"
        );

        let snap = m.snapshot();
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed.landmark, m.engine().landmark());
        let (mut restored, mapping) = Monitor::restore(MrioSeg::new(0.1), &parsed);
        let rq = mapping[&q];
        assert_eq!(m.results(q), restored.results(rq));

        // The regression: a *weak* document arriving after the restore.
        // Pre-fix, the restored engine sat at landmark 0, immediately
        // re-renormalized to arrival 701 and crushed the seeded scores to
        // ~e^{-60}, so this low-cosine document walked into the top-k. With
        // the landmark restored, both monitors score it in the same frame
        // and reject it identically.
        let weak = vec![(TermId(2), 0.1), (TermId(9), 1.0)];
        let (_, ch_orig) = m.publish(weak.clone(), 701.0);
        let (_, ch_rest) = restored.publish(weak, 701.0);
        assert_eq!(ch_orig, ch_rest, "restored monitor diverged on the first post-restore event");
        assert_eq!(m.results(q), restored.results(rq));
    }

    #[test]
    fn publish_batch_matches_sequential_publishes() {
        let pairs = |i: u32| vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)];
        let mut one = Monitor::new(MrioSeg::new(0.01));
        let q1 = one.register(spec(&[1, 2, 7], 3));
        let mut batch = Monitor::new(MrioSeg::new(0.01));
        let q2 = batch.register(spec(&[1, 2, 7], 3));

        let mut seq_changes = Vec::new();
        for i in 0..30u32 {
            // Include a stale timestamp mid-stream: batch clamping must
            // match the sequential clamp.
            let at = if i == 10 { 2.0 } else { i as f64 };
            let (_, ch) = one.publish(pairs(i), at);
            seq_changes.extend(ch);
        }
        let items: Vec<_> =
            (0..30u32).map(|i| (pairs(i), if i == 10 { 2.0 } else { i as f64 })).collect();
        let (ids, batch_changes) = batch.publish_batch(items);

        assert_eq!(ids.len(), 30);
        assert_eq!(ids[0], DocId(0));
        assert_eq!(ids[29], DocId(29));
        assert_eq!(seq_changes, batch_changes);
        assert_eq!(one.results(q1), batch.results(q2));
    }

    #[test]
    fn unregister_via_monitor() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1], 1));
        assert!(m.unregister(q));
        assert!(!m.unregister(q));
        assert_eq!(m.num_queries(), 0);
        assert!(m.snapshot().queries.is_empty());
    }
}
