//! The single-engine monitor front-end and the versioned snapshot format.
//!
//! [`Monitor`] wraps any [`ContinuousTopK`] engine and adds what deployments
//! need around the core algorithm:
//!
//! * document id allocation and monotone arrival-time clamping;
//! * typed [`PublishReceipt`]s from single and batched publishes;
//! * an optional tombstone-compaction policy applied at batch boundaries;
//! * snapshot / restore of the full monitor state (queries + results) via
//!   the versioned [`Snapshot`] JSON format, so a server can restart
//!   without replaying the stream.
//!
//! It implements [`MonitorBackend`], the same contract the sharded
//! front-end speaks — application code can hold a `Box<dyn MonitorBackend>`
//! and never know which one it got.

use crate::backend::{MonitorBackend, PublishReceipt, PublishRequest};
use crate::lifecycle::{
    pick_victim, EvictionPolicy, LifecycleManager, NamespaceStats, QueryOptions, RetentionPolicy,
};
use crate::traits::ContinuousTopK;
use ctk_common::{DocId, FxHashMap, Namespace, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};
use serde::{Deserialize, Serialize};

/// A monitor wrapping an engine `E`.
pub struct Monitor<E: ContinuousTopK> {
    engine: E,
    specs: Vec<Option<QuerySpec>>,
    next_doc: u64,
    last_arrival: Timestamp,
    /// Tombstone ratio beyond which batch boundaries compact the index
    /// (`0.0` disables the policy).
    compact_at: f64,
    lifecycle: LifecycleManager,
    /// Cap evictions since the last publish, attributed to the next
    /// receipt's first document so lifecycle activity shows up in the
    /// merged stats stream.
    pending_evicted: u64,
}

impl<E: ContinuousTopK> Monitor<E> {
    pub fn new(engine: E) -> Self {
        Monitor {
            engine,
            specs: Vec::new(),
            next_doc: 0,
            last_arrival: 0.0,
            compact_at: 0.0,
            lifecycle: LifecycleManager::new(),
            pending_evicted: 0,
        }
    }

    /// Enable tombstone compaction: whenever a publish leaves the engine's
    /// index with `tombstone_ratio() >= ratio`, the index is compacted (and
    /// the affected bound structures rebuilt) before the next batch. Ratios
    /// `<= 0.0` disable the policy.
    pub fn with_compaction(mut self, ratio: f64) -> Self {
        self.set_compaction_threshold(ratio);
        self
    }

    /// See [`Monitor::with_compaction`].
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        self.compact_at = ratio.max(0.0);
    }

    /// The wrapped engine (read access for stats etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Register a user's continuous query (default lifecycle options).
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        self.register_with(spec, QueryOptions::default())
    }

    /// Register a query with lifecycle options; may evict existing members
    /// of the namespace if a `max_queries` cap is crossed (never the
    /// newcomer itself).
    pub fn register_with(&mut self, spec: QuerySpec, opts: QueryOptions) -> QueryId {
        let qid = self.engine.register(spec.clone());
        if self.specs.len() <= qid.index() {
            self.specs.resize(qid.index() + 1, None);
        }
        self.specs[qid.index()] = Some(spec);
        self.lifecycle.on_register(qid, opts, self.last_arrival);
        self.enforce_cap(opts.namespace, Some(qid));
        qid
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: QueryId) -> bool {
        if self.engine.unregister(qid) {
            self.specs[qid.index()] = None;
            self.lifecycle.on_unregister(qid);
            true
        } else {
            false
        }
    }

    /// Intern a namespace name.
    pub fn intern_namespace(&mut self, name: &str) -> Namespace {
        self.lifecycle.intern(name)
    }

    /// Install a namespace's retention policy; a lowered cap evicts
    /// immediately.
    pub fn set_retention(&mut self, ns: Namespace, policy: RetentionPolicy) {
        self.lifecycle.set_policy(ns, policy);
        self.enforce_cap(ns, None);
    }

    /// Remove every query of a namespace: bulk-tombstone, then force a
    /// compaction so the index sheds the dead postings at once instead of
    /// waiting for the ratio policy. Returns how many queries were removed.
    pub fn forget_namespace(&mut self, ns: Namespace) -> usize {
        let members = self.lifecycle.members(ns);
        for &qid in &members {
            self.lifecycle.on_unregister(qid);
            let removed = self.engine.unregister(qid);
            debug_assert!(removed, "lifecycle member {qid} must be live in the engine");
            self.specs[qid.index()] = None;
        }
        if !members.is_empty() {
            self.engine.compact_index();
        }
        members.len()
    }

    /// Expire queries whose deadline passed, using the stream clock
    /// advanced to the incoming batch's first arrival (clamped monotone).
    /// O(1) when no query carries a deadline. Returns how many expired.
    fn expire_due(&mut self, first_arrival: Option<Timestamp>) -> u64 {
        if self.lifecycle.no_deadlines() {
            return 0;
        }
        let now = first_arrival.map_or(self.last_arrival, |a| a.max(self.last_arrival));
        let due = self.lifecycle.take_expired(now);
        for &qid in &due {
            let removed = self.engine.unregister(qid);
            debug_assert!(removed, "expired query {qid} must be live in the engine");
            self.specs[qid.index()] = None;
        }
        due.len() as u64
    }

    /// Evict until the namespace is back under its cap, per its policy's
    /// victim selection. `protect` (a just-registered newcomer) is never a
    /// candidate, which also guarantees termination for a cap of 0.
    fn enforce_cap(&mut self, ns: Namespace, protect: Option<QueryId>) {
        loop {
            let Some(policy) = self.lifecycle.policy(ns) else { return };
            let Some(cap) = policy.max_queries else { return };
            let members = self.lifecycle.members(ns);
            if members.len() as u64 <= cap {
                return;
            }
            let candidates: Vec<QueryId> =
                members.into_iter().filter(|&q| Some(q) != protect).collect();
            let engine = &self.engine;
            let Some(victim) = pick_victim(&candidates, policy.eviction, |q| {
                engine.results(q).and_then(|r| r.first().map(|sd| sd.score.get())).unwrap_or(0.0)
            }) else {
                return;
            };
            self.lifecycle.note_evicted(victim);
            let removed = self.engine.unregister(victim);
            debug_assert!(removed, "cap victim {victim} must be live in the engine");
            self.specs[victim.index()] = None;
            self.pending_evicted += 1;
        }
    }

    /// Publish a document to the stream: assigns the next document id,
    /// clamps the arrival time to be monotone, refreshes all results and
    /// returns the receipt. This is the batched path with a batch of one —
    /// the changes land in the receipt directly, with no per-document copy
    /// out of the engine's scratch buffer.
    pub fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        let expired = self.expire_due(Some(arrival));
        let doc = self.admit(pairs, arrival);
        let mut receipt = PublishReceipt {
            doc_ids: vec![doc.id],
            changes: Vec::new(),
            stats: Vec::with_capacity(1),
        };
        receipt.stats =
            self.engine.process_batch_into(std::slice::from_ref(&doc), &mut receipt.changes);
        self.maybe_compact();
        self.attribute_lifecycle(&mut receipt, expired);
        receipt
    }

    /// Publish a batch of documents through the engine's batched ingestion
    /// path: ids are allocated in order, arrival times are clamped monotone
    /// across the whole batch, and the receipt covers every document
    /// (attribute changes via `ResultChange::inserted`).
    pub fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        let expired = if batch.is_empty() {
            0 // An empty publish is not a batch boundary: no expiry sweep.
        } else {
            self.expire_due(batch.first().map(|(_, at)| *at))
        };
        let docs: Vec<ctk_common::Document> =
            batch.into_iter().map(|(pairs, arrival)| self.admit(pairs, arrival)).collect();
        let mut receipt = PublishReceipt {
            doc_ids: docs.iter().map(|d| d.id).collect(),
            changes: Vec::new(),
            stats: Vec::new(),
        };
        receipt.stats = self.engine.process_batch_into(&docs, &mut receipt.changes);
        self.maybe_compact();
        self.attribute_lifecycle(&mut receipt, expired);
        receipt
    }

    /// Surface the boundary's lifecycle removals on the receipt's first
    /// document (the boundary the removals happened at). Evictions since
    /// the previous publish ride along here — registration produces no
    /// receipt of its own.
    fn attribute_lifecycle(&mut self, receipt: &mut PublishReceipt, expired: u64) {
        if let Some(first) = receipt.stats.first_mut() {
            first.expired += expired;
            first.evicted += std::mem::take(&mut self.pending_evicted);
        }
    }

    /// Stamp one incoming document: next id, monotone-clamped arrival.
    fn admit(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> ctk_common::Document {
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        ctk_common::Document::new(id, pairs, arrival)
    }

    /// Batch-boundary compaction policy: no event is mid-flight here, so
    /// the index can reorganize safely.
    fn maybe_compact(&mut self) {
        if self.compact_at > 0.0 && self.engine.tombstone_ratio() >= self.compact_at {
            self.engine.compact_index();
        }
    }

    /// Current top-k of a query, best first.
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.engine.results(qid)
    }

    /// Number of live queries.
    pub fn num_queries(&self) -> usize {
        self.engine.num_queries()
    }

    /// Capture the full monitor state as a single-section [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let queries = self
            .specs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|spec| {
                    let qid = QueryId(i as u32);
                    snapshot_query(
                        qid,
                        spec,
                        self.engine.results(qid).unwrap_or_default(),
                        &self.lifecycle,
                        self.last_arrival,
                    )
                })
            })
            .collect();
        Snapshot {
            version: SNAPSHOT_VERSION,
            lambda: self.engine.lambda(),
            next_doc: self.next_doc,
            last_arrival: self.last_arrival,
            namespaces: self.lifecycle.names().to_vec(),
            policies: snapshot_policies(&self.lifecycle),
            shards: vec![ShardSnapshot { landmark: self.engine.landmark(), queries }],
        }
    }

    /// Rebuild a monitor from a snapshot using a fresh engine (which must
    /// have been constructed with `snapshot.lambda`). Returns the mapping
    /// from snapshot query ids to the new ids. Convenience wrapper around
    /// [`Snapshot::restore_into`].
    pub fn restore(engine: E, snapshot: &Snapshot) -> (Self, FxHashMap<QueryId, QueryId>) {
        let mut monitor = Monitor::new(engine);
        let mapping = snapshot.restore_into(&mut monitor);
        (monitor, mapping)
    }
}

impl<E: ContinuousTopK> MonitorBackend for Monitor<E> {
    fn register_with(&mut self, spec: QuerySpec, opts: QueryOptions) -> QueryId {
        Monitor::register_with(self, spec, opts)
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        Monitor::unregister(self, qid)
    }

    fn intern_namespace(&mut self, name: &str) -> Namespace {
        Monitor::intern_namespace(self, name)
    }

    fn find_namespace(&self, name: &str) -> Option<Namespace> {
        self.lifecycle.find(name)
    }

    fn set_retention(&mut self, ns: Namespace, policy: RetentionPolicy) {
        Monitor::set_retention(self, ns, policy);
    }

    fn retention(&self, ns: Namespace) -> Option<RetentionPolicy> {
        self.lifecycle.policy(ns)
    }

    fn forget_namespace(&mut self, ns: Namespace) -> usize {
        Monitor::forget_namespace(self, ns)
    }

    fn namespace_of(&self, qid: QueryId) -> Option<Namespace> {
        self.lifecycle.namespace_of(qid)
    }

    fn namespace_stats(&self) -> Vec<NamespaceStats> {
        self.lifecycle.stats()
    }

    fn lifecycle_totals(&self) -> (u64, u64) {
        self.lifecycle.totals()
    }

    fn restore_lifecycle(&mut self, qid: QueryId, registered_at: Timestamp, deadline: Option<f64>) {
        self.lifecycle.restore_pin(qid, registered_at, deadline);
    }

    fn publish_request(&mut self, request: PublishRequest) -> PublishReceipt {
        Monitor::publish_batch(self, request.into_batch())
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        Monitor::results(self, qid)
    }

    fn num_queries(&self) -> usize {
        Monitor::num_queries(self)
    }

    fn lambda(&self) -> f64 {
        self.engine.lambda()
    }

    fn storage_stats(&self) -> ctk_index::StorageStats {
        self.engine.storage_stats()
    }

    fn snapshot(&self) -> Snapshot {
        Monitor::snapshot(self)
    }

    fn restore_landmark(&mut self, landmark: Timestamp) {
        self.engine.restore_landmark(landmark);
    }

    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp) {
        self.next_doc = next_doc;
        self.last_arrival = last_arrival;
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        self.engine.seed_results(qid, seeds);
    }
}

/// Current snapshot format version. Bump on any breaking field change and
/// teach [`Snapshot::from_json`] to migrate the previous shape.
pub const SNAPSHOT_VERSION: u32 = 3;

/// One query's state inside a [`Snapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotQuery {
    /// The public query id at capture time.
    pub qid: u32,
    pub spec: QuerySpec,
    pub results: Vec<ScoredDoc>,
    /// Handle into the snapshot's `namespaces` table (0 = default).
    pub namespace: u16,
    /// Stream time of the original registration.
    pub registered_at: Timestamp,
    /// The per-query TTL override, if one was set.
    pub max_age: Option<f64>,
    /// The effective expiry deadline at capture (stream time).
    pub deadline: Option<f64>,
}

/// One namespace's retention policy inside a [`Snapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotPolicy {
    /// Handle into the snapshot's `namespaces` table.
    pub namespace: u16,
    pub max_age: Option<f64>,
    pub max_queries: Option<u64>,
    pub eviction: EvictionPolicy,
}

/// Build one [`SnapshotQuery`] from a live query plus its lifecycle meta.
/// Shared by both monitor front-ends so their sections stay field-identical.
pub(crate) fn snapshot_query(
    qid: QueryId,
    spec: &QuerySpec,
    results: Vec<ScoredDoc>,
    lifecycle: &LifecycleManager,
    last_arrival: Timestamp,
) -> SnapshotQuery {
    let (registered_at, max_age, deadline) =
        lifecycle.meta_of(qid).unwrap_or((last_arrival, None, None));
    SnapshotQuery {
        qid: qid.0,
        spec: spec.clone(),
        results,
        namespace: lifecycle.namespace_of(qid).unwrap_or(Namespace::DEFAULT).0,
        registered_at,
        max_age,
        deadline,
    }
}

/// The lifecycle's installed policies in snapshot form.
pub(crate) fn snapshot_policies(lifecycle: &LifecycleManager) -> Vec<SnapshotPolicy> {
    lifecycle
        .policies()
        .into_iter()
        .map(|(ns, p)| SnapshotPolicy {
            namespace: ns.0,
            max_age: p.max_age,
            max_queries: p.max_queries,
            eviction: p.eviction,
        })
        .collect()
}

/// One shard's section of a [`Snapshot`]: its decay landmark and the
/// queries it hosted. Single-engine monitors write exactly one section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The decay landmark all this section's scores are relative to.
    /// Restoring without it mixes score frames once any renormalization has
    /// fired.
    pub landmark: Timestamp,
    pub queries: Vec<SnapshotQuery>,
}

/// A serializable capture of a whole monitor backend (format version 3).
///
/// The section list records how the capture was partitioned, but restore is
/// partition-agnostic: [`Snapshot::restore_into`] rebalances the queries
/// onto whatever backend it is given, so a 4-shard capture restores into a
/// 2-shard (or single-engine) monitor and vice versa.
///
/// ## Format history
///
/// * **v3** (current): adds the lifecycle layer — a `namespaces` string
///   table, per-namespace retention `policies`, and per-query
///   `namespace`/`registered_at`/`max_age`/`deadline`.
/// * **v2** (PR 3): `version` tag, per-shard `shards` sections each
///   carrying its `landmark`. Migrated into the default namespace with no
///   deadlines; `registered_at` becomes the capture's `last_arrival`.
/// * **v1** (PR 2): flat single-engine capture with a top-level `landmark`.
/// * **v0** (pre-PR-2): as v1 but without `landmark` — migrated with
///   `landmark = 0`, which is exact for captures that never renormalized.
///
/// [`Snapshot::from_json`] parses all four; [`Snapshot::to_json`] always
/// writes v3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub version: u32,
    pub lambda: f64,
    pub next_doc: u64,
    pub last_arrival: Timestamp,
    /// Interned namespace names; the index is the handle queries and
    /// policies refer to. Index 0 is always the default namespace ("").
    pub namespaces: Vec<String>,
    /// Installed retention policies, ascending namespace handle.
    pub policies: Vec<SnapshotPolicy>,
    pub shards: Vec<ShardSnapshot>,
}

/// The v2 (PR-3) on-disk shape, kept for migration only. The derive shim
/// ignores unknown fields, so a v3+ document *structurally* parses as v2;
/// [`Snapshot::from_json`] therefore rejects any `version != 2` here
/// instead of silently dropping the lifecycle fields.
#[derive(Deserialize)]
struct SnapshotV2 {
    version: u32,
    lambda: f64,
    next_doc: u64,
    last_arrival: Timestamp,
    shards: Vec<ShardSnapshotV2>,
}

/// One v2 section: landmark plus lifecycle-less queries.
#[derive(Deserialize)]
struct ShardSnapshotV2 {
    landmark: Timestamp,
    queries: Vec<SnapshotQueryV2>,
}

/// One v2 query: no namespace, no deadlines.
#[derive(Deserialize)]
struct SnapshotQueryV2 {
    qid: u32,
    spec: QuerySpec,
    results: Vec<ScoredDoc>,
}

impl SnapshotQueryV2 {
    /// Lift into the current shape: default namespace, no TTL. The capture
    /// carries no registration times, so `registered_at` pins to the
    /// capture's stream clock — the same value `register_with` would use if
    /// the queries were re-registered at restore time.
    fn migrate(self, last_arrival: Timestamp) -> SnapshotQuery {
        SnapshotQuery {
            qid: self.qid,
            spec: self.spec,
            results: self.results,
            namespace: Namespace::DEFAULT.0,
            registered_at: last_arrival,
            max_age: None,
            deadline: None,
        }
    }
}

/// The v1 (PR-2) on-disk shape, kept for migration only.
#[derive(Deserialize)]
struct SnapshotV1 {
    lambda: f64,
    landmark: Timestamp,
    next_doc: u64,
    last_arrival: Timestamp,
    queries: Vec<SnapshotQueryV2>,
}

/// The v0 (pre-PR-2) on-disk shape, kept for migration only. **Must be
/// tried after [`SnapshotV1`]**: a v1 document also parses as v0 (the extra
/// `landmark` field is ignored), silently dropping the landmark.
#[derive(Deserialize)]
struct SnapshotV0 {
    lambda: f64,
    next_doc: u64,
    last_arrival: Timestamp,
    queries: Vec<SnapshotQueryV2>,
}

/// A lifecycle-less legacy capture lifted to the current in-memory form.
fn migrate_legacy(
    lambda: f64,
    next_doc: u64,
    last_arrival: Timestamp,
    sections: Vec<(Timestamp, Vec<SnapshotQueryV2>)>,
) -> Snapshot {
    Snapshot {
        version: SNAPSHOT_VERSION,
        lambda,
        next_doc,
        last_arrival,
        namespaces: vec![String::new()],
        policies: Vec::new(),
        shards: sections
            .into_iter()
            .map(|(landmark, queries)| ShardSnapshot {
                landmark,
                queries: queries.into_iter().map(|q| q.migrate(last_arrival)).collect(),
            })
            .collect(),
    }
}

impl Snapshot {
    /// Serialize to JSON (always the current format version).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON, migrating v2 / v1 / v0 captures to the
    /// current in-memory form (legacy queries land in the default namespace
    /// with no deadlines; v0 gets `landmark = 0`).
    pub fn from_json(s: &str) -> serde_json::Result<Snapshot> {
        match serde_json::from_str::<Snapshot>(s) {
            Ok(snap) => {
                if snap.version != SNAPSHOT_VERSION {
                    return Err(serde::Error::custom(format!(
                        "unsupported snapshot version {} (this build reads <= {SNAPSHOT_VERSION})",
                        snap.version
                    ))
                    .into());
                }
                Ok(snap)
            }
            Err(v3_err) => {
                if let Ok(v2) = serde_json::from_str::<SnapshotV2>(s) {
                    // The shim ignores unknown fields, so any versioned
                    // document reaches this arm; only a real v2 may migrate
                    // — anything newer must fail as unsupported, not have
                    // its lifecycle fields silently dropped.
                    if v2.version != 2 {
                        return Err(serde::Error::custom(format!(
                            "unsupported snapshot version {} (this build reads <= \
                             {SNAPSHOT_VERSION})",
                            v2.version
                        ))
                        .into());
                    }
                    let sections = v2.shards.into_iter().map(|s| (s.landmark, s.queries)).collect();
                    return Ok(migrate_legacy(v2.lambda, v2.next_doc, v2.last_arrival, sections));
                }
                if let Ok(v1) = serde_json::from_str::<SnapshotV1>(s) {
                    return Ok(migrate_legacy(
                        v1.lambda,
                        v1.next_doc,
                        v1.last_arrival,
                        vec![(v1.landmark, v1.queries)],
                    ));
                }
                if let Ok(v0) = serde_json::from_str::<SnapshotV0>(s) {
                    return Ok(migrate_legacy(
                        v0.lambda,
                        v0.next_doc,
                        v0.last_arrival,
                        vec![(0.0, v0.queries)],
                    ));
                }
                Err(v3_err)
            }
        }
    }

    /// Total queries across all sections.
    pub fn num_queries(&self) -> usize {
        self.shards.iter().map(|s| s.queries.len()).sum()
    }

    /// Iterate every captured query, section order.
    pub fn queries(&self) -> impl Iterator<Item = &SnapshotQuery> + '_ {
        self.shards.iter().flat_map(|s| s.queries.iter())
    }

    /// The decay landmark of the capture. Sections written by one backend
    /// always agree (every shard sees the same arrivals, so their decay
    /// models renormalize in lockstep); the maximum is taken defensively.
    pub fn landmark(&self) -> Timestamp {
        debug_assert!(
            self.shards.windows(2).all(|w| w[0].landmark == w[1].landmark),
            "sections of one capture must share the landmark frame"
        );
        self.shards.iter().map(|s| s.landmark).fold(0.0, f64::max)
    }

    /// Rebuild this capture's state on a freshly built backend (same
    /// `lambda`; any engine kind or shard count). Queries are re-registered
    /// in ascending captured-id order — the sharded backend thereby
    /// rebalances them round-robin over *its* shards, so the capture's
    /// partitioning does not constrain the restore target. Returns the
    /// mapping from captured query ids to the new ids.
    ///
    /// # Panics
    /// Panics when the backend's `lambda` differs from the capture's, or
    /// when the backend already hosts queries (seeded scores are only
    /// meaningful in a fresh landmark frame).
    pub fn restore_into<B: MonitorBackend + ?Sized>(
        &self,
        backend: &mut B,
    ) -> FxHashMap<QueryId, QueryId> {
        assert_eq!(
            backend.lambda(),
            self.lambda,
            "backend must be constructed with the snapshot's lambda"
        );
        assert_eq!(backend.num_queries(), 0, "restore target must be freshly built");
        // Adopt the snapshot's decay landmark before seeding: the seeded
        // scores are expressed relative to it. A fresh engine sits at
        // landmark 0, so skipping this step after any renormalization had
        // fired would re-inflate (and soon re-renormalize) the seeds in the
        // wrong frame, corrupting every threshold.
        backend.restore_landmark(self.landmark());
        backend.restore_stream_position(self.next_doc, self.last_arrival);

        // Rebuild the lifecycle layer first: intern the capture's namespace
        // table (the restore target may renumber handles) and install the
        // policies. No members exist yet, so a `max_queries` cap cannot
        // evict here.
        let ns_map: Vec<Namespace> =
            self.namespaces.iter().map(|name| backend.intern_namespace(name)).collect();
        let map_ns = |handle: u16| -> Namespace {
            ns_map.get(handle as usize).copied().unwrap_or(Namespace::DEFAULT)
        };
        for p in &self.policies {
            backend.set_retention(
                map_ns(p.namespace),
                RetentionPolicy {
                    max_age: p.max_age,
                    max_queries: p.max_queries,
                    eviction: p.eviction,
                },
            );
        }

        let mut captured: Vec<&SnapshotQuery> = self.queries().collect();
        captured.sort_by_key(|q| q.qid);
        let mut mapping = FxHashMap::default();
        for q in captured {
            let new_qid = backend.register_with(
                q.spec.clone(),
                QueryOptions { namespace: map_ns(q.namespace), max_age: q.max_age },
            );
            // Pin the *captured* registration time and deadline: the
            // restore-time stream clock must not stretch TTLs.
            backend.restore_lifecycle(new_qid, q.registered_at, q.deadline);
            backend.seed_results(new_qid, &q.results);
            mapping.insert(QueryId(q.qid), new_qid);
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrio::MrioSeg;

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    #[test]
    fn publish_assigns_ids_and_reports_changes() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1, 2], 2));
        let r0 = m.publish(vec![(TermId(1), 1.0)], 0.0);
        assert_eq!(r0.doc_id(), DocId(0));
        assert_eq!(r0.doc_ids, vec![DocId(0)]);
        assert_eq!(r0.changes.len(), 1);
        assert_eq!(r0.changes[0].query, q);
        assert_eq!(r0.stats.len(), 1);
        assert_eq!(r0.merged_stats().updates, 1);
        let r1 = m.publish(vec![(TermId(9), 1.0)], 1.0);
        assert_eq!(r1.doc_id(), DocId(1));
        assert!(r1.is_quiet());
    }

    #[test]
    fn receipt_groups_changes_per_query() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q1 = m.register(spec(&[1], 2));
        let q2 = m.register(spec(&[1, 2], 2));
        let receipt =
            m.publish_batch(vec![(vec![(TermId(1), 1.0)], 0.0), (vec![(TermId(2), 1.0)], 1.0)]);
        let grouped = receipt.changes_by_query();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, q1);
        assert_eq!(grouped[0].1.len(), 1);
        assert_eq!(grouped[1].0, q2);
        assert_eq!(grouped[1].1.len(), 2, "q2 matched both documents");
        // Document order within the group.
        assert!(grouped[1].1[0].inserted.doc < grouped[1].1[1].inserted.doc);
        assert_eq!(receipt.changes_for(q2).count(), 2);
    }

    #[test]
    fn arrival_times_are_clamped_monotone() {
        let mut m = Monitor::new(MrioSeg::new(0.1));
        m.register(spec(&[1], 1));
        m.publish(vec![(TermId(1), 1.0)], 10.0);
        // A stale timestamp must not travel back in time.
        let receipt = m.publish(vec![(TermId(1), 2.0)], 3.0);
        // Same cosine, clamped to the same arrival => tie, smaller doc id
        // stays: no change reported... but doc 1 has same score and LARGER
        // id, so no update.
        assert!(receipt.is_quiet());
    }

    #[test]
    fn snapshot_round_trip_preserves_results() {
        let mut m = Monitor::new(MrioSeg::new(0.001));
        let q1 = m.register(spec(&[1, 2], 2));
        let q2 = m.register(spec(&[3], 1));
        for i in 0..20u32 {
            m.publish(vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)], i as f64);
        }
        let snap = m.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.shards.len(), 1);
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();

        let (restored, mapping) = Monitor::restore(MrioSeg::new(0.001), &parsed);
        for (old, new) in [(q1, mapping[&q1]), (q2, mapping[&q2])] {
            assert_eq!(m.results(old), restored.results(new), "query {old}");
        }
        assert_eq!(restored.num_queries(), 2);
    }

    #[test]
    fn restored_monitor_keeps_processing_correctly() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[5], 2));
        m.publish(vec![(TermId(5), 1.0)], 0.0);
        let snap = m.snapshot();
        let (mut r, map) = Monitor::restore(MrioSeg::new(0.0), &snap);
        let rq = map[&q];
        // New stronger doc enters the restored monitor's results.
        let receipt = r.publish(vec![(TermId(5), 3.0)], 1.0);
        assert_eq!(receipt.changes.len(), 1);
        let res = r.results(rq).unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn snapshot_after_renormalization_restores_the_landmark_frame() {
        // λ = 0.1 with the default headroom of 60 renormalizes once the
        // stream passes arrival 600 — well before the snapshot at 700.
        let mut m = Monitor::new(MrioSeg::new(0.1));
        let q = m.register(spec(&[1, 2], 3));
        for i in 0..=70u32 {
            // Strong documents: high cosine against the query.
            m.publish(vec![(TermId(1), 1.0), (TermId(2), 1.0)], i as f64 * 10.0);
        }
        assert!(
            m.engine().cumulative().renormalizations >= 1,
            "stream must renormalize before the snapshot for this regression"
        );

        let snap = m.snapshot();
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed.landmark(), m.engine().landmark());
        let (mut restored, mapping) = Monitor::restore(MrioSeg::new(0.1), &parsed);
        let rq = mapping[&q];
        assert_eq!(m.results(q), restored.results(rq));

        // The regression: a *weak* document arriving after the restore.
        // Pre-fix, the restored engine sat at landmark 0, immediately
        // re-renormalized to arrival 701 and crushed the seeded scores to
        // ~e^{-60}, so this low-cosine document walked into the top-k. With
        // the landmark restored, both monitors score it in the same frame
        // and reject it identically.
        let weak = vec![(TermId(2), 0.1), (TermId(9), 1.0)];
        let a = m.publish(weak.clone(), 701.0);
        let b = restored.publish(weak, 701.0);
        assert_eq!(
            a.changes, b.changes,
            "restored monitor diverged on the first post-restore event"
        );
        assert_eq!(m.results(q), restored.results(rq));
    }

    #[test]
    fn publish_batch_matches_sequential_publishes() {
        let pairs = |i: u32| vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)];
        let mut one = Monitor::new(MrioSeg::new(0.01));
        let q1 = one.register(spec(&[1, 2, 7], 3));
        let mut batch = Monitor::new(MrioSeg::new(0.01));
        let q2 = batch.register(spec(&[1, 2, 7], 3));

        let mut seq_changes = Vec::new();
        for i in 0..30u32 {
            // Include a stale timestamp mid-stream: batch clamping must
            // match the sequential clamp.
            let at = if i == 10 { 2.0 } else { i as f64 };
            seq_changes.extend(one.publish(pairs(i), at).changes);
        }
        let items: Vec<_> =
            (0..30u32).map(|i| (pairs(i), if i == 10 { 2.0 } else { i as f64 })).collect();
        let receipt = batch.publish_batch(items);

        assert_eq!(receipt.doc_ids.len(), 30);
        assert_eq!(receipt.doc_ids[0], DocId(0));
        assert_eq!(receipt.doc_ids[29], DocId(29));
        assert_eq!(seq_changes, receipt.changes);
        assert_eq!(one.results(q1), batch.results(q2));
    }

    #[test]
    fn unregister_via_monitor() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1], 1));
        assert!(m.unregister(q));
        assert!(!m.unregister(q));
        assert_eq!(m.num_queries(), 0);
        assert_eq!(m.snapshot().num_queries(), 0);
    }

    #[test]
    fn compaction_policy_fires_at_batch_boundaries_without_changing_results() {
        let mk = |ratio: f64| {
            let mut m = Monitor::new(MrioSeg::new(0.0)).with_compaction(ratio);
            let ids: Vec<QueryId> =
                (0..40).map(|i| m.register(spec(&[i % 6, 6 + i % 4], 2))).collect();
            (m, ids)
        };
        let (mut compacting, ids_a) = mk(0.2);
        let (mut lazy, ids_b) = mk(0.0);

        for round in 0..4u32 {
            // Churn: retire a block of queries, then publish a batch.
            for q in (round * 8)..(round * 8 + 6) {
                assert!(compacting.unregister(QueryId(q)));
                assert!(lazy.unregister(QueryId(q)));
            }
            let batch: Vec<_> = (0..20u32)
                .map(|i| {
                    let t = (round * 20 + i) as f64;
                    (vec![(TermId(i % 6), 1.0), (TermId(6 + i % 4), 0.5)], t)
                })
                .collect();
            let a = compacting.publish_batch(batch.clone());
            let b = lazy.publish_batch(batch);
            assert_eq!(a.changes, b.changes, "round {round}");
        }
        // The policy actually compacted...
        assert!(compacting.engine().tombstone_ratio() < 0.2);
        // ...while the lazy monitor accumulated dead postings.
        assert!(lazy.engine().tombstone_ratio() >= 0.2);
        // Results are untouched by index reorganization.
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(compacting.results(*a), lazy.results(*b));
        }
    }
}
