//! The single-engine monitor front-end and the versioned snapshot format.
//!
//! [`Monitor`] wraps any [`ContinuousTopK`] engine and adds what deployments
//! need around the core algorithm:
//!
//! * document id allocation and monotone arrival-time clamping;
//! * typed [`PublishReceipt`]s from single and batched publishes;
//! * an optional tombstone-compaction policy applied at batch boundaries;
//! * snapshot / restore of the full monitor state (queries + results) via
//!   the versioned [`Snapshot`] JSON format, so a server can restart
//!   without replaying the stream.
//!
//! It implements [`MonitorBackend`], the same contract the sharded
//! front-end speaks — application code can hold a `Box<dyn MonitorBackend>`
//! and never know which one it got.

use crate::backend::{MonitorBackend, PublishReceipt, PublishRequest};
use crate::traits::ContinuousTopK;
use ctk_common::{DocId, FxHashMap, QueryId, QuerySpec, ScoredDoc, TermId, Timestamp};
use serde::{Deserialize, Serialize};

/// A monitor wrapping an engine `E`.
pub struct Monitor<E: ContinuousTopK> {
    engine: E,
    specs: Vec<Option<QuerySpec>>,
    next_doc: u64,
    last_arrival: Timestamp,
    /// Tombstone ratio beyond which batch boundaries compact the index
    /// (`0.0` disables the policy).
    compact_at: f64,
}

impl<E: ContinuousTopK> Monitor<E> {
    pub fn new(engine: E) -> Self {
        Monitor { engine, specs: Vec::new(), next_doc: 0, last_arrival: 0.0, compact_at: 0.0 }
    }

    /// Enable tombstone compaction: whenever a publish leaves the engine's
    /// index with `tombstone_ratio() >= ratio`, the index is compacted (and
    /// the affected bound structures rebuilt) before the next batch. Ratios
    /// `<= 0.0` disable the policy.
    pub fn with_compaction(mut self, ratio: f64) -> Self {
        self.set_compaction_threshold(ratio);
        self
    }

    /// See [`Monitor::with_compaction`].
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        self.compact_at = ratio.max(0.0);
    }

    /// The wrapped engine (read access for stats etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Register a user's continuous query.
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.engine.register(spec.clone());
        if self.specs.len() <= qid.index() {
            self.specs.resize(qid.index() + 1, None);
        }
        self.specs[qid.index()] = Some(spec);
        qid
    }

    /// Remove a query.
    pub fn unregister(&mut self, qid: QueryId) -> bool {
        if self.engine.unregister(qid) {
            self.specs[qid.index()] = None;
            true
        } else {
            false
        }
    }

    /// Publish a document to the stream: assigns the next document id,
    /// clamps the arrival time to be monotone, refreshes all results and
    /// returns the receipt. This is the batched path with a batch of one —
    /// the changes land in the receipt directly, with no per-document copy
    /// out of the engine's scratch buffer.
    pub fn publish(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> PublishReceipt {
        let doc = self.admit(pairs, arrival);
        let mut receipt = PublishReceipt {
            doc_ids: vec![doc.id],
            changes: Vec::new(),
            stats: Vec::with_capacity(1),
        };
        receipt.stats =
            self.engine.process_batch_into(std::slice::from_ref(&doc), &mut receipt.changes);
        self.maybe_compact();
        receipt
    }

    /// Publish a batch of documents through the engine's batched ingestion
    /// path: ids are allocated in order, arrival times are clamped monotone
    /// across the whole batch, and the receipt covers every document
    /// (attribute changes via `ResultChange::inserted`).
    pub fn publish_batch(&mut self, batch: Vec<(Vec<(TermId, f32)>, Timestamp)>) -> PublishReceipt {
        let docs: Vec<ctk_common::Document> =
            batch.into_iter().map(|(pairs, arrival)| self.admit(pairs, arrival)).collect();
        let mut receipt = PublishReceipt {
            doc_ids: docs.iter().map(|d| d.id).collect(),
            changes: Vec::new(),
            stats: Vec::new(),
        };
        receipt.stats = self.engine.process_batch_into(&docs, &mut receipt.changes);
        self.maybe_compact();
        receipt
    }

    /// Stamp one incoming document: next id, monotone-clamped arrival.
    fn admit(&mut self, pairs: Vec<(TermId, f32)>, arrival: Timestamp) -> ctk_common::Document {
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        ctk_common::Document::new(id, pairs, arrival)
    }

    /// Batch-boundary compaction policy: no event is mid-flight here, so
    /// the index can reorganize safely.
    fn maybe_compact(&mut self) {
        if self.compact_at > 0.0 && self.engine.tombstone_ratio() >= self.compact_at {
            self.engine.compact_index();
        }
    }

    /// Current top-k of a query, best first.
    pub fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.engine.results(qid)
    }

    /// Number of live queries.
    pub fn num_queries(&self) -> usize {
        self.engine.num_queries()
    }

    /// Capture the full monitor state as a single-section [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let queries = self
            .specs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|spec| {
                    let qid = QueryId(i as u32);
                    SnapshotQuery {
                        qid: qid.0,
                        spec: spec.clone(),
                        results: self.engine.results(qid).unwrap_or_default(),
                    }
                })
            })
            .collect();
        Snapshot {
            version: SNAPSHOT_VERSION,
            lambda: self.engine.lambda(),
            next_doc: self.next_doc,
            last_arrival: self.last_arrival,
            shards: vec![ShardSnapshot { landmark: self.engine.landmark(), queries }],
        }
    }

    /// Rebuild a monitor from a snapshot using a fresh engine (which must
    /// have been constructed with `snapshot.lambda`). Returns the mapping
    /// from snapshot query ids to the new ids. Convenience wrapper around
    /// [`Snapshot::restore_into`].
    pub fn restore(engine: E, snapshot: &Snapshot) -> (Self, FxHashMap<QueryId, QueryId>) {
        let mut monitor = Monitor::new(engine);
        let mapping = snapshot.restore_into(&mut monitor);
        (monitor, mapping)
    }
}

impl<E: ContinuousTopK> MonitorBackend for Monitor<E> {
    fn register(&mut self, spec: QuerySpec) -> QueryId {
        Monitor::register(self, spec)
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        Monitor::unregister(self, qid)
    }

    fn publish_request(&mut self, request: PublishRequest) -> PublishReceipt {
        Monitor::publish_batch(self, request.into_batch())
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        Monitor::results(self, qid)
    }

    fn num_queries(&self) -> usize {
        Monitor::num_queries(self)
    }

    fn lambda(&self) -> f64 {
        self.engine.lambda()
    }

    fn snapshot(&self) -> Snapshot {
        Monitor::snapshot(self)
    }

    fn restore_landmark(&mut self, landmark: Timestamp) {
        self.engine.restore_landmark(landmark);
    }

    fn restore_stream_position(&mut self, next_doc: u64, last_arrival: Timestamp) {
        self.next_doc = next_doc;
        self.last_arrival = last_arrival;
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        self.engine.seed_results(qid, seeds);
    }
}

/// Current snapshot format version. Bump on any breaking field change and
/// teach [`Snapshot::from_json`] to migrate the previous shape.
pub const SNAPSHOT_VERSION: u32 = 2;

/// One query's state inside a [`Snapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotQuery {
    /// The public query id at capture time.
    pub qid: u32,
    pub spec: QuerySpec,
    pub results: Vec<ScoredDoc>,
}

/// One shard's section of a [`Snapshot`]: its decay landmark and the
/// queries it hosted. Single-engine monitors write exactly one section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The decay landmark all this section's scores are relative to.
    /// Restoring without it mixes score frames once any renormalization has
    /// fired.
    pub landmark: Timestamp,
    pub queries: Vec<SnapshotQuery>,
}

/// A serializable capture of a whole monitor backend (format version 2).
///
/// The section list records how the capture was partitioned, but restore is
/// partition-agnostic: [`Snapshot::restore_into`] rebalances the queries
/// onto whatever backend it is given, so a 4-shard capture restores into a
/// 2-shard (or single-engine) monitor and vice versa.
///
/// ## Format history
///
/// * **v2** (current): `version` tag, per-shard `shards` sections each
///   carrying its `landmark`.
/// * **v1** (PR 2): flat single-engine capture with a top-level `landmark`.
/// * **v0** (pre-PR-2): as v1 but without `landmark` — migrated with
///   `landmark = 0`, which is exact for captures that never renormalized.
///
/// [`Snapshot::from_json`] parses all three; [`Snapshot::to_json`] always
/// writes v2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub version: u32,
    pub lambda: f64,
    pub next_doc: u64,
    pub last_arrival: Timestamp,
    pub shards: Vec<ShardSnapshot>,
}

/// The v1 (PR-2) on-disk shape, kept for migration only.
#[derive(Deserialize)]
struct SnapshotV1 {
    lambda: f64,
    landmark: Timestamp,
    next_doc: u64,
    last_arrival: Timestamp,
    queries: Vec<SnapshotQuery>,
}

/// The v0 (pre-PR-2) on-disk shape, kept for migration only. **Must be
/// tried after [`SnapshotV1`]**: a v1 document also parses as v0 (the extra
/// `landmark` field is ignored), silently dropping the landmark.
#[derive(Deserialize)]
struct SnapshotV0 {
    lambda: f64,
    next_doc: u64,
    last_arrival: Timestamp,
    queries: Vec<SnapshotQuery>,
}

impl Snapshot {
    /// Serialize to JSON (always the current format version).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON, migrating v1 / v0 captures to the current
    /// in-memory form (one section; v0 gets `landmark = 0`).
    pub fn from_json(s: &str) -> serde_json::Result<Snapshot> {
        match serde_json::from_str::<Snapshot>(s) {
            Ok(snap) => {
                if snap.version != SNAPSHOT_VERSION {
                    return Err(serde::Error::custom(format!(
                        "unsupported snapshot version {} (this build reads <= {SNAPSHOT_VERSION})",
                        snap.version
                    ))
                    .into());
                }
                Ok(snap)
            }
            Err(v2_err) => {
                if let Ok(v1) = serde_json::from_str::<SnapshotV1>(s) {
                    return Ok(Snapshot {
                        version: SNAPSHOT_VERSION,
                        lambda: v1.lambda,
                        next_doc: v1.next_doc,
                        last_arrival: v1.last_arrival,
                        shards: vec![ShardSnapshot { landmark: v1.landmark, queries: v1.queries }],
                    });
                }
                if let Ok(v0) = serde_json::from_str::<SnapshotV0>(s) {
                    return Ok(Snapshot {
                        version: SNAPSHOT_VERSION,
                        lambda: v0.lambda,
                        next_doc: v0.next_doc,
                        last_arrival: v0.last_arrival,
                        shards: vec![ShardSnapshot { landmark: 0.0, queries: v0.queries }],
                    });
                }
                Err(v2_err)
            }
        }
    }

    /// Total queries across all sections.
    pub fn num_queries(&self) -> usize {
        self.shards.iter().map(|s| s.queries.len()).sum()
    }

    /// Iterate every captured query, section order.
    pub fn queries(&self) -> impl Iterator<Item = &SnapshotQuery> + '_ {
        self.shards.iter().flat_map(|s| s.queries.iter())
    }

    /// The decay landmark of the capture. Sections written by one backend
    /// always agree (every shard sees the same arrivals, so their decay
    /// models renormalize in lockstep); the maximum is taken defensively.
    pub fn landmark(&self) -> Timestamp {
        debug_assert!(
            self.shards.windows(2).all(|w| w[0].landmark == w[1].landmark),
            "sections of one capture must share the landmark frame"
        );
        self.shards.iter().map(|s| s.landmark).fold(0.0, f64::max)
    }

    /// Rebuild this capture's state on a freshly built backend (same
    /// `lambda`; any engine kind or shard count). Queries are re-registered
    /// in ascending captured-id order — the sharded backend thereby
    /// rebalances them round-robin over *its* shards, so the capture's
    /// partitioning does not constrain the restore target. Returns the
    /// mapping from captured query ids to the new ids.
    ///
    /// # Panics
    /// Panics when the backend's `lambda` differs from the capture's, or
    /// when the backend already hosts queries (seeded scores are only
    /// meaningful in a fresh landmark frame).
    pub fn restore_into<B: MonitorBackend + ?Sized>(
        &self,
        backend: &mut B,
    ) -> FxHashMap<QueryId, QueryId> {
        assert_eq!(
            backend.lambda(),
            self.lambda,
            "backend must be constructed with the snapshot's lambda"
        );
        assert_eq!(backend.num_queries(), 0, "restore target must be freshly built");
        // Adopt the snapshot's decay landmark before seeding: the seeded
        // scores are expressed relative to it. A fresh engine sits at
        // landmark 0, so skipping this step after any renormalization had
        // fired would re-inflate (and soon re-renormalize) the seeds in the
        // wrong frame, corrupting every threshold.
        backend.restore_landmark(self.landmark());
        backend.restore_stream_position(self.next_doc, self.last_arrival);

        let mut captured: Vec<&SnapshotQuery> = self.queries().collect();
        captured.sort_by_key(|q| q.qid);
        let mut mapping = FxHashMap::default();
        for q in captured {
            let new_qid = backend.register(q.spec.clone());
            backend.seed_results(new_qid, &q.results);
            mapping.insert(QueryId(q.qid), new_qid);
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrio::MrioSeg;

    fn spec(terms: &[u32], k: usize) -> QuerySpec {
        QuerySpec::uniform(&terms.iter().map(|&t| TermId(t)).collect::<Vec<_>>(), k).unwrap()
    }

    #[test]
    fn publish_assigns_ids_and_reports_changes() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1, 2], 2));
        let r0 = m.publish(vec![(TermId(1), 1.0)], 0.0);
        assert_eq!(r0.doc_id(), DocId(0));
        assert_eq!(r0.doc_ids, vec![DocId(0)]);
        assert_eq!(r0.changes.len(), 1);
        assert_eq!(r0.changes[0].query, q);
        assert_eq!(r0.stats.len(), 1);
        assert_eq!(r0.merged_stats().updates, 1);
        let r1 = m.publish(vec![(TermId(9), 1.0)], 1.0);
        assert_eq!(r1.doc_id(), DocId(1));
        assert!(r1.is_quiet());
    }

    #[test]
    fn receipt_groups_changes_per_query() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q1 = m.register(spec(&[1], 2));
        let q2 = m.register(spec(&[1, 2], 2));
        let receipt =
            m.publish_batch(vec![(vec![(TermId(1), 1.0)], 0.0), (vec![(TermId(2), 1.0)], 1.0)]);
        let grouped = receipt.changes_by_query();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, q1);
        assert_eq!(grouped[0].1.len(), 1);
        assert_eq!(grouped[1].0, q2);
        assert_eq!(grouped[1].1.len(), 2, "q2 matched both documents");
        // Document order within the group.
        assert!(grouped[1].1[0].inserted.doc < grouped[1].1[1].inserted.doc);
        assert_eq!(receipt.changes_for(q2).count(), 2);
    }

    #[test]
    fn arrival_times_are_clamped_monotone() {
        let mut m = Monitor::new(MrioSeg::new(0.1));
        m.register(spec(&[1], 1));
        m.publish(vec![(TermId(1), 1.0)], 10.0);
        // A stale timestamp must not travel back in time.
        let receipt = m.publish(vec![(TermId(1), 2.0)], 3.0);
        // Same cosine, clamped to the same arrival => tie, smaller doc id
        // stays: no change reported... but doc 1 has same score and LARGER
        // id, so no update.
        assert!(receipt.is_quiet());
    }

    #[test]
    fn snapshot_round_trip_preserves_results() {
        let mut m = Monitor::new(MrioSeg::new(0.001));
        let q1 = m.register(spec(&[1, 2], 2));
        let q2 = m.register(spec(&[3], 1));
        for i in 0..20u32 {
            m.publish(vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)], i as f64);
        }
        let snap = m.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.shards.len(), 1);
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();

        let (restored, mapping) = Monitor::restore(MrioSeg::new(0.001), &parsed);
        for (old, new) in [(q1, mapping[&q1]), (q2, mapping[&q2])] {
            assert_eq!(m.results(old), restored.results(new), "query {old}");
        }
        assert_eq!(restored.num_queries(), 2);
    }

    #[test]
    fn restored_monitor_keeps_processing_correctly() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[5], 2));
        m.publish(vec![(TermId(5), 1.0)], 0.0);
        let snap = m.snapshot();
        let (mut r, map) = Monitor::restore(MrioSeg::new(0.0), &snap);
        let rq = map[&q];
        // New stronger doc enters the restored monitor's results.
        let receipt = r.publish(vec![(TermId(5), 3.0)], 1.0);
        assert_eq!(receipt.changes.len(), 1);
        let res = r.results(rq).unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn snapshot_after_renormalization_restores_the_landmark_frame() {
        // λ = 0.1 with the default headroom of 60 renormalizes once the
        // stream passes arrival 600 — well before the snapshot at 700.
        let mut m = Monitor::new(MrioSeg::new(0.1));
        let q = m.register(spec(&[1, 2], 3));
        for i in 0..=70u32 {
            // Strong documents: high cosine against the query.
            m.publish(vec![(TermId(1), 1.0), (TermId(2), 1.0)], i as f64 * 10.0);
        }
        assert!(
            m.engine().cumulative().renormalizations >= 1,
            "stream must renormalize before the snapshot for this regression"
        );

        let snap = m.snapshot();
        let json = snap.to_json().unwrap();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed.landmark(), m.engine().landmark());
        let (mut restored, mapping) = Monitor::restore(MrioSeg::new(0.1), &parsed);
        let rq = mapping[&q];
        assert_eq!(m.results(q), restored.results(rq));

        // The regression: a *weak* document arriving after the restore.
        // Pre-fix, the restored engine sat at landmark 0, immediately
        // re-renormalized to arrival 701 and crushed the seeded scores to
        // ~e^{-60}, so this low-cosine document walked into the top-k. With
        // the landmark restored, both monitors score it in the same frame
        // and reject it identically.
        let weak = vec![(TermId(2), 0.1), (TermId(9), 1.0)];
        let a = m.publish(weak.clone(), 701.0);
        let b = restored.publish(weak, 701.0);
        assert_eq!(
            a.changes, b.changes,
            "restored monitor diverged on the first post-restore event"
        );
        assert_eq!(m.results(q), restored.results(rq));
    }

    #[test]
    fn publish_batch_matches_sequential_publishes() {
        let pairs = |i: u32| vec![(TermId(1 + i % 3), 1.0), (TermId(7), 0.5)];
        let mut one = Monitor::new(MrioSeg::new(0.01));
        let q1 = one.register(spec(&[1, 2, 7], 3));
        let mut batch = Monitor::new(MrioSeg::new(0.01));
        let q2 = batch.register(spec(&[1, 2, 7], 3));

        let mut seq_changes = Vec::new();
        for i in 0..30u32 {
            // Include a stale timestamp mid-stream: batch clamping must
            // match the sequential clamp.
            let at = if i == 10 { 2.0 } else { i as f64 };
            seq_changes.extend(one.publish(pairs(i), at).changes);
        }
        let items: Vec<_> =
            (0..30u32).map(|i| (pairs(i), if i == 10 { 2.0 } else { i as f64 })).collect();
        let receipt = batch.publish_batch(items);

        assert_eq!(receipt.doc_ids.len(), 30);
        assert_eq!(receipt.doc_ids[0], DocId(0));
        assert_eq!(receipt.doc_ids[29], DocId(29));
        assert_eq!(seq_changes, receipt.changes);
        assert_eq!(one.results(q1), batch.results(q2));
    }

    #[test]
    fn unregister_via_monitor() {
        let mut m = Monitor::new(MrioSeg::new(0.0));
        let q = m.register(spec(&[1], 1));
        assert!(m.unregister(q));
        assert!(!m.unregister(q));
        assert_eq!(m.num_queries(), 0);
        assert_eq!(m.snapshot().num_queries(), 0);
    }

    #[test]
    fn compaction_policy_fires_at_batch_boundaries_without_changing_results() {
        let mk = |ratio: f64| {
            let mut m = Monitor::new(MrioSeg::new(0.0)).with_compaction(ratio);
            let ids: Vec<QueryId> =
                (0..40).map(|i| m.register(spec(&[i % 6, 6 + i % 4], 2))).collect();
            (m, ids)
        };
        let (mut compacting, ids_a) = mk(0.2);
        let (mut lazy, ids_b) = mk(0.0);

        for round in 0..4u32 {
            // Churn: retire a block of queries, then publish a batch.
            for q in (round * 8)..(round * 8 + 6) {
                assert!(compacting.unregister(QueryId(q)));
                assert!(lazy.unregister(QueryId(q)));
            }
            let batch: Vec<_> = (0..20u32)
                .map(|i| {
                    let t = (round * 20 + i) as f64;
                    (vec![(TermId(i % 6), 1.0), (TermId(6 + i % 4), 0.5)], t)
                })
                .collect();
            let a = compacting.publish_batch(batch.clone());
            let b = lazy.publish_batch(batch);
            assert_eq!(a.changes, b.changes, "round {round}");
        }
        // The policy actually compacted...
        assert!(compacting.engine().tombstone_ratio() < 0.2);
        // ...while the lazy monitor accumulated dead postings.
        assert!(lazy.engine().tombstone_ratio() >= 0.2);
        // Results are untouched by index reorganization.
        for (a, b) in ids_a.iter().zip(&ids_b) {
            assert_eq!(compacting.results(*a), lazy.results(*b));
        }
    }
}
