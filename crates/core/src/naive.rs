//! The exhaustive gold-standard matcher.
//!
//! For every arriving document, `Naive` collects the union of all queries
//! that share at least one term with it (via the ID-ordered lists) and fully
//! scores each one. Queries sharing no term have cosine 0 and can never enter
//! a result set, so this is exact. Every other algorithm is tested for
//! result-set equality against this one.

use crate::engine::EngineBase;
use crate::stats::{CumulativeStats, EventStats};
use crate::topk::TopKState;
use crate::traits::{ContinuousTopK, ResultChange};
use crate::walk::{collect_scored_candidates, MatchScratch};
use ctk_common::{Document, QueryId, QuerySpec, ScoredDoc};
use ctk_index::{QueryIndex, StorageConfig, StorageStats};

/// Term-filtered exhaustive continuous top-k.
pub struct Naive {
    base: EngineBase,
    index: QueryIndex,
    // Reused per-event buffers.
    scratch: MatchScratch,
    scored: Vec<(QueryId, f64)>,
}

impl Naive {
    pub fn new(lambda: f64) -> Self {
        Naive::with_storage(lambda, &StorageConfig::plain())
    }

    /// As [`Naive::new`], with an explicit postings-storage configuration.
    pub fn with_storage(lambda: f64, storage: &StorageConfig) -> Self {
        Naive {
            base: EngineBase::new(lambda),
            index: QueryIndex::with_storage(storage),
            scratch: MatchScratch::default(),
            scored: Vec::new(),
        }
    }
}

impl ContinuousTopK for Naive {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        let qid = self.index.register(&spec.vector, spec.k as u32);
        self.base.push_state(spec.k as u32);
        qid
    }

    fn unregister(&mut self, qid: QueryId) -> bool {
        if self.index.unregister(qid).is_some() {
            self.base.drop_state(qid);
            true
        } else {
            false
        }
    }

    fn seed_results(&mut self, qid: QueryId, seeds: &[ScoredDoc]) {
        self.base.seed(qid, seeds);
    }

    fn process(&mut self, doc: &Document) -> EventStats {
        let (_theta, amp, _renorm) = self.base.begin_event(doc.arrival);
        let mut ev = EventStats::default();

        let mut scored = std::mem::take(&mut self.scored);
        collect_scored_candidates(&self.index, doc, &mut self.scratch, &mut ev, &mut scored);
        for &(qid, dot) in &scored {
            if self.base.offer(qid, doc, dot, amp) {
                ev.updates += 1;
            }
        }
        self.scored = scored;

        ev.accumulate_into(&mut self.base.cum);
        ev
    }

    fn results(&self, qid: QueryId) -> Option<Vec<ScoredDoc>> {
        self.base.results(qid)
    }

    fn threshold(&self, qid: QueryId) -> Option<f64> {
        self.base.state(qid).map(TopKState::threshold)
    }

    fn num_queries(&self) -> usize {
        self.index.num_live()
    }

    fn last_changes(&self) -> &[ResultChange] {
        &self.base.changes
    }

    fn cumulative(&self) -> &CumulativeStats {
        &self.base.cum
    }

    fn lambda(&self) -> f64 {
        self.base.decay.lambda()
    }

    fn landmark(&self) -> f64 {
        self.base.decay.landmark()
    }

    fn restore_landmark(&mut self, landmark: f64) {
        self.base.decay.restore_landmark(landmark);
    }

    fn tombstone_ratio(&self) -> f64 {
        self.index.tombstone_ratio()
    }

    fn compact_index(&mut self) -> usize {
        self.index.compact().len()
    }

    fn storage_stats(&self) -> StorageStats {
        self.index.storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::{DocId, TermId};

    fn spec(terms: &[(u32, f32)], k: usize) -> QuerySpec {
        QuerySpec::new(terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), k).unwrap()
    }

    fn doc(id: u64, terms: &[(u32, f32)], at: f64) -> Document {
        Document::new(DocId(id), terms.iter().map(|&(t, w)| (TermId(t), w)).collect(), at)
    }

    #[test]
    fn matches_hand_computed_topk() {
        let mut n = Naive::new(0.0);
        let q = n.register(spec(&[(1, 1.0), (2, 1.0)], 2));
        // doc 1 matches both terms (cosine 1 against the query direction
        // when the doc is the same direction).
        n.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        // doc 2 matches one term.
        n.process(&doc(2, &[(2, 1.0), (3, 1.0)], 1.0));
        // doc 3 matches nothing.
        n.process(&doc(3, &[(9, 1.0)], 2.0));
        let res = n.results(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].doc, DocId(1));
        assert!((res[0].score.get() - 1.0).abs() < 1e-6);
        assert_eq!(res[1].doc, DocId(2));
        // cos = (1/√2)·(1/√2) = 0.5
        assert!((res[1].score.get() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn decay_prefers_newer_equal_docs() {
        let mut n = Naive::new(0.1);
        let q = n.register(spec(&[(1, 1.0)], 1));
        n.process(&doc(1, &[(1, 1.0)], 0.0));
        n.process(&doc(2, &[(1, 1.0)], 10.0)); // same cosine, newer
        let res = n.results(q).unwrap();
        assert_eq!(res[0].doc, DocId(2));
    }

    #[test]
    fn without_decay_first_equal_doc_wins() {
        let mut n = Naive::new(0.0);
        let q = n.register(spec(&[(1, 1.0)], 1));
        n.process(&doc(5, &[(1, 1.0)], 0.0));
        n.process(&doc(2, &[(1, 1.0)], 1.0));
        // Equal scores: the incumbent stays unless the challenger has a
        // *smaller* doc id — doc 2 < doc 5, so it replaces.
        assert_eq!(n.results(q).unwrap()[0].doc, DocId(2));
    }

    #[test]
    fn unregister_stops_updates() {
        let mut n = Naive::new(0.0);
        let q = n.register(spec(&[(1, 1.0)], 1));
        assert!(n.unregister(q));
        assert!(!n.unregister(q));
        let ev = n.process(&doc(1, &[(1, 1.0)], 0.0));
        assert_eq!(ev.full_evaluations, 0);
        assert_eq!(n.results(q), None);
        assert_eq!(n.num_queries(), 0);
    }

    #[test]
    fn changes_reported_per_event() {
        let mut n = Naive::new(0.0);
        let q = n.register(spec(&[(1, 1.0)], 1));
        n.process(&doc(1, &[(1, 1.0)], 0.0));
        assert_eq!(n.last_changes().len(), 1);
        assert_eq!(n.last_changes()[0].query, q);
        n.process(&doc(2, &[(8, 1.0)], 1.0));
        assert!(n.last_changes().is_empty());
    }

    #[test]
    fn stats_count_candidates() {
        let mut n = Naive::new(0.0);
        n.register(spec(&[(1, 1.0)], 1));
        n.register(spec(&[(1, 1.0), (2, 2.0)], 1));
        n.register(spec(&[(3, 1.0)], 1));
        let ev = n.process(&doc(1, &[(1, 1.0), (2, 1.0)], 0.0));
        assert_eq!(ev.full_evaluations, 2, "q0 and q1 match, q2 does not");
        assert_eq!(ev.matched_lists, 2);
        assert_eq!(n.cumulative().events, 1);
    }
}
