//! # ctk-core
//!
//! The paper's contribution: **RIO** (Reverse ID-Ordering) and **MRIO**
//! (Minimal RIO) for continuous top-k monitoring on document streams, plus
//! the exhaustive oracle, the shared scoring/decay machinery, and the
//! monitor front-ends (single-threaded and sharded) that applications embed.
//!
//! ```
//! use ctk_core::{ContinuousTopK, MrioSeg};
//! use ctk_common::{Document, DocId, QuerySpec, TermId};
//!
//! let mut engine = MrioSeg::new(0.001); // decay λ
//! let q = engine.register(QuerySpec::uniform(&[TermId(1), TermId(2)], 10).unwrap());
//! engine.process(&Document::new(DocId(1), vec![(TermId(1), 1.0)], 0.0));
//! assert_eq!(engine.results(q).unwrap().len(), 1);
//! ```

pub mod backend;
pub mod config;
pub mod engine;
pub mod lifecycle;
pub mod monitor;
pub mod mrio;
pub mod naive;
pub mod replay;
pub mod rio;
pub mod score;
pub mod sharded;
pub mod snapshot_stream;
pub mod stats;
pub mod topk;
pub mod traits;
pub mod walk;

pub use backend::{
    Admission, DocPruning, MonitorBackend, PublishReceipt, PublishRequest, ShardingMode,
};
pub use config::{AdaptiveConfig, IndexConfig, IngestConfig};
pub use ctk_index::{PostingsStorage, StorageConfig, StorageStats};
pub use lifecycle::{
    EvictionPolicy, LifecycleManager, NamespaceStats, QueryOptions, RetentionPolicy,
};
pub use monitor::{
    Monitor, ShardSnapshot, Snapshot, SnapshotPolicy, SnapshotQuery, SNAPSHOT_VERSION,
};
pub use mrio::{Mrio, MrioBlock, MrioSeg, MrioSuffix};
pub use naive::Naive;
pub use replay::{ReplayCommand, Replayer};
pub use rio::Rio;
pub use score::DecayModel;
pub use sharded::{AdaptiveBatcher, BatchOutcome, ShardedMonitor, DOC_PRUNING_AUTO_MIN_QUERIES};
pub use snapshot_stream::{SnapshotStreamStats, SnapshotWriter};
pub use stats::{CumulativeStats, EventStats};
pub use topk::{Offer, TopKState};
pub use traits::{ContinuousTopK, ResultChange};
pub use walk::{DocEpochBounds, MatchScratch, DOC_WALK_ZONE};
