//! ID-ordered postings lists.
//!
//! Each dictionary term `t` has a list `L_t` of `⟨qID, w⟩` entries for every
//! registered query containing `t`, **sorted by query ID** (paper §III).
//! Because query ids are allocated monotonically, registration appends at the
//! tail in O(1) and never perturbs earlier positions — which is what lets the
//! zone structures cache positions. Deletion tombstones the slot (weight 0);
//! compaction is handled by [`crate::query_index::QueryIndex`].

use ctk_common::QueryId;

/// One entry of an ID-ordered list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    pub qid: QueryId,
    /// The query's preference weight for this term. `0.0` marks a tombstone.
    pub weight: f32,
}

impl Posting {
    /// True when this slot has been deleted.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.weight == 0.0
    }
}

/// A postings list sorted by ascending query id.
#[derive(Debug, Clone, Default)]
pub struct PostingsList {
    entries: Vec<Posting>,
    tombstones: usize,
}

impl PostingsList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots, including tombstones.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tombstoned slots.
    #[inline]
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Number of live postings.
    #[inline]
    pub fn live(&self) -> usize {
        self.entries.len() - self.tombstones
    }

    #[inline]
    pub fn get(&self, pos: usize) -> Posting {
        self.entries[pos]
    }

    #[inline]
    pub fn as_slice(&self) -> &[Posting] {
        &self.entries
    }

    /// Allocated slots (the `Vec`'s capacity) — what heap accounting counts.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Append an entry. `qid` must exceed every id already present, and
    /// `weight` must be strictly positive — `0.0` is the tombstone marker,
    /// so a zero here would desync the tombstone counter from
    /// [`Posting::is_tombstone`]. Zero weights are filtered out upstream
    /// (`SparseVector::normalize` drops underflowed entries and
    /// `QueryIndex::register` rejects non-positive weights), which keeps
    /// this a debug-only check on the hot append path.
    pub fn push(&mut self, qid: QueryId, weight: f32) {
        debug_assert!(weight > 0.0);
        debug_assert!(
            self.entries.last().is_none_or(|p| p.qid < qid),
            "postings must stay ID-ordered"
        );
        self.entries.push(Posting { qid, weight });
    }

    /// Tombstone the slot at `pos`. Position stays valid (stable positions
    /// are required by the cached `RecordEntry.pos` and the zone structures).
    pub fn tombstone(&mut self, pos: usize) {
        if !self.entries[pos].is_tombstone() {
            self.entries[pos].weight = 0.0;
            self.tombstones += 1;
        }
    }

    /// Binary-search the position of `qid`, if present (tombstoned or not).
    pub fn position_of(&self, qid: QueryId) -> Option<usize> {
        self.entries.binary_search_by_key(&qid, |p| p.qid).ok()
    }

    /// First position `>= from` whose query id is `>= target`, using
    /// galloping (exponential) search — the "jump" primitive of the
    /// ID-ordering paradigm. Returns `len()` when exhausted.
    pub fn seek(&self, from: usize, target: QueryId) -> usize {
        let n = self.entries.len();
        if from >= n || self.entries[from].qid >= target {
            return from.min(n);
        }
        // Gallop: bracket the answer in (from + step/2, from + step].
        let mut step = 1usize;
        let mut prev = from;
        let mut probe = from + 1;
        while probe < n && self.entries[probe].qid < target {
            prev = probe;
            step <<= 1;
            probe = from + step;
        }
        let hi = probe.min(n);
        // Binary search in (prev, hi].
        let (mut lo, mut hi) = (prev + 1, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.entries[mid].qid < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First position `>= from` that is **live** and has id `>= target`.
    pub fn seek_live(&self, from: usize, target: QueryId) -> usize {
        let mut pos = self.seek(from, target);
        while pos < self.entries.len() && self.entries[pos].is_tombstone() {
            pos += 1;
        }
        pos
    }

    /// Drop tombstones, returning the surviving `(qid, weight)` pairs in
    /// order. Used by compaction, which then rebuilds cached positions.
    pub fn compact(&mut self) -> &[Posting] {
        if self.tombstones > 0 {
            self.entries.retain(|p| !p.is_tombstone());
            self.tombstones = 0;
        }
        &self.entries
    }

    /// Iterate live postings.
    pub fn iter_live(&self) -> impl Iterator<Item = Posting> + '_ {
        self.entries.iter().copied().filter(|p| !p.is_tombstone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(ids: &[u32]) -> PostingsList {
        let mut l = PostingsList::new();
        for &i in ids {
            l.push(QueryId(i), 0.5);
        }
        l
    }

    #[test]
    fn push_keeps_order_and_len() {
        let l = list(&[1, 4, 9, 12]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.live(), 4);
        assert_eq!(l.get(2).qid, QueryId(9));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics() {
        let mut l = list(&[5]);
        l.push(QueryId(3), 1.0);
    }

    #[test]
    fn seek_finds_first_geq() {
        let l = list(&[2, 5, 8, 8 + 5, 21, 34, 55]);
        assert_eq!(l.seek(0, QueryId(0)), 0);
        assert_eq!(l.seek(0, QueryId(2)), 0);
        assert_eq!(l.seek(0, QueryId(3)), 1);
        assert_eq!(l.seek(0, QueryId(8)), 2);
        assert_eq!(l.seek(0, QueryId(9)), 3);
        assert_eq!(l.seek(0, QueryId(56)), 7, "past the end");
        assert_eq!(l.seek(3, QueryId(21)), 4, "seek from middle");
        assert_eq!(l.seek(6, QueryId(55)), 6);
        assert_eq!(l.seek(7, QueryId(55)), 7, "from == len");
    }

    #[test]
    fn seek_exhaustive_against_linear_scan() {
        let ids: Vec<u32> = (0..200).map(|i| i * 3 + (i % 2)).collect();
        let l = list(&ids);
        for from in 0..=l.len() {
            for t in 0..620u32 {
                let expect =
                    (from..l.len()).find(|&p| l.get(p).qid >= QueryId(t)).unwrap_or(l.len());
                assert_eq!(l.seek(from, QueryId(t)), expect, "from={from} t={t}");
            }
        }
    }

    #[test]
    fn tombstone_and_seek_live() {
        let mut l = list(&[1, 2, 3, 4]);
        l.tombstone(1);
        l.tombstone(2);
        assert_eq!(l.live(), 2);
        assert_eq!(l.seek_live(0, QueryId(2)), 3, "skips tombstoned 2 and 3");
        assert!(l.get(1).is_tombstone());
    }

    #[test]
    fn compact_removes_tombstones() {
        let mut l = list(&[1, 2, 3, 4, 5]);
        l.tombstone(0);
        l.tombstone(3);
        let survivors: Vec<u32> = l.compact().iter().map(|p| p.qid.0).collect();
        assert_eq!(survivors, vec![2, 3, 5]);
        assert_eq!(l.tombstones(), 0);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn position_of_binary_search() {
        let l = list(&[10, 20, 30]);
        assert_eq!(l.position_of(QueryId(20)), Some(1));
        assert_eq!(l.position_of(QueryId(25)), None);
    }
}
