//! The query registry: term → postings list directory plus per-query records.
//!
//! Registration allocates monotonically increasing query ids (so lists stay
//! append-only), creates lists for unseen terms, and records for each query
//! the exact `(term, list, position, weight)` of every posting it owns. The
//! record is what lets the algorithms (a) fully re-score a candidate query in
//! O(|q|) and (b) route `S_k`-change updates to the bound structures without
//! searching the lists.

use crate::postings::PostingsList;
use ctk_common::{FxHashMap, QueryId, SparseVector, TermId};

/// One posting owned by a query.
#[derive(Debug, Clone, Copy)]
pub struct RecordEntry {
    pub term: TermId,
    /// Dense list index inside the [`QueryIndex`]'s list table.
    pub list: u32,
    /// Position of this query's entry inside the list.
    pub pos: u32,
    /// The (normalized) preference weight `w_t(q)`.
    pub weight: f32,
}

/// Per-query registration record.
#[derive(Debug, Clone, Default)]
pub struct QueryRecord {
    pub entries: Vec<RecordEntry>,
    /// Result size requested by the user.
    pub k: u32,
}

/// The shared ID-ordered query index.
///
/// `Clone` supports the doc-parallel monitor's copy-on-write index epochs:
/// scorer workers hold an `Arc<QueryIndex>` per batch, and registration
/// churn between batches clones the index only when a worker still holds
/// the previous epoch (`Arc::make_mut`).
#[derive(Debug, Clone, Default)]
pub struct QueryIndex {
    lists: Vec<PostingsList>,
    list_terms: Vec<TermId>,
    term_map: FxHashMap<TermId, u32>,
    records: Vec<Option<QueryRecord>>,
    live_queries: usize,
    /// Running totals across all lists, so [`QueryIndex::tombstone_ratio`]
    /// is O(1) — compaction policies probe it at every batch boundary.
    total_postings: usize,
    total_tombstones: usize,
}

impl QueryIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries ever registered (= next query id).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.records.len()
    }

    /// Number of currently registered queries.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.live_queries
    }

    /// Number of distinct terms with a list.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Register a query; returns its new id. The vector must be non-empty
    /// and normalized (enforced upstream by `QuerySpec`).
    ///
    /// Non-positive weights are rejected here rather than trusted from the
    /// caller: `weight == 0.0` doubles as the tombstone marker inside
    /// [`PostingsList`], so a zero slipping through (e.g. an `f32`
    /// underflow during normalization upstream) would register a posting
    /// that *reads* as deleted while the list's tombstone counter says
    /// otherwise, desyncing `live()` from the live iteration paths.
    pub fn register(&mut self, vector: &SparseVector, k: u32) -> QueryId {
        let qid = QueryId(self.records.len() as u32);
        let mut entries = Vec::with_capacity(vector.len());
        for (term, weight) in vector.iter() {
            if weight <= 0.0 {
                continue;
            }
            let list_idx = *self.term_map.entry(term).or_insert_with(|| {
                self.lists.push(PostingsList::new());
                self.list_terms.push(term);
                (self.lists.len() - 1) as u32
            });
            let list = &mut self.lists[list_idx as usize];
            let pos = list.len() as u32;
            list.push(qid, weight);
            entries.push(RecordEntry { term, list: list_idx, pos, weight });
        }
        self.total_postings += entries.len();
        self.records.push(Some(QueryRecord { entries, k }));
        self.live_queries += 1;
        qid
    }

    /// Unregister a query: tombstones every posting and drops the record.
    /// Returns the record (so callers can update bound structures), or `None`
    /// if the query was unknown / already removed.
    pub fn unregister(&mut self, qid: QueryId) -> Option<QueryRecord> {
        let slot = self.records.get_mut(qid.index())?;
        let record = slot.take()?;
        for e in &record.entries {
            self.lists[e.list as usize].tombstone(e.pos as usize);
        }
        self.total_tombstones += record.entries.len();
        self.live_queries -= 1;
        Some(record)
    }

    /// Unregister a batch of queries in one pass (the namespace-forget
    /// path): tombstones every posting of every live member and returns the
    /// `(qid, record)` pairs actually removed, in input order. Unknown or
    /// already-removed ids are skipped. One call-site-visible walk instead
    /// of `n` lookups lets callers follow with a single forced compaction.
    pub fn unregister_many(&mut self, qids: &[QueryId]) -> Vec<(QueryId, QueryRecord)> {
        let mut removed = Vec::with_capacity(qids.len());
        for &qid in qids {
            if let Some(record) = self.unregister(qid) {
                removed.push((qid, record));
            }
        }
        removed
    }

    /// The record of a live query.
    #[inline]
    pub fn record(&self, qid: QueryId) -> Option<&QueryRecord> {
        self.records.get(qid.index()).and_then(|r| r.as_ref())
    }

    /// Dense list index of a term's list, if any query uses the term.
    #[inline]
    pub fn list_of_term(&self, term: TermId) -> Option<u32> {
        self.term_map.get(&term).copied()
    }

    /// The list at a dense index.
    #[inline]
    pub fn list(&self, idx: u32) -> &PostingsList {
        &self.lists[idx as usize]
    }

    /// The term that owns list `idx`.
    #[inline]
    pub fn term_of_list(&self, idx: u32) -> TermId {
        self.list_terms[idx as usize]
    }

    /// Fraction of tombstoned slots across all lists, used to decide when a
    /// compaction pass pays off. O(1): maintained incrementally.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            debug_assert_eq!(
                self.total_tombstones,
                self.lists.iter().map(|l| l.tombstones()).sum::<usize>()
            );
            self.total_tombstones as f64 / self.total_postings as f64
        }
    }

    /// Drop all tombstones and refresh the cached positions in every record.
    /// Returns the indices of the lists that changed (so callers can rebuild
    /// their bound structures for exactly those lists).
    pub fn compact(&mut self) -> Vec<u32> {
        let mut changed = Vec::new();
        for (idx, list) in self.lists.iter_mut().enumerate() {
            if list.tombstones() == 0 {
                continue;
            }
            changed.push(idx as u32);
            let removed = list.tombstones();
            self.total_postings -= removed;
            self.total_tombstones -= removed;
            let survivors = list.compact();
            // Refresh positions: walk the compacted list once.
            for (new_pos, p) in survivors.iter().enumerate() {
                if let Some(rec) = self.records[p.qid.index()].as_mut() {
                    for e in &mut rec.entries {
                        if e.list == idx as u32 {
                            e.pos = new_pos as u32;
                        }
                    }
                }
            }
        }
        changed
    }

    /// Iterate ids of live queries (ascending).
    pub fn live_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.records.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|_| QueryId(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    #[test]
    fn register_builds_lists_and_records() {
        let mut ix = QueryIndex::new();
        let q0 = ix.register(&vector(&[(1, 1.0), (2, 1.0)]), 3);
        let q1 = ix.register(&vector(&[(2, 1.0), (3, 1.0)]), 3);
        assert_eq!((q0, q1), (QueryId(0), QueryId(1)));
        assert_eq!(ix.num_lists(), 3);
        assert_eq!(ix.num_live(), 2);

        let l2 = ix.list(ix.list_of_term(TermId(2)).unwrap());
        assert_eq!(l2.len(), 2);
        assert_eq!(l2.get(0).qid, q0);
        assert_eq!(l2.get(1).qid, q1);

        let rec = ix.record(q1).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.k, 3);
        // Record positions point back at the actual postings.
        for e in &rec.entries {
            assert_eq!(ix.list(e.list).get(e.pos as usize).qid, q1);
        }
    }

    #[test]
    fn unregister_tombstones_postings() {
        let mut ix = QueryIndex::new();
        let q0 = ix.register(&vector(&[(1, 1.0), (2, 1.0)]), 1);
        let q1 = ix.register(&vector(&[(1, 1.0)]), 1);
        assert!(ix.unregister(q0).is_some());
        assert!(ix.unregister(q0).is_none(), "double unregister is a no-op");
        assert_eq!(ix.num_live(), 1);
        assert!(ix.record(q0).is_none());

        let l1 = ix.list(ix.list_of_term(TermId(1)).unwrap());
        assert!(l1.get(0).is_tombstone());
        assert!(!l1.get(1).is_tombstone());
        assert_eq!(l1.live(), 1);
        let _ = q1;
    }

    #[test]
    fn tombstone_ratio_and_compaction() {
        let mut ix = QueryIndex::new();
        let ids: Vec<QueryId> =
            (0..10).map(|i| ix.register(&vector(&[(1, 1.0), (100 + i, 1.0)]), 1)).collect();
        for qid in ids.iter().take(5) {
            ix.unregister(*qid);
        }
        assert!(ix.tombstone_ratio() > 0.4);

        let changed = ix.compact();
        assert!(!changed.is_empty());
        assert_eq!(ix.tombstone_ratio(), 0.0);

        // Positions in surviving records must be refreshed.
        for qid in ids.iter().skip(5) {
            let rec = ix.record(*qid).unwrap();
            for e in &rec.entries {
                let p = ix.list(e.list).get(e.pos as usize);
                assert_eq!(p.qid, *qid);
                assert_eq!(p.weight, e.weight);
            }
        }
    }

    #[test]
    fn zero_weights_never_register_as_tombstones() {
        // A subnormal weight next to a huge one underflows to exactly 0.0
        // during normalization (1e-42 / ~1e4 < f32::MIN_POSITIVE). Pre-fix,
        // the zero-weight posting registered as a phantom tombstone:
        // `live()` counted it while every live-iteration path skipped it.
        let mut raw = SparseVector::from_pairs(vec![(TermId(1), 1e-42), (TermId(2), 1e4)]);
        raw.normalize();
        let mut ix = QueryIndex::new();
        let qid = ix.register(&raw, 1);

        for li in 0..ix.num_lists() as u32 {
            let list = ix.list(li);
            assert_eq!(
                list.live(),
                list.iter_live().count(),
                "tombstone accounting desynced on list {li}"
            );
            assert_eq!(list.tombstones(), 0);
        }
        // The record only owns live postings.
        let rec = ix.record(qid).unwrap();
        assert!(rec.entries.iter().all(|e| e.weight > 0.0));
        for e in &rec.entries {
            assert!(!ix.list(e.list).get(e.pos as usize).is_tombstone());
        }
    }

    #[test]
    fn live_ids_iterates_survivors() {
        let mut ix = QueryIndex::new();
        let a = ix.register(&vector(&[(1, 1.0)]), 1);
        let b = ix.register(&vector(&[(1, 1.0)]), 1);
        let c = ix.register(&vector(&[(1, 1.0)]), 1);
        ix.unregister(b);
        let live: Vec<QueryId> = ix.live_ids().collect();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    fn ids_are_monotone() {
        let mut ix = QueryIndex::new();
        let a = ix.register(&vector(&[(1, 1.0)]), 1);
        ix.unregister(a);
        let b = ix.register(&vector(&[(1, 1.0)]), 1);
        assert!(b > a, "ids are never reused, keeping lists append-only");
    }
}
