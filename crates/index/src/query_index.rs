//! The query registry: term → postings list directory plus per-query records.
//!
//! Registration allocates monotonically increasing query ids (so lists stay
//! append-only), creates lists for unseen terms, and records for each query
//! every posting it owns. The record is what lets the algorithms (a) fully
//! re-score a candidate query in O(|q|) and (b) route `S_k`-change updates
//! to the bound structures without searching the lists.
//!
//! Records have two layouts behind [`RecordRef`], selected together with the
//! postings backend by [`StorageConfig`]:
//!
//! * **Plain** — one `Vec<RecordEntry>` per query (16 bytes/entry plus a
//!   `Vec` each, positions cached). The default, byte-for-byte the
//!   historical layout.
//! * **Packed** — 8-byte entries (`list`, `weight`) in a chunked arena,
//!   addressed by a 12-byte slot per query. The term is derived from the
//!   list index on read; the *position* is not stored at all — the lists
//!   are ID-ordered, so a posting's position is recoverable by binary
//!   search on the query id. The hot path (full re-scores, which only need
//!   term and weight) never pays for that; the rare position consumers
//!   (`S_k`-routed bound updates, unregistration) go through
//!   [`RecordRef::entries_full`]. Dropping the position also means
//!   compaction has no packed positions to refresh. Records never span
//!   chunks, so a record is always one contiguous slice; unregistration
//!   strands its entries until compaction rebuilds the arena. Used by the
//!   compressed and paged backends, where the records — not the lists —
//!   dominate per-query memory.

use crate::postings::Posting;
use crate::store::{ListRef, Lists, PostingsStorage, StorageConfig, StorageStats};
use ctk_common::{FxHashMap, QueryId, SparseVector, TermId};
use ctk_storage::{PageManager, PagePin, StoreContext};
use std::sync::Arc;

/// One posting owned by a query (the owned, position-carrying form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordEntry {
    pub term: TermId,
    /// Dense list index inside the [`QueryIndex`]'s list table.
    pub list: u32,
    /// Position of this query's entry inside the list.
    pub pos: u32,
    /// The (normalized) preference weight `w_t(q)`.
    pub weight: f32,
}

/// One posting owned by a query, without its list position — everything
/// the O(|q|) re-score path reads. Yielded by [`RecordRef::entries`];
/// consumers that need the position use [`RecordRef::entries_full`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryView {
    pub term: TermId,
    /// Dense list index inside the [`QueryIndex`]'s list table.
    pub list: u32,
    /// The (normalized) preference weight `w_t(q)`.
    pub weight: f32,
}

/// Per-query registration record (owned form; see [`RecordRef`] for the
/// borrowed view the index hands out).
#[derive(Debug, Clone, Default)]
pub struct QueryRecord {
    pub entries: Vec<RecordEntry>,
    /// Result size requested by the user.
    pub k: u32,
}

/// A packed record entry: term derived from `list` via the index's list
/// table on read, position derived by binary search when actually needed.
#[derive(Debug, Clone, Copy)]
struct PackedEntry {
    list: u32,
    weight: f32,
}

/// Arena address of one query's packed entries — 8 bytes, one per query
/// ever registered. `offset == DEAD_SLOT` marks an unregistered query;
/// `len` (terms per query) and `k` both fit `u16` with room to spare.
#[derive(Debug, Clone, Copy)]
struct PackedSlot {
    offset: u32,
    len: u16,
    k: u16,
}

const DEAD_SLOT: u32 = u32::MAX;

/// Entries per arena chunk. Chunk `c` owns offsets `[c·CHUNK, c·CHUNK+len)`;
/// a record never spans chunks, so a record whose entries don't fit in the
/// current chunk's remainder starts a fresh one (a record larger than
/// `ARENA_CHUNK` gets a dedicated oversized chunk — its offset is the chunk
/// base, and nothing else allocates there).
const ARENA_CHUNK: usize = 4096;

/// Growth step of the slot table (one slot per query ever registered).
/// Exact-chunk growth instead of `Vec` doubling: at hundreds of thousands
/// of queries the doubling slack alone is megabytes.
const SLOTS_CHUNK: usize = 4096;

#[derive(Debug, Clone, Default)]
struct PackedArena {
    slots: Vec<PackedSlot>,
    chunks: Vec<Vec<PackedEntry>>,
    /// Entries stranded by unregistration, reclaimed when compaction
    /// rebuilds the arena.
    dead_entries: usize,
}

impl PackedArena {
    /// Reserve space for `n` contiguous entries; returns the global offset.
    fn alloc(&mut self, n: usize) -> u32 {
        let fits_last = self
            .chunks
            .last()
            .is_some_and(|c| c.capacity() == ARENA_CHUNK && c.len() + n <= ARENA_CHUNK);
        if !fits_last {
            self.chunks.push(Vec::with_capacity(n.max(ARENA_CHUNK)));
        }
        let chunk = self.chunks.len() - 1;
        ((chunk * ARENA_CHUNK) + self.chunks[chunk].len()) as u32
    }

    fn push_slot(&mut self, slot: PackedSlot) {
        if self.slots.len() == self.slots.capacity() {
            self.slots.reserve_exact(SLOTS_CHUNK);
        }
        self.slots.push(slot);
    }

    fn entries(&self, slot: PackedSlot) -> &[PackedEntry] {
        let (chunk, start) =
            (slot.offset as usize / ARENA_CHUNK, slot.offset as usize % ARENA_CHUNK);
        &self.chunks[chunk][start..start + slot.len as usize]
    }

    fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<PackedSlot>()
            + self
                .chunks
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<PackedEntry>())
                .sum::<usize>()
    }

    /// Rebuild the chunks with only live records, refreshing slot offsets.
    fn gc(&mut self) {
        let old = std::mem::take(&mut self.chunks);
        for i in 0..self.slots.len() {
            let slot = self.slots[i];
            if slot.offset == DEAD_SLOT {
                continue;
            }
            let (chunk, start) =
                (slot.offset as usize / ARENA_CHUNK, slot.offset as usize % ARENA_CHUNK);
            let offset = self.alloc(slot.len as usize);
            let dst = self.chunks.last_mut().expect("alloc pushed a chunk");
            dst.extend_from_slice(&old[chunk][start..start + slot.len as usize]);
            self.slots[i].offset = offset;
        }
        self.dead_entries = 0;
    }
}

#[derive(Debug, Clone)]
enum Records {
    Plain(Vec<Option<QueryRecord>>),
    Packed(PackedArena),
}

/// Borrowed view of one query's registration record, independent of the
/// record layout. [`RecordRef::entries`] iterates position-free
/// [`EntryView`]s (the hot-path shape); [`RecordRef::entries_full`]
/// materializes [`RecordEntry`]s, deriving packed positions by binary
/// search; [`RecordRef::to_record`] clones into the owned form.
#[derive(Clone, Copy)]
pub struct RecordRef<'a> {
    k: u32,
    qid: QueryId,
    inner: RecordRefInner<'a>,
}

#[derive(Clone, Copy)]
enum RecordRefInner<'a> {
    Plain(&'a [RecordEntry]),
    Packed { entries: &'a [PackedEntry], terms: &'a [TermId], lists: &'a Lists },
}

impl<'a> RecordRef<'a> {
    /// Result size requested by the user.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of postings the query owns.
    #[inline]
    pub fn len(&self) -> usize {
        match self.inner {
            RecordRefInner::Plain(es) => es.len(),
            RecordRefInner::Packed { entries, .. } => entries.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the record's entries in registration order, without list
    /// positions — O(1) per entry for every layout.
    #[inline]
    pub fn entries(self) -> RecordEntries<'a> {
        RecordEntries {
            inner: match self.inner {
                RecordRefInner::Plain(es) => RecordEntriesInner::Plain(es.iter()),
                RecordRefInner::Packed { entries, terms, .. } => {
                    RecordEntriesInner::Packed { it: entries.iter(), terms }
                }
            },
        }
    }

    /// Iterate the record's entries with list positions. Packed layouts
    /// don't store positions, so each is recovered by binary search on the
    /// ID-ordered list — reserve this for the paths that genuinely route
    /// by position (`S_k`-change bound updates, unregistration).
    #[inline]
    pub fn entries_full(self) -> RecordEntriesFull<'a> {
        RecordEntriesFull {
            qid: self.qid,
            inner: match self.inner {
                RecordRefInner::Plain(es) => RecordEntriesFullInner::Plain(es.iter()),
                RecordRefInner::Packed { entries, terms, lists } => {
                    RecordEntriesFullInner::Packed { it: entries.iter(), terms, lists }
                }
            },
        }
    }

    /// Clone into the owned (position-carrying) record form.
    pub fn to_record(&self) -> QueryRecord {
        QueryRecord { entries: self.entries_full().collect(), k: self.k }
    }
}

/// Iterator over a [`RecordRef`]'s position-free entries.
pub struct RecordEntries<'a> {
    inner: RecordEntriesInner<'a>,
}

enum RecordEntriesInner<'a> {
    Plain(std::slice::Iter<'a, RecordEntry>),
    Packed { it: std::slice::Iter<'a, PackedEntry>, terms: &'a [TermId] },
}

impl Iterator for RecordEntries<'_> {
    type Item = EntryView;

    #[inline]
    fn next(&mut self) -> Option<EntryView> {
        match &mut self.inner {
            RecordEntriesInner::Plain(it) => {
                it.next().map(|e| EntryView { term: e.term, list: e.list, weight: e.weight })
            }
            RecordEntriesInner::Packed { it, terms } => it.next().map(|e| EntryView {
                term: terms[e.list as usize],
                list: e.list,
                weight: e.weight,
            }),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            RecordEntriesInner::Plain(it) => it.size_hint(),
            RecordEntriesInner::Packed { it, .. } => it.size_hint(),
        }
    }
}

/// Iterator over a [`RecordRef`]'s full entries (positions included).
pub struct RecordEntriesFull<'a> {
    qid: QueryId,
    inner: RecordEntriesFullInner<'a>,
}

enum RecordEntriesFullInner<'a> {
    Plain(std::slice::Iter<'a, RecordEntry>),
    Packed { it: std::slice::Iter<'a, PackedEntry>, terms: &'a [TermId], lists: &'a Lists },
}

impl Iterator for RecordEntriesFull<'_> {
    type Item = RecordEntry;

    #[inline]
    fn next(&mut self) -> Option<RecordEntry> {
        match &mut self.inner {
            RecordEntriesFullInner::Plain(it) => it.next().copied(),
            RecordEntriesFullInner::Packed { it, terms, lists } => {
                let qid = self.qid;
                it.next().map(|e| RecordEntry {
                    term: terms[e.list as usize],
                    list: e.list,
                    pos: lists
                        .get(e.list)
                        .position_of(qid)
                        .expect("record entry implies a posting (live or tombstoned)")
                        as u32,
                    weight: e.weight,
                })
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            RecordEntriesFullInner::Plain(it) => it.size_hint(),
            RecordEntriesFullInner::Packed { it, .. } => it.size_hint(),
        }
    }
}

/// The shared ID-ordered query index.
///
/// `Clone` supports the doc-parallel monitor's copy-on-write index epochs:
/// scorer workers hold an `Arc<QueryIndex>` per batch, and registration
/// churn between batches clones the index only when a worker still holds
/// the previous epoch (`Arc::make_mut`). Clones of a paged index share the
/// same [`PageManager`] (and its sealed pages — they are immutable).
#[derive(Debug, Clone)]
pub struct QueryIndex {
    lists: Lists,
    list_terms: Vec<TermId>,
    term_map: FxHashMap<TermId, u32>,
    records: Records,
    live_queries: usize,
    /// Running totals across all lists, so [`QueryIndex::tombstone_ratio`]
    /// is O(1) — compaction policies probe it at every batch boundary.
    total_postings: usize,
    total_tombstones: usize,
    config: StorageConfig,
    /// Sealing policy shared by every list (codec + pager).
    cx: StoreContext,
}

impl Default for QueryIndex {
    fn default() -> Self {
        Self::with_storage(&StorageConfig::plain())
    }
}

impl QueryIndex {
    /// A plain (Vec-backed) index — the historical default layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// An index using the given storage backend (see [`StorageConfig`]).
    /// The backend also selects the record layout: plain storage keeps
    /// per-query `Vec`s, compressed/paged pack records into an arena.
    pub fn with_storage(config: &StorageConfig) -> Self {
        let records = match config.storage {
            PostingsStorage::Plain => Records::Plain(Vec::new()),
            _ => Records::Packed(PackedArena::default()),
        };
        let cx = match config.storage {
            PostingsStorage::Paged => StoreContext::paged(Arc::new(PageManager::new(
                config.page_budget(),
                config.spill_dir.clone(),
            ))),
            _ => StoreContext::raw(),
        };
        QueryIndex {
            lists: Lists::new(config.storage),
            list_terms: Vec::new(),
            term_map: FxHashMap::default(),
            records,
            live_queries: 0,
            total_postings: 0,
            total_tombstones: 0,
            config: config.clone(),
            cx,
        }
    }

    /// The storage configuration this index was built with.
    #[inline]
    pub fn storage_config(&self) -> &StorageConfig {
        &self.config
    }

    /// Number of queries ever registered (= next query id).
    #[inline]
    pub fn num_slots(&self) -> usize {
        match &self.records {
            Records::Plain(v) => v.len(),
            Records::Packed(a) => a.slots.len(),
        }
    }

    /// Number of currently registered queries.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.live_queries
    }

    /// Number of distinct terms with a list.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Register a query; returns its new id. The vector must be non-empty
    /// and normalized (enforced upstream by `QuerySpec`).
    ///
    /// Non-positive weights are rejected here rather than trusted from the
    /// caller: `weight == 0.0` doubles as the tombstone marker inside the
    /// postings lists, so a zero slipping through (e.g. an `f32` underflow
    /// during normalization upstream) would register a posting that *reads*
    /// as deleted while the list's tombstone counter says otherwise,
    /// desyncing `live()` from the live iteration paths.
    pub fn register(&mut self, vector: &SparseVector, k: u32) -> QueryId {
        let qid = QueryId(self.num_slots() as u32);
        let mut count = 0usize;
        let mut first: Option<(u32, u32, f32)> = None; // (list, pos, weight)
        let mut scratch: Vec<(u32, u32, f32)> = Vec::new();
        for (term, weight) in vector.iter() {
            if weight <= 0.0 {
                continue;
            }
            let list_idx = *self.term_map.entry(term).or_insert_with(|| {
                self.lists.push_list();
                self.list_terms.push(term);
                (self.lists.len() - 1) as u32
            });
            let pos = self.lists.get(list_idx).len() as u32;
            self.lists.push_posting(list_idx, qid, weight, &self.cx);
            if count == 0 {
                first = Some((list_idx, pos, weight));
            } else {
                if count == 1 {
                    scratch.reserve(vector.len());
                    scratch.push(first.expect("first entry recorded"));
                }
                scratch.push((list_idx, pos, weight));
            }
            count += 1;
        }
        let entries: &[(u32, u32, f32)] = if count == 1 {
            std::slice::from_ref(first.as_ref().expect("single entry"))
        } else {
            &scratch
        };
        self.total_postings += count;
        self.live_queries += 1;
        match &mut self.records {
            Records::Plain(v) => {
                v.push(Some(QueryRecord {
                    entries: entries
                        .iter()
                        .map(|&(list, pos, weight)| RecordEntry {
                            term: self.list_terms[list as usize],
                            list,
                            pos,
                            weight,
                        })
                        .collect(),
                    k,
                }));
            }
            Records::Packed(a) => {
                let offset = a.alloc(count);
                let dst = a.chunks.last_mut().expect("alloc ensured a chunk");
                dst.extend(entries.iter().map(|&(list, _, weight)| PackedEntry { list, weight }));
                let len = u16::try_from(count).expect("terms per query fit u16");
                let k = u16::try_from(k).expect("k fits u16");
                a.push_slot(PackedSlot { offset, len, k });
            }
        }
        qid
    }

    /// Unregister a query: tombstones every posting and drops the record.
    /// Returns the record (so callers can update bound structures), or `None`
    /// if the query was unknown / already removed.
    pub fn unregister(&mut self, qid: QueryId) -> Option<QueryRecord> {
        let record = match &mut self.records {
            Records::Plain(v) => v.get_mut(qid.index())?.take()?,
            Records::Packed(a) => {
                let slot = *a.slots.get(qid.index())?;
                if slot.offset == DEAD_SLOT {
                    return None;
                }
                a.slots[qid.index()].offset = DEAD_SLOT;
                a.dead_entries += slot.len as usize;
                let (terms, lists) = (&self.list_terms, &self.lists);
                QueryRecord {
                    entries: a
                        .entries(slot)
                        .iter()
                        .map(|e| RecordEntry {
                            term: terms[e.list as usize],
                            list: e.list,
                            pos: lists
                                .get(e.list)
                                .position_of(qid)
                                .expect("record entry implies a posting")
                                as u32,
                            weight: e.weight,
                        })
                        .collect(),
                    k: slot.k as u32,
                }
            }
        };
        for e in &record.entries {
            self.lists.tombstone(e.list, e.pos as usize);
        }
        self.total_tombstones += record.entries.len();
        self.live_queries -= 1;
        Some(record)
    }

    /// Unregister a batch of queries in one pass (the namespace-forget
    /// path): tombstones every posting of every live member and returns the
    /// `(qid, record)` pairs actually removed, in input order. Unknown or
    /// already-removed ids are skipped. One call-site-visible walk instead
    /// of `n` lookups lets callers follow with a single forced compaction.
    pub fn unregister_many(&mut self, qids: &[QueryId]) -> Vec<(QueryId, QueryRecord)> {
        let mut removed = Vec::with_capacity(qids.len());
        for &qid in qids {
            if let Some(record) = self.unregister(qid) {
                removed.push((qid, record));
            }
        }
        removed
    }

    /// The record of a live query, as a layout-independent view.
    #[inline]
    pub fn record(&self, qid: QueryId) -> Option<RecordRef<'_>> {
        match &self.records {
            Records::Plain(v) => v.get(qid.index())?.as_ref().map(|r| RecordRef {
                k: r.k,
                qid,
                inner: RecordRefInner::Plain(&r.entries),
            }),
            Records::Packed(a) => {
                let slot = *a.slots.get(qid.index())?;
                (slot.offset != DEAD_SLOT).then(|| RecordRef {
                    k: slot.k as u32,
                    qid,
                    inner: RecordRefInner::Packed {
                        entries: a.entries(slot),
                        terms: &self.list_terms,
                        lists: &self.lists,
                    },
                })
            }
        }
    }

    /// Dense list index of a term's list, if any query uses the term.
    #[inline]
    pub fn list_of_term(&self, term: TermId) -> Option<u32> {
        self.term_map.get(&term).copied()
    }

    /// The list at a dense index.
    #[inline]
    pub fn list(&self, idx: u32) -> ListRef<'_> {
        self.lists.get(idx)
    }

    /// The term that owns list `idx`.
    #[inline]
    pub fn term_of_list(&self, idx: u32) -> TermId {
        self.list_terms[idx as usize]
    }

    /// Fraction of tombstoned slots across all lists, used to decide when a
    /// compaction pass pays off. O(1): maintained incrementally.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            debug_assert_eq!(
                self.total_tombstones,
                (0..self.lists.len() as u32).map(|i| self.lists.get(i).tombstones()).sum::<usize>()
            );
            self.total_tombstones as f64 / self.total_postings as f64
        }
    }

    /// Drop all tombstones and refresh the cached positions in every record.
    /// Returns the indices of the lists that changed (so callers can rebuild
    /// their bound structures for exactly those lists). Packed records
    /// store no positions, so only plain records need the refresh; for
    /// packed records this is instead the arena's garbage-collection point:
    /// entries stranded by unregistration are reclaimed once they outnumber
    /// half the live ones.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut changed = Vec::new();
        let mut survivors: Vec<Posting> = Vec::new();
        for idx in 0..self.lists.len() as u32 {
            if self.lists.get(idx).tombstones() == 0 {
                continue;
            }
            changed.push(idx);
            let removed = self.lists.get(idx).tombstones();
            self.total_postings -= removed;
            self.total_tombstones -= removed;
            survivors.clear();
            self.lists.compact_list(idx, &mut survivors, &self.cx);
            // Refresh positions: walk the compacted list once.
            if let Records::Plain(v) = &mut self.records {
                for (new_pos, p) in survivors.iter().enumerate() {
                    if let Some(rec) = v[p.qid.index()].as_mut() {
                        for e in &mut rec.entries {
                            if e.list == idx {
                                e.pos = new_pos as u32;
                            }
                        }
                    }
                }
            }
        }
        if let Records::Packed(a) = &mut self.records {
            if a.dead_entries * 2 > self.total_postings.max(1) {
                a.gc();
            }
        }
        changed
    }

    /// Iterate ids of live queries (ascending).
    pub fn live_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        let (plain, packed) = match &self.records {
            Records::Plain(v) => (Some(v), None),
            Records::Packed(a) => (None, Some(a)),
        };
        let plain_it = plain
            .into_iter()
            .flatten()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| QueryId(i as u32)));
        let packed_it = packed
            .into_iter()
            .flat_map(|a| a.slots.iter())
            .enumerate()
            .filter_map(|(i, s)| (s.offset != DEAD_SLOT).then_some(QueryId(i as u32)));
        plain_it.chain(packed_it)
    }

    /// Estimated heap bytes held by this index: lists (their table counted
    /// at capacity times the actual per-backend element size), records, and
    /// the term directory. For paged storage, disk-resident payloads are
    /// excluded (only their page handles count) — spilling is what makes
    /// `index_bytes` drop.
    pub fn heap_bytes(&self) -> usize {
        let lists = self.lists.heap_bytes();
        let records = match &self.records {
            Records::Plain(v) => {
                v.capacity() * std::mem::size_of::<Option<QueryRecord>>()
                    + v.iter()
                        .flatten()
                        .map(|r| r.entries.capacity() * std::mem::size_of::<RecordEntry>())
                        .sum::<usize>()
            }
            Records::Packed(a) => a.heap_bytes(),
        };
        // Hash-map estimate: std's SwissTable keeps ~8/7 of capacity in
        // (key, value) pairs plus one control byte per bucket.
        let directory = self.list_terms.capacity() * std::mem::size_of::<TermId>()
            + self.term_map.capacity()
                * (std::mem::size_of::<(TermId, u32)>() + std::mem::size_of::<u8>());
        lists + records + directory
    }

    /// Point-in-time storage counters (heap estimate + pager activity).
    pub fn storage_stats(&self) -> StorageStats {
        let pager = self.cx.pager.as_ref().map(|p| p.stats()).unwrap_or_default();
        StorageStats {
            index_bytes: self.heap_bytes() as u64,
            hot_pages: pager.hot_pages,
            cold_pages: pager.cold_pages,
            page_faults: pager.page_faults,
        }
    }

    /// Pin every RAM-resident page of every list (empty for unpaged
    /// storage). The doc-parallel monitor holds these pins for the lifetime
    /// of a frozen epoch so scorer workers never fault on pages the epoch
    /// had in RAM at freeze time.
    pub fn pin_resident_pages(&self) -> Vec<PagePin> {
        let mut pins = Vec::new();
        self.lists.collect_resident_pins(&mut pins);
        pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    fn all_configs() -> Vec<StorageConfig> {
        vec![
            StorageConfig::plain(),
            StorageConfig::new(PostingsStorage::Compressed),
            StorageConfig {
                storage: PostingsStorage::Paged,
                page_budget_bytes: 256, // tiny: force spills in tests
                spill_dir: None,
            },
        ]
    }

    #[test]
    fn register_builds_lists_and_records() {
        for cfg in all_configs() {
            let mut ix = QueryIndex::with_storage(&cfg);
            let q0 = ix.register(&vector(&[(1, 1.0), (2, 1.0)]), 3);
            let q1 = ix.register(&vector(&[(2, 1.0), (3, 1.0)]), 3);
            assert_eq!((q0, q1), (QueryId(0), QueryId(1)));
            assert_eq!(ix.num_lists(), 3);
            assert_eq!(ix.num_live(), 2);

            let l2 = ix.list(ix.list_of_term(TermId(2)).unwrap());
            assert_eq!(l2.len(), 2);
            assert_eq!(l2.get(0).qid, q0);
            assert_eq!(l2.get(1).qid, q1);

            let rec = ix.record(q1).unwrap();
            assert_eq!(rec.len(), 2);
            assert_eq!(rec.k(), 3);
            // Full entries point back at the actual postings, and the view
            // round-trips through the owned form.
            for e in rec.entries_full() {
                assert_eq!(ix.list(e.list).get(e.pos as usize).qid, q1);
                assert_eq!(ix.term_of_list(e.list), e.term);
            }
            // The position-free view agrees with the full one.
            for (v, e) in rec.entries().zip(rec.entries_full()) {
                assert_eq!((v.term, v.list, v.weight), (e.term, e.list, e.weight));
            }
            assert_eq!(rec.to_record().entries.len(), 2);
        }
    }

    #[test]
    fn unregister_tombstones_postings() {
        for cfg in all_configs() {
            let mut ix = QueryIndex::with_storage(&cfg);
            let q0 = ix.register(&vector(&[(1, 1.0), (2, 1.0)]), 1);
            let q1 = ix.register(&vector(&[(1, 1.0)]), 1);
            let rec = ix.unregister(q0).expect("was live");
            assert_eq!(rec.entries.len(), 2);
            assert!(ix.unregister(q0).is_none(), "double unregister is a no-op");
            assert_eq!(ix.num_live(), 1);
            assert!(ix.record(q0).is_none());

            let l1 = ix.list(ix.list_of_term(TermId(1)).unwrap());
            assert!(l1.get(0).is_tombstone());
            assert!(!l1.get(1).is_tombstone());
            assert_eq!(l1.live(), 1);
            let _ = q1;
        }
    }

    #[test]
    fn tombstone_ratio_and_compaction() {
        for cfg in all_configs() {
            let mut ix = QueryIndex::with_storage(&cfg);
            let ids: Vec<QueryId> =
                (0..10).map(|i| ix.register(&vector(&[(1, 1.0), (100 + i, 1.0)]), 1)).collect();
            for qid in ids.iter().take(5) {
                ix.unregister(*qid);
            }
            assert!(ix.tombstone_ratio() > 0.4);

            let changed = ix.compact();
            assert!(!changed.is_empty());
            assert_eq!(ix.tombstone_ratio(), 0.0);

            // Positions visible through records must be refreshed (plain)
            // or re-derived correctly (packed).
            for qid in ids.iter().skip(5) {
                let rec = ix.record(*qid).unwrap();
                for e in rec.entries_full() {
                    let p = ix.list(e.list).get(e.pos as usize);
                    assert_eq!(p.qid, *qid);
                    assert_eq!(p.weight, e.weight);
                }
            }
        }
    }

    #[test]
    fn zero_weights_never_register_as_tombstones() {
        // A subnormal weight next to a huge one underflows to exactly 0.0
        // during normalization (1e-42 / ~1e4 < f32::MIN_POSITIVE). Pre-fix,
        // the zero-weight posting registered as a phantom tombstone:
        // `live()` counted it while every live-iteration path skipped it.
        let mut raw = SparseVector::from_pairs(vec![(TermId(1), 1e-42), (TermId(2), 1e4)]);
        raw.normalize();
        let mut ix = QueryIndex::new();
        let qid = ix.register(&raw, 1);

        for li in 0..ix.num_lists() as u32 {
            let list = ix.list(li);
            let mut live_count = 0usize;
            list.for_each_live(|_, _| live_count += 1);
            assert_eq!(list.live(), live_count, "tombstone accounting desynced on list {li}");
            assert_eq!(list.tombstones(), 0);
        }
        // The record only owns live postings.
        let rec = ix.record(qid).unwrap();
        for e in rec.entries_full() {
            assert!(e.weight > 0.0);
            assert!(!ix.list(e.list).get(e.pos as usize).is_tombstone());
        }
    }

    #[test]
    fn live_ids_iterates_survivors() {
        for cfg in all_configs() {
            let mut ix = QueryIndex::with_storage(&cfg);
            let a = ix.register(&vector(&[(1, 1.0)]), 1);
            let b = ix.register(&vector(&[(1, 1.0)]), 1);
            let c = ix.register(&vector(&[(1, 1.0)]), 1);
            ix.unregister(b);
            let live: Vec<QueryId> = ix.live_ids().collect();
            assert_eq!(live, vec![a, c]);
        }
    }

    #[test]
    fn ids_are_monotone() {
        let mut ix = QueryIndex::new();
        let a = ix.register(&vector(&[(1, 1.0)]), 1);
        ix.unregister(a);
        let b = ix.register(&vector(&[(1, 1.0)]), 1);
        assert!(b > a, "ids are never reused, keeping lists append-only");
    }

    /// The packed layouts must be observably identical to plain across a
    /// register/unregister/compact churn, and strictly smaller at scale.
    #[test]
    fn packed_layouts_match_plain_and_shrink() {
        let mut plain = QueryIndex::new();
        let mut others: Vec<QueryIndex> =
            all_configs()[1..].iter().map(QueryIndex::with_storage).collect();
        // Big enough that per-chunk and per-list constants amortize away —
        // the packed layouts buy their win at scale.
        let n = 4000u32;
        for i in 0..n {
            let v = vector(&[(i % 17, 1.0), (17 + i % 11, 0.7), (40 + i % 29, 0.3)]);
            let qid = plain.register(&v, 1 + i % 4);
            for ix in &mut others {
                assert_eq!(ix.register(&v, 1 + i % 4), qid);
            }
        }
        for i in (0..n).step_by(3) {
            let a = plain.unregister(QueryId(i));
            for ix in &mut others {
                let b = ix.unregister(QueryId(i));
                assert_eq!(a.as_ref().map(|r| r.entries.clone()), b.map(|r| r.entries));
            }
        }
        let changed = plain.compact();
        for ix in &mut others {
            assert_eq!(ix.compact(), changed);
        }
        for ix in &others {
            assert_eq!(ix.num_live(), plain.num_live());
            for qid in plain.live_ids() {
                let a = plain.record(qid).unwrap().to_record();
                let b = ix.record(qid).unwrap().to_record();
                assert_eq!(a.k, b.k);
                assert_eq!(a.entries, b.entries);
            }
            for li in 0..plain.num_lists() as u32 {
                let (pl, ol) = (plain.list(li), ix.list(li));
                assert_eq!(pl.len(), ol.len());
                for pos in 0..pl.len() {
                    assert_eq!(pl.get(pos), ol.get(pos));
                }
            }
            assert!(
                2 * ix.heap_bytes() < plain.heap_bytes(),
                "{} must halve plain's RAM at scale ({} vs {})",
                ix.storage_config().storage,
                ix.heap_bytes(),
                plain.heap_bytes()
            );
        }
    }

    #[test]
    fn paged_storage_reports_pager_activity() {
        let cfg = StorageConfig {
            storage: PostingsStorage::Paged,
            page_budget_bytes: 256,
            spill_dir: None,
        };
        let mut ix = QueryIndex::with_storage(&cfg);
        for i in 0..600u32 {
            ix.register(&vector(&[(1, 1.0), (2 + i, 0.5)]), 1);
        }
        let stats = ix.storage_stats();
        assert!(stats.cold_pages > 0, "tiny budget must spill");
        assert!(stats.index_bytes > 0);
        // Reading every posting faults cold pages back in.
        let mut n = 0usize;
        ix.list(0).for_each_live(|_, _| n += 1);
        assert_eq!(n, 600);
        assert!(ix.storage_stats().page_faults > 0);
        // Pins cover exactly the currently-resident pages.
        let pins = ix.pin_resident_pages();
        assert_eq!(pins.len() as u64, ix.storage_stats().hot_pages);
    }
}
