//! # ctk-index
//!
//! Query-side inverted-index substrate for continuous top-k monitoring.
//!
//! The paper's key design decision (§III) is to index the *queries* and probe
//! each arriving document against that index. This crate provides every index
//! structure the algorithms need:
//!
//! * [`postings`] — ID-ordered postings lists with galloping cursors (the
//!   "identifier-ordering paradigm" the paper adapts to query indexing);
//! * [`query_index`] — the registry mapping terms → lists and queries →
//!   their posting positions, with tombstone deletion and compaction;
//! * [`store`] — the postings-storage seam: the [`PostingsStore`] trait
//!   with plain (Vec-backed), compressed (sealed blocks), and paged
//!   (RAM/disk pager) backends selected by [`StorageConfig`];
//! * [`max_tracker`] — exact per-list maxima of `w/S_k` under lazy
//!   (versioned-heap) maintenance, used by RIO's global bounds (Eq. 2);
//! * [`segment_tree`], [`block_max`], [`suffix_max`] — the three alternative
//!   implementations of MRIO's local zone bounds (Eq. 3, TKDE §5.2);
//! * [`epoch_bounds`] — per-epoch, read-only zone-maxima bounds over a
//!   shared `QueryIndex`, built from caller-supplied thresholds; the
//!   doc-parallel monitor's pruning substrate;
//! * [`impact_lists`] — impact-ordered (`w/S_k` descending) snapshot lists
//!   for the RTA baseline and weight-ordered lists for SortQuer.
//!
//! Nothing in this crate knows about scores or decay; it stores weights and
//! caller-computed bound values (`u = w/S_k`), keeping the index reusable by
//! every algorithm in `ctk-core` and `ctk-baselines`.

pub mod block_max;
pub mod epoch_bounds;
pub mod impact_lists;
pub mod max_tracker;
pub mod postings;
pub mod query_index;
pub mod segment_tree;
pub mod store;
pub mod suffix_max;
pub mod zone;

pub use block_max::BlockMax;
pub use ctk_storage::PagePin;
pub use epoch_bounds::{list_bound_values, EpochBounds};
pub use impact_lists::{ImpactList, WeightOrderedList};
pub use max_tracker::VersionedMaxTracker;
pub use postings::{Posting, PostingsList};
pub use query_index::{EntryView, QueryIndex, QueryRecord, RecordEntry, RecordRef};
pub use segment_tree::MaxSegTree;
pub use store::{ListRef, PostingsStorage, PostingsStore, StorageConfig, StorageStats};
pub use suffix_max::SuffixMax;
pub use zone::ZoneMax;
