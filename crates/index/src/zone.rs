//! The zone-maximum abstraction behind MRIO's local bounds (paper Eq. 3).
//!
//! MRIO needs, per postings list, the maximum normalized preference
//! `u = w/S_k` over a *range of positions* (the current zone). The TKDE paper
//! evaluates three implementations of this primitive; the trait below is the
//! seam they all plug into, and `ctk-core::mrio` is generic over it.

/// Range-maximum structure over the per-position bound values of one list.
///
/// `range_max` takes `&mut self` because the lazily maintained variants
/// ([`crate::SuffixMax`]) may need to rebuild their snapshot before they can
/// answer.
pub trait ZoneMax {
    /// Append a value for the new tail position (list grew by one posting).
    fn append(&mut self, u: f64);

    /// Point-update the value at `pos` (the query's `S_k` changed, or the
    /// posting was tombstoned — encoded as `-inf`).
    fn update(&mut self, pos: usize, u: f64);

    /// Maximum over positions `[lo, hi)`. Returns `-inf` for empty ranges.
    ///
    /// Implementations may return a value `>=` the true maximum (an upper
    /// bound) but never smaller — pruning correctness depends on it.
    fn range_max(&mut self, lo: usize, hi: usize) -> f64;

    /// [`ZoneMax::range_max`] through a shared reference, for structures
    /// that have been **frozen** (shared read-only across scorer threads —
    /// the doc-parallel epoch bounds). Lazily maintained variants cannot
    /// rebuild here, so callers must run [`ZoneMax::prepare_frozen`] while
    /// they still hold exclusive access; after that, the same upper-bound
    /// contract as `range_max` holds.
    fn range_max_frozen(&self, lo: usize, hi: usize) -> f64;

    /// Settle any deferred maintenance before the structure is frozen
    /// (shared immutably). After this call, [`ZoneMax::range_max_frozen`]
    /// answers are upper bounds even for implementations whose `range_max`
    /// normally repairs itself lazily (e.g. [`crate::SuffixMax`] rebuilding
    /// a dirty or stale snapshot). Default: nothing to settle.
    fn prepare_frozen(&mut self) {}

    /// Maximum over all positions (used as the RIO-style global bound).
    fn global_max(&mut self) -> f64 {
        let n = self.len();
        self.range_max(0, n)
    }

    /// Number of tracked positions.
    fn len(&self) -> usize;

    /// True when no positions are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the entire contents (compaction path).
    fn rebuild(&mut self, vals: &[f64]);
}

/// Exhaustive reference implementation used in tests and as the correctness
/// oracle for the real structures.
#[derive(Debug, Default, Clone)]
pub struct ScanZoneMax {
    vals: Vec<f64>,
}

impl ZoneMax for ScanZoneMax {
    fn append(&mut self, u: f64) {
        self.vals.push(u);
    }

    fn update(&mut self, pos: usize, u: f64) {
        self.vals[pos] = u;
    }

    fn range_max(&mut self, lo: usize, hi: usize) -> f64 {
        self.range_max_frozen(lo, hi)
    }

    fn range_max_frozen(&self, lo: usize, hi: usize) -> f64 {
        self.vals[lo.min(self.vals.len())..hi.min(self.vals.len())]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn rebuild(&mut self, vals: &[f64]) {
        self.vals = vals.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_zone_max_basics() {
        let mut z = ScanZoneMax::default();
        for v in [1.0, 5.0, 2.0] {
            z.append(v);
        }
        assert_eq!(z.range_max(0, 3), 5.0);
        assert_eq!(z.range_max(2, 3), 2.0);
        assert_eq!(z.range_max(1, 1), f64::NEG_INFINITY, "empty range");
        z.update(1, 0.5);
        assert_eq!(z.global_max(), 2.0);
        z.rebuild(&[9.0]);
        assert_eq!(z.len(), 1);
        assert_eq!(z.global_max(), 9.0);
    }
}
