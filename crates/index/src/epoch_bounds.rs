//! Per-epoch, read-only bound structures over a shared [`QueryIndex`].
//!
//! The doc-parallel monitor shares one copy-on-write index epoch across
//! scorer threads; [`EpochBounds`] is the pruning side of that epoch: one
//! [`ZoneMax`] structure per postings list holding, position-aligned with
//! the list, each posting's normalized preference `u = w / S_k(q)` frozen at
//! build time (`+inf` while `q`'s result set is unfilled, `-inf` for
//! tombstones), plus a per-list global maximum cached at freeze time. A
//! scorer runs MRIO's zone bound (paper Eq. 3) against them: for an
//! id-range zone and a document with term weights `f`, every query in the
//! zone scores at most
//!
//! ```text
//! UB*(zone) = Σ_t f_t · zone_max_t(range of the zone's ids in list t)
//! ```
//!
//! so if `UB*` is below the document's target `θ_d`, no query in the zone
//! can beat its own threshold and the zone's postings are never read. An
//! *unfilled* query forces `+inf` into the zones holding it, so those are
//! always walked — exactly the oracle's warm-up semantics.
//!
//! **Staleness model.** Bounds are conservative under the same monotonicity
//! the submit-time candidate filter relies on: `S_k` only rises while the
//! structure is frozen, so `u` only shrinks and a frozen bound stays an
//! upper bound — merges never touch it. Only three events invalidate or
//! tighten it, all at copy-on-write mutation points (`Arc::make_mut` in the
//! sharded monitor, where exclusive access is guaranteed):
//!
//! * registration appends (`+inf` for the new, unfilled query);
//! * unregistration / compaction point-updates or per-list rebuilds;
//! * a decay renormalization *scales thresholds down* — the one event that
//!   would make frozen bounds under-estimate — so the owner must rebuild
//!   everything before pruning again (the monitor tracks this as a dirty
//!   flag and disables pruning for renormalization-crossing batches).
//!
//! Mutating a frozen instance is a logic error (a worker could be reading
//! it); every mutator asserts thawed-ness in debug builds.

use crate::block_max::BlockMax;
use crate::query_index::{QueryIndex, RecordEntry};
use crate::zone::ZoneMax;
use ctk_common::QueryId;

/// Fill `vals` with the bound values of list `li`, position-aligned with
/// its postings: `-inf` for tombstones, otherwise `u_of(qid, weight)` (the
/// caller's `u = w/S_k`, `+inf` for unfilled queries). Shared by
/// [`EpochBounds`] and MRIO's per-list zone rebuilds so both sides compute
/// one definition of a list's bound values.
pub fn list_bound_values(
    index: &QueryIndex,
    li: u32,
    mut u_of: impl FnMut(QueryId, f32) -> f64,
    vals: &mut Vec<f64>,
) {
    let list = index.list(li);
    vals.clear();
    vals.reserve(list.len());
    list.for_each_slot(|qid, weight| {
        vals.push(if ctk_common::is_tombstone_weight(weight) {
            f64::NEG_INFINITY
        } else {
            u_of(qid, weight)
        });
    });
}

/// Read-only zone-maxima bounds over one [`QueryIndex`] epoch (see the
/// module docs). Generic over the [`ZoneMax`] implementation; the default
/// [`BlockMax`] answers aligned zone queries from its block cache in O(1).
#[derive(Debug, Clone, Default)]
pub struct EpochBounds<Z: ZoneMax = BlockMax> {
    /// One zone structure per postings list, position-aligned with it.
    lists: Vec<Z>,
    /// Per list: maximum `u` over the whole list (`+inf` when it hosts an
    /// unfilled query, `-inf` when empty), cached at freeze time — the
    /// walk's RIO-style global pre-filter reads it once per matched list.
    global: Vec<f64>,
    /// Set while the structure is shared read-only with scorer threads.
    frozen: bool,
}

impl<Z: ZoneMax + Default> EpochBounds<Z> {
    pub fn new() -> Self {
        EpochBounds { lists: Vec::new(), global: Vec::new(), frozen: false }
    }

    /// Number of tracked lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// True while frozen (shared read-only).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Settle deferred maintenance in every list (lazy variants rebuild
    /// their snapshots), cache the per-list global maxima, and mark the
    /// structure read-only. Idempotent.
    pub fn freeze(&mut self) {
        if !self.frozen {
            self.global.resize(self.lists.len(), f64::NEG_INFINITY);
            for (z, g) in self.lists.iter_mut().zip(&mut self.global) {
                z.prepare_frozen();
                *g = z.range_max_frozen(0, z.len());
            }
            self.frozen = true;
        }
    }

    /// Re-open the structure for mutation. Callers must hold exclusive
    /// access (the sharded monitor only thaws behind `Arc::make_mut`, so
    /// in-flight batches keep reading their own frozen copy).
    pub fn thaw(&mut self) {
        self.frozen = false;
    }

    #[inline]
    fn assert_thawed(&self) {
        debug_assert!(
            !self.frozen,
            "frozen epoch bounds mutated — a scorer thread could be reading them; \
             thaw an exclusively owned (copy-on-write) instance first"
        );
    }

    /// Rebuild every list's bounds from the index and the caller's current
    /// `u = w/S_k` (the renormalization / restore path — the only events
    /// after which frozen values could under-estimate).
    pub fn rebuild_all(&mut self, index: &QueryIndex, mut u_of: impl FnMut(QueryId, f32) -> f64) {
        self.assert_thawed();
        self.lists.resize_with(index.num_lists(), Z::default);
        let mut vals = Vec::new();
        for li in 0..index.num_lists() as u32 {
            self.rebuild_list_inner(index, li, &mut u_of, &mut vals);
        }
    }

    /// Rebuild exactly one list (the compaction path: positions moved).
    pub fn rebuild_list(
        &mut self,
        index: &QueryIndex,
        li: u32,
        u_of: impl FnMut(QueryId, f32) -> f64,
    ) {
        self.assert_thawed();
        let mut vals = Vec::new();
        self.rebuild_list_inner(index, li, u_of, &mut vals);
    }

    fn rebuild_list_inner(
        &mut self,
        index: &QueryIndex,
        li: u32,
        u_of: impl FnMut(QueryId, f32) -> f64,
        vals: &mut Vec<f64>,
    ) {
        list_bound_values(index, li, u_of, vals);
        self.lists[li as usize].rebuild(vals);
    }

    /// Mirror query `qid`'s registration: append one bound value per new
    /// posting (the index appends in the same order, so positions stay
    /// aligned), growing the list table when the registration created new
    /// lists.
    pub fn append_registration(
        &mut self,
        qid: QueryId,
        entries: &[RecordEntry],
        mut u_of: impl FnMut(QueryId, f32) -> f64,
    ) {
        self.assert_thawed();
        for e in entries {
            while self.lists.len() <= e.list as usize {
                self.lists.push(Z::default());
            }
            let z = &mut self.lists[e.list as usize];
            debug_assert_eq!(e.pos as usize, z.len(), "bounds must stay position-aligned");
            z.append(u_of(qid, e.weight));
        }
    }

    /// Mirror an unregistration: tombstone the query's positions (`-inf`).
    /// The filled-global caches are left stale-high — still upper bounds.
    pub fn tombstone_registration(&mut self, entries: &[RecordEntry]) {
        self.assert_thawed();
        for e in entries {
            self.lists[e.list as usize].update(e.pos as usize, f64::NEG_INFINITY);
        }
    }

    /// Tighten query `qid`'s positions to its current `u` after its
    /// threshold rose (insertions, seeding). Outside renormalizations `u`
    /// only shrinks, so this is a pure tightening; deferring it is always
    /// sound — the owner batches refreshes and applies them here once
    /// enough accumulate.
    pub fn refresh_query(
        &mut self,
        qid: QueryId,
        entries: &[RecordEntry],
        mut u_of: impl FnMut(QueryId, f32) -> f64,
    ) {
        self.assert_thawed();
        for e in entries {
            self.lists[e.list as usize].update(e.pos as usize, u_of(qid, e.weight));
        }
    }

    /// Upper bound on `u` over positions `[lo, hi)` of list `li`. Read
    /// path: only meaningful on a frozen instance.
    #[inline]
    pub fn zone_max(&self, li: u32, lo: usize, hi: usize) -> f64 {
        debug_assert!(self.frozen, "zone_max reads require a frozen epoch");
        self.lists[li as usize].range_max_frozen(lo, hi)
    }

    /// Upper bound on `u` over the whole of list `li` (`+inf` when it hosts
    /// an unfilled query), cached at freeze time — the RIO-style global
    /// pre-filter term.
    #[inline]
    pub fn global_max(&self, li: u32) -> f64 {
        debug_assert!(self.frozen, "global_max reads require a frozen epoch");
        self.global[li as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix_max::SuffixMax;
    use ctk_common::SparseVector;
    use ctk_common::TermId;

    fn vector(pairs: &[(u32, f32)]) -> SparseVector {
        let mut v = SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect());
        v.normalize();
        v
    }

    /// A tiny threshold table: `u = w / S_k`, `+inf` while unfilled.
    fn u_from(thresholds: &[f64]) -> impl FnMut(QueryId, f32) -> f64 + '_ {
        |qid, w| {
            let t = thresholds[qid.index()];
            if t > 0.0 {
                w as f64 / t
            } else {
                f64::INFINITY
            }
        }
    }

    fn build_index(n: usize) -> QueryIndex {
        let mut ix = QueryIndex::new();
        for i in 0..n {
            ix.register(&vector(&[(1, 1.0), (10 + i as u32 % 3, 1.0)]), 1);
        }
        ix
    }

    #[test]
    fn build_maps_thresholds_tombstones_and_unfilled() {
        let mut ix = build_index(4);
        ix.unregister(QueryId(2));
        // q0 filled at 0.5, q1 at 0.25, q3 unfilled.
        let thresholds = [0.5, 0.25, 0.0, 0.0];
        let mut b: EpochBounds = EpochBounds::new();
        b.rebuild_all(&ix, u_from(&thresholds));
        b.freeze();

        let li = ix.list_of_term(TermId(1)).unwrap();
        let w = ix.record(QueryId(0)).unwrap().entries().next().unwrap().weight as f64;
        // Position 3 (q3, unfilled) forces +inf into the zone and into the
        // cached global...
        assert_eq!(b.zone_max(li, 0, 4), f64::INFINITY);
        assert_eq!(b.global_max(li), f64::INFINITY);
        // ...while the tombstoned q2 contributes nothing.
        assert_eq!(b.zone_max(li, 2, 3), f64::NEG_INFINITY);
        // A zone of filled entries is exact.
        assert!((b.zone_max(li, 0, 2) - w / 0.25).abs() < 1e-12);
        // A list without unfilled residents caches a finite global.
        let li11 = ix.list_of_term(TermId(11)).unwrap();
        assert!((b.global_max(li11) - w / 0.25).abs() < 1e-12, "only the filled q1 lives there");
    }

    #[test]
    fn incremental_maintenance_matches_full_rebuild() {
        let mut ix = build_index(3);
        let thresholds = [0.5, 0.4, 0.0, 0.0, 0.0];
        let mut inc: EpochBounds = EpochBounds::new();
        inc.rebuild_all(&ix, u_from(&thresholds));

        // Register mirrors: index first, then bounds (same append order).
        let q3 = ix.register(&vector(&[(1, 1.0), (99, 2.0)]), 1);
        inc.append_registration(
            q3,
            &ix.record(q3).unwrap().to_record().entries,
            u_from(&thresholds),
        );
        // Unregister mirrors.
        let gone = ix.unregister(QueryId(1)).unwrap();
        inc.tombstone_registration(&gone.entries);
        // A threshold rise tightens in place.
        let thresholds = [0.8, 0.4, 0.0, 0.0, 0.0];
        inc.refresh_query(
            QueryId(0),
            &ix.record(QueryId(0)).unwrap().to_record().entries,
            u_from(&thresholds),
        );

        let mut full: EpochBounds = EpochBounds::new();
        full.rebuild_all(&ix, u_from(&thresholds));
        inc.freeze();
        full.freeze();
        assert_eq!(inc.num_lists(), full.num_lists());
        for li in 0..full.num_lists() as u32 {
            let n = ix.list(li).len();
            for lo in 0..=n {
                for hi in lo..=n {
                    let (a, b) = (inc.zone_max(li, lo, hi), full.zone_max(li, lo, hi));
                    // Incremental may be stale-high (filled-global caches,
                    // deferred tightenings) but never stale-low.
                    assert!(a >= b, "list {li} [{lo},{hi}): incremental {a} < rebuilt {b}");
                }
            }
            assert!(inc.global_max(li) >= full.global_max(li));
        }
    }

    #[test]
    fn compaction_rebuild_realigns_positions() {
        let mut ix = build_index(6);
        let mut thresholds = vec![0.5; 6];
        thresholds[4] = 0.25;
        let mut b: EpochBounds = EpochBounds::new();
        b.rebuild_all(&ix, u_from(&thresholds));
        for q in [0u32, 1, 2] {
            let gone = ix.unregister(QueryId(q)).unwrap();
            b.tombstone_registration(&gone.entries);
        }
        for li in ix.compact() {
            b.rebuild_list(&ix, li, u_from(&thresholds));
        }
        b.freeze();
        let li = ix.list_of_term(TermId(1)).unwrap();
        assert_eq!(ix.list(li).len(), 3, "compaction dropped the tombstones");
        let w = ix.record(QueryId(4)).unwrap().entries().next().unwrap().weight as f64;
        // q4's tightest bound must sit at its *new* position (1, not 4).
        assert!((b.zone_max(li, 1, 2) - w / 0.25).abs() < 1e-12);
    }

    #[test]
    fn freeze_settles_suffix_staleness() {
        // The lazy SuffixMax variant counts decreasing updates but its
        // frozen read path never rebuilds; freeze() must settle the debt.
        let mut ix = QueryIndex::new();
        for _ in 0..200 {
            ix.register(&vector(&[(1, 1.0)]), 1);
        }
        let mut thresholds = vec![0.5; 200];
        let mut b: EpochBounds<SuffixMax> = EpochBounds::new();
        b.rebuild_all(&ix, u_from(&thresholds));
        // Every threshold rises: decreasing updates accumulate staleness
        // well past SuffixMax's rebuild ratio, but nothing on the frozen
        // read path would ever settle it.
        for q in 0..200u32 {
            thresholds[q as usize] = 4.0;
            let entries = ix.record(QueryId(q)).unwrap().to_record().entries;
            b.refresh_query(QueryId(q), &entries, u_from(&thresholds));
        }
        b.freeze();
        let li = ix.list_of_term(TermId(1)).unwrap();
        let w = ix.record(QueryId(0)).unwrap().entries().next().unwrap().weight as f64;
        // After the settle the snapshot is exact again: the pre-refresh
        // bound (w/0.5) has tightened to the true maximum (w/4.0).
        assert!((b.zone_max(li, 0, 200) - w / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frozen epoch bounds mutated")]
    #[cfg(debug_assertions)]
    fn mutating_a_frozen_epoch_panics() {
        let ix = build_index(2);
        let thresholds = [0.5, 0.5];
        let mut b: EpochBounds = EpochBounds::new();
        b.rebuild_all(&ix, u_from(&thresholds));
        b.freeze();
        let entries = ix.record(QueryId(0)).unwrap().to_record().entries;
        b.tombstone_registration(&entries); // must panic: batch could be in flight
    }
}
