//! Frequency-ordered list variants used by the published baselines.
//!
//! The paper's point of departure (§I) is that prior work indexes queries in
//! *frequency-ordered* (impact-ordered) lists. Two flavours are needed:
//!
//! * [`ImpactList`] — entries sorted by a **snapshot** of the normalized
//!   impact `u = w/S_k`, descending. Used by RTA's threshold-algorithm
//!   descent. Snapshots are stale-valid upper bounds (`S_k` only grows under
//!   inflation scoring) and are refreshed by periodic rebuilds.
//! * [`WeightOrderedList`] — entries sorted by the raw weight `w`,
//!   descending. Weights never change, so the order is permanent. Used by
//!   SortQuer's term-at-a-time traversal.

use ctk_common::QueryId;

/// Entry of an impact-ordered list: the snapshot bound is the sort key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpactEntry {
    pub qid: QueryId,
    pub weight: f32,
    /// Snapshot of `w/S_k` at insert/rebuild time; `+inf` for unfilled
    /// queries. Always `>=` the current value between rebuilds.
    pub bound: f64,
}

/// List sorted by descending snapshot impact.
#[derive(Debug, Clone, Default)]
pub struct ImpactList {
    entries: Vec<ImpactEntry>,
}

impl ImpactList {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[ImpactEntry] {
        &self.entries
    }

    /// Insert keeping descending-bound order (O(n) memmove; registration is
    /// rare relative to stream events).
    pub fn insert(&mut self, qid: QueryId, weight: f32, bound: f64) {
        let pos = self.entries.partition_point(|e| e.bound > bound);
        self.entries.insert(pos, ImpactEntry { qid, weight, bound });
    }

    /// Remove the entry of `qid` (linear scan).
    pub fn remove(&mut self, qid: QueryId) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.qid == qid) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Refresh every snapshot bound from `current_u` and re-sort.
    /// Call periodically; between calls the stored bounds stay valid upper
    /// bounds because the true values only decrease.
    pub fn rebuild(&mut self, mut current_u: impl FnMut(QueryId, f32) -> f64) {
        for e in &mut self.entries {
            e.bound = current_u(e.qid, e.weight);
        }
        self.entries.sort_unstable_by(|a, b| {
            b.bound.partial_cmp(&a.bound).unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Check the descending invariant (test helper).
    pub fn is_sorted(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].bound >= w[1].bound)
    }
}

/// List sorted by descending raw weight. Order never changes after insert.
#[derive(Debug, Clone, Default)]
pub struct WeightOrderedList {
    entries: Vec<(QueryId, f32)>,
}

impl WeightOrderedList {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[(QueryId, f32)] {
        &self.entries
    }

    /// Insert keeping descending-weight order.
    pub fn insert(&mut self, qid: QueryId, weight: f32) {
        let pos = self.entries.partition_point(|&(_, w)| w >= weight);
        self.entries.insert(pos, (qid, weight));
    }

    /// Remove the entry of `qid` (linear scan).
    pub fn remove(&mut self, qid: QueryId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(q, _)| q == qid) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impact_insert_keeps_descending_order() {
        let mut l = ImpactList::new();
        l.insert(QueryId(1), 0.5, 2.0);
        l.insert(QueryId(2), 0.5, 5.0);
        l.insert(QueryId(3), 0.5, f64::INFINITY);
        l.insert(QueryId(4), 0.5, 3.0);
        assert!(l.is_sorted());
        let ids: Vec<u32> = l.as_slice().iter().map(|e| e.qid.0).collect();
        assert_eq!(ids, vec![3, 2, 4, 1]);
    }

    #[test]
    fn impact_rebuild_resorts_with_fresh_bounds() {
        let mut l = ImpactList::new();
        l.insert(QueryId(1), 1.0, 10.0);
        l.insert(QueryId(2), 2.0, 9.0);
        // New thresholds flip the order: q1 -> 1.0, q2 -> 8.0.
        l.rebuild(|qid, w| if qid == QueryId(1) { w as f64 } else { (w * 4.0) as f64 });
        assert!(l.is_sorted());
        assert_eq!(l.as_slice()[0].qid, QueryId(2));
        assert_eq!(l.as_slice()[0].bound, 8.0);
    }

    #[test]
    fn impact_remove() {
        let mut l = ImpactList::new();
        l.insert(QueryId(1), 1.0, 1.0);
        l.insert(QueryId(2), 1.0, 2.0);
        assert!(l.remove(QueryId(1)));
        assert!(!l.remove(QueryId(1)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn weight_list_descending_and_stable_for_ties() {
        let mut l = WeightOrderedList::new();
        l.insert(QueryId(1), 0.3);
        l.insert(QueryId(2), 0.9);
        l.insert(QueryId(3), 0.3);
        let ids: Vec<u32> = l.as_slice().iter().map(|&(q, _)| q.0).collect();
        assert_eq!(ids, vec![2, 1, 3], "ties keep insertion order");
        assert!(l.as_slice().windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn weight_list_remove() {
        let mut l = WeightOrderedList::new();
        l.insert(QueryId(7), 0.5);
        assert!(l.remove(QueryId(7)));
        assert!(l.is_empty());
    }
}
