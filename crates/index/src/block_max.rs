//! Block-structured zone maxima (the "block-max" implementation of `UB*`).
//!
//! The list is cut into fixed-size blocks; each block caches the maximum of
//! its values, in the spirit of Block-Max WAND. Range queries scan whole
//! blocks through the cache and only touch raw values in the two partial edge
//! blocks, so a query costs O(B + n/B); updates cost O(1) on increase and
//! O(B) on decrease (the block max must be recomputed).

use crate::zone::ZoneMax;

/// Default block size; 64 keeps a block inside one or two cache lines.
pub const DEFAULT_BLOCK: usize = 64;

/// Per-block maxima over a growable array of values.
#[derive(Debug, Clone)]
pub struct BlockMax {
    vals: Vec<f64>,
    block_max: Vec<f64>,
    block: usize,
    /// Cached maximum over all values (kept exact on every mutation).
    global: f64,
}

impl Default for BlockMax {
    fn default() -> Self {
        BlockMax::with_block_size(DEFAULT_BLOCK)
    }
}

impl BlockMax {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with a custom block size (must be >= 1).
    pub fn with_block_size(block: usize) -> Self {
        assert!(block >= 1);
        BlockMax { vals: Vec::new(), block_max: Vec::new(), block, global: f64::NEG_INFINITY }
    }

    #[inline]
    fn block_of(&self, pos: usize) -> usize {
        pos / self.block
    }

    fn recompute_block(&mut self, b: usize) {
        let lo = b * self.block;
        let hi = ((b + 1) * self.block).min(self.vals.len());
        self.block_max[b] = self.vals[lo..hi].iter().copied().fold(f64::NEG_INFINITY, f64::max);
    }
}

impl ZoneMax for BlockMax {
    fn append(&mut self, u: f64) {
        let pos = self.vals.len();
        self.vals.push(u);
        let b = self.block_of(pos);
        if b == self.block_max.len() {
            self.block_max.push(u);
        } else {
            self.block_max[b] = self.block_max[b].max(u);
        }
        self.global = self.global.max(u);
    }

    fn update(&mut self, pos: usize, u: f64) {
        let old = self.vals[pos];
        self.vals[pos] = u;
        let b = self.block_of(pos);
        if u >= self.block_max[b] {
            self.block_max[b] = u;
        } else if old == self.block_max[b] {
            // The previous maximum may have shrunk: rescan the block.
            self.recompute_block(b);
        }
        if u >= self.global {
            self.global = u;
        } else if old == self.global {
            self.global = self.block_max.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
    }

    fn range_max(&mut self, lo: usize, hi: usize) -> f64 {
        self.range_max_frozen(lo, hi)
    }

    fn range_max_frozen(&self, lo: usize, hi: usize) -> f64 {
        let (lo, hi) = (lo.min(self.vals.len()), hi.min(self.vals.len()));
        if lo >= hi {
            return f64::NEG_INFINITY;
        }
        let (b_lo, b_hi) = (self.block_of(lo), self.block_of(hi - 1));
        if b_lo == b_hi {
            return self.vals[lo..hi].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
        let mut best = f64::NEG_INFINITY;
        // Left partial block.
        let left_end = (b_lo + 1) * self.block;
        best = self.vals[lo..left_end].iter().copied().fold(best, f64::max);
        // Whole middle blocks via the cache.
        for b in (b_lo + 1)..b_hi {
            best = best.max(self.block_max[b]);
        }
        // Right partial block.
        let right_start = b_hi * self.block;
        best = self.vals[right_start..hi].iter().copied().fold(best, f64::max);
        best
    }

    fn global_max(&mut self) -> f64 {
        self.global
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn rebuild(&mut self, vals: &[f64]) {
        self.vals = vals.to_vec();
        let nblocks = vals.len().div_ceil(self.block);
        self.block_max = vec![f64::NEG_INFINITY; nblocks];
        for b in 0..nblocks {
            self.recompute_block(b);
        }
        self.global = self.block_max.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{ScanZoneMax, ZoneMax};

    #[test]
    fn matches_reference_small_blocks() {
        for block in [1usize, 2, 3, 8] {
            let vals: Vec<f64> = (0..50).map(|i| ((i * 31) % 17) as f64).collect();
            let mut bm = BlockMax::with_block_size(block);
            bm.rebuild(&vals);
            let mut oracle = ScanZoneMax::default();
            oracle.rebuild(&vals);
            for lo in 0..=vals.len() {
                for hi in lo..=vals.len() {
                    assert_eq!(
                        bm.range_max(lo, hi),
                        oracle.range_max(lo, hi),
                        "block={block} [{lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn randomized_ops_match_reference() {
        let mut bm = BlockMax::with_block_size(4);
        let mut oracle = ScanZoneMax::default();
        let mut state = 99u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..600 {
            if step % 2 == 0 || bm.len() == 0 {
                let v = rng() * 10.0;
                bm.append(v);
                oracle.append(v);
            } else {
                let pos = (rng() * bm.len() as f64) as usize % bm.len();
                let v = if step % 5 == 0 { f64::NEG_INFINITY } else { rng() * 10.0 };
                bm.update(pos, v);
                oracle.update(pos, v);
            }
            let n = bm.len();
            for (lo, hi) in [(0, n), (n / 3, 2 * n / 3 + 1), (n.saturating_sub(5), n)] {
                assert_eq!(bm.range_max(lo, hi), oracle.range_max(lo, hi));
            }
        }
    }

    #[test]
    fn update_decrease_recomputes_block_max() {
        let mut bm = BlockMax::with_block_size(4);
        bm.rebuild(&[1.0, 9.0, 2.0, 3.0]);
        bm.update(1, 0.5); // old block max shrinks
        assert_eq!(bm.range_max(0, 4), 3.0);
        bm.update(3, 20.0); // fast path: new max
        assert_eq!(bm.range_max(0, 4), 20.0);
    }

    #[test]
    fn empty_and_oob_ranges() {
        let mut bm = BlockMax::new();
        assert_eq!(bm.range_max(0, 10), f64::NEG_INFINITY);
        bm.append(5.0);
        assert_eq!(bm.range_max(0, 100), 5.0, "hi clamped to len");
        assert_eq!(bm.range_max(1, 1), f64::NEG_INFINITY);
    }
}
