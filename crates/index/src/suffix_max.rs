//! Snapshot suffix maxima — the cheapest (and loosest) zone-bound variant.
//!
//! `suffix[i] = max(vals[i..])` answers "max from my cursor to anywhere
//! right of it" in O(1). The snapshot is *stale-valid*: under pure recency
//! inflation, `S_k` only grows, so `u = w/S_k` only shrinks, and a snapshot
//! taken earlier always upper-bounds the current values. Decreasing updates
//! are therefore just counted; the snapshot is rebuilt when enough staleness
//! accumulates. Increasing updates (possible under the sliding-window
//! extension, where `S_k` can drop) mark the snapshot dirty and force a
//! rebuild before the next query, preserving the upper-bound contract.
//!
//! Note the deliberate approximation: [`ZoneMax::range_max`] ignores the `hi`
//! end of the zone and returns `suffix[lo]` — a superset bound. That is the
//! trade this variant makes: O(1) queries, zero update cost, looser pruning.

use crate::zone::ZoneMax;

/// Fraction of stale (decreased) entries that triggers a snapshot rebuild.
const STALENESS_REBUILD_RATIO: f64 = 0.25;

/// Suffix-maximum snapshot over a growable array of values.
#[derive(Debug, Clone, Default)]
pub struct SuffixMax {
    vals: Vec<f64>,
    suffix: Vec<f64>,
    /// Number of decreasing updates since the last rebuild.
    stale: usize,
    /// Set by an increasing update; forces a rebuild before the next query.
    dirty: bool,
}

impl SuffixMax {
    pub fn new() -> Self {
        Self::default()
    }

    fn rebuild_snapshot(&mut self) {
        self.suffix.resize(self.vals.len(), f64::NEG_INFINITY);
        let mut run = f64::NEG_INFINITY;
        for i in (0..self.vals.len()).rev() {
            run = run.max(self.vals[i]);
            self.suffix[i] = run;
        }
        self.stale = 0;
        self.dirty = false;
    }

    fn maybe_rebuild(&mut self) {
        let threshold = (self.vals.len() as f64 * STALENESS_REBUILD_RATIO).max(32.0);
        if self.dirty || self.stale as f64 > threshold {
            self.rebuild_snapshot();
        }
    }

    /// Number of decreasing updates absorbed since the last rebuild
    /// (exposed for the maintenance-cost ablation).
    pub fn staleness(&self) -> usize {
        self.stale
    }
}

impl ZoneMax for SuffixMax {
    fn append(&mut self, u: f64) {
        self.vals.push(u);
        // suffix[] is non-increasing, so the positions whose suffix max must
        // absorb the new value form a tail run; fix it by walking backwards.
        self.suffix.push(u);
        let mut i = self.suffix.len() - 1;
        while i > 0 && self.suffix[i - 1] < u {
            self.suffix[i - 1] = u;
            i -= 1;
        }
    }

    fn update(&mut self, pos: usize, u: f64) {
        let old = self.vals[pos];
        self.vals[pos] = u;
        if u > old {
            // Snapshot may now under-estimate: rebuild before next query.
            if u > self.suffix[pos] {
                self.dirty = true;
            }
        } else if u < old {
            self.stale += 1;
        }
    }

    fn range_max(&mut self, lo: usize, hi: usize) -> f64 {
        self.maybe_rebuild();
        self.range_max_frozen(lo, hi)
    }

    fn range_max_frozen(&self, lo: usize, hi: usize) -> f64 {
        if lo >= self.vals.len() || lo >= hi {
            return f64::NEG_INFINITY;
        }
        if self.dirty {
            // An increasing update left the snapshot under-estimating and a
            // frozen structure cannot repair itself; `+inf` keeps the
            // upper-bound contract (it merely prunes nothing). The doc-path
            // never hits this: freezing runs `prepare_frozen` first.
            return f64::INFINITY;
        }
        // Deliberately ignores `hi`: suffix[lo] >= max(vals[lo..hi]).
        self.suffix[lo]
    }

    fn prepare_frozen(&mut self) {
        // While frozen, `range_max_frozen` cannot lazily rebuild, so the
        // staleness absorbed so far would otherwise be *write-only*: the
        // counter grows with every decreasing update but nothing ever
        // consults it, and the snapshot loosens without bound. Settle both
        // debts now, while we still hold exclusive access.
        self.maybe_rebuild();
    }

    fn global_max(&mut self) -> f64 {
        self.maybe_rebuild();
        self.suffix.first().copied().unwrap_or(f64::NEG_INFINITY)
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn rebuild(&mut self, vals: &[f64]) {
        self.vals = vals.to_vec();
        self.rebuild_snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{ScanZoneMax, ZoneMax};

    /// The contract is "upper bound", so compare with `>=` against the
    /// oracle, plus exactness right after a rebuild.
    #[test]
    fn is_always_an_upper_bound() {
        let mut sm = SuffixMax::new();
        let mut oracle = ScanZoneMax::default();
        let mut state = 7u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..500 {
            if step % 2 == 0 || sm.len() == 0 {
                let v = rng();
                sm.append(v);
                oracle.append(v);
            } else {
                let pos = (rng() * sm.len() as f64) as usize % sm.len();
                // Mix of decreases and increases.
                let v = rng() * if step % 9 == 0 { 2.0 } else { 0.5 };
                sm.update(pos, v);
                oracle.update(pos, v);
            }
            let n = sm.len();
            for (lo, hi) in [(0, n), (n / 2, n), (n / 4, 3 * n / 4 + 1)] {
                let got = sm.range_max(lo, hi);
                let want = oracle.range_max(lo, hi);
                assert!(got >= want, "step {step}: bound {got} < true {want}");
            }
        }
    }

    #[test]
    fn exact_after_rebuild() {
        let vals: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut sm = SuffixMax::new();
        sm.rebuild(&vals);
        for lo in 0..vals.len() {
            let want = vals[lo..].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(sm.range_max(lo, vals.len()), want);
        }
    }

    #[test]
    fn append_fixes_prefix_suffixes() {
        let mut sm = SuffixMax::new();
        sm.append(1.0);
        sm.append(0.5);
        sm.append(7.0); // larger than everything before it
        assert_eq!(sm.range_max(0, 3), 7.0);
        assert_eq!(sm.range_max(1, 3), 7.0);
        assert_eq!(sm.range_max(2, 3), 7.0);
    }

    #[test]
    fn increase_forces_rebuild() {
        let mut sm = SuffixMax::new();
        sm.rebuild(&[1.0, 2.0, 3.0]);
        sm.update(0, 10.0);
        // Must not under-report after an increase.
        assert_eq!(sm.range_max(0, 3), 10.0);
    }

    #[test]
    fn frozen_reads_stay_upper_bounds() {
        let mut sm = SuffixMax::new();
        sm.rebuild(&[1.0, 2.0, 3.0]);
        // Decreases keep the snapshot stale-valid: the frozen read may
        // over-estimate but never under-estimates.
        sm.update(2, 0.5);
        assert_eq!(sm.range_max_frozen(0, 3), 3.0, "stale-high is a valid bound");
        // An increase marks the snapshot dirty; a frozen read that could
        // under-estimate must degrade to +inf, not to a wrong bound.
        sm.update(0, 9.0);
        assert_eq!(sm.range_max_frozen(0, 3), f64::INFINITY);
        // prepare_frozen (run before sharing) settles the debt exactly.
        sm.prepare_frozen();
        assert_eq!(sm.range_max_frozen(0, 3), 9.0);
        assert_eq!(sm.staleness(), 0);
    }

    #[test]
    fn prepare_frozen_resets_accumulated_staleness() {
        // The doc path's frozen reads never run the lazy rebuild, so without
        // prepare_frozen the counter would only ever be written: freezing
        // must consult it and reset it once the rebuild threshold is hit.
        let mut sm = SuffixMax::new();
        let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
        sm.rebuild(&vals);
        for pos in 0..120 {
            sm.update(pos, 0.0);
        }
        assert!(sm.staleness() > 0);
        sm.prepare_frozen();
        assert_eq!(sm.staleness(), 0, "freeze settles the deferred rebuild");
        assert_eq!(sm.range_max_frozen(0, 200), 199.0);
        assert_eq!(sm.range_max_frozen(0, 100), 199.0, "suffix bound still ignores hi");
    }

    #[test]
    fn staleness_counter_and_rebuild() {
        let mut sm = SuffixMax::new();
        let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
        sm.rebuild(&vals);
        for pos in 0..40 {
            sm.update(pos, 0.0);
        }
        assert!(sm.staleness() > 0);
        // Trigger enough staleness for a rebuild (threshold = max(25%, 32)).
        for pos in 40..120 {
            sm.update(pos, 0.0);
        }
        let _ = sm.range_max(0, 10);
        assert_eq!(sm.staleness(), 0, "query rebuilt the snapshot");
        assert_eq!(sm.range_max(0, 200), 199.0);
    }
}
