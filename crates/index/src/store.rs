//! The postings-storage seam: backend selection, the [`PostingsStore`]
//! trait, and the `Lists` table the [`crate::QueryIndex`] actually holds.
//!
//! Three backends, one read/write contract:
//!
//! * [`PostingsStorage::Plain`] — the Vec-backed [`PostingsList`]; the
//!   default, and the layout every result must stay bit-identical to.
//! * [`PostingsStorage::Compressed`] — [`CompressedList`]: sealed
//!   delta + bit-packed blocks (raw f32 weights, so reads are lossless)
//!   with an uncompressed tail; compaction is the re-compression point.
//! * [`PostingsStorage::Paged`] — the compressed layout with sealed blocks
//!   allocated from a byte-budgeted [`ctk_storage::PageManager`] that spills cold
//!   blocks to disk.
//!
//! Backends are dispatched at the *table* level (`Lists` is an enum of
//! homogeneous `Vec`s, readers get a [`ListRef`]), not per list: a
//! per-element enum would cost every backend the size of the fattest
//! variant per list — which, under heavy-tailed term distributions where
//! most lists hold a handful of postings, is exactly the fixed overhead
//! that decides whether compression wins at all.
//!
//! Blocks hold exactly [`ctk_storage::BLOCK_LEN`] postings so they align
//! 1:1 with [`crate::BlockMax`]'s default zones: an `EpochBounds` probe
//! over a frozen zone maps onto one sealed block.

use crate::postings::{Posting, PostingsList};
use ctk_common::QueryId;
use ctk_storage::{CompressedList, PagePin, StoreContext};
use std::path::PathBuf;

// The block codec and the zone structures must agree on the zone size:
// document-mode pruning probes `BlockMax` zones and expects each probe to
// cover exactly one sealed block.
const _: () = assert!(ctk_storage::BLOCK_LEN == crate::block_max::DEFAULT_BLOCK);

/// Which postings layout a [`crate::QueryIndex`] uses (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PostingsStorage {
    /// Uncompressed `Vec`-backed lists and per-query record `Vec`s.
    #[default]
    Plain,
    /// Compressed sealed blocks + packed record arena, all RAM-resident.
    Compressed,
    /// Compressed layout with sealed blocks in a budgeted RAM/disk pager.
    Paged,
}

impl PostingsStorage {
    pub const ALL: [PostingsStorage; 3] =
        [PostingsStorage::Plain, PostingsStorage::Compressed, PostingsStorage::Paged];

    pub fn name(&self) -> &'static str {
        match self {
            PostingsStorage::Plain => "plain",
            PostingsStorage::Compressed => "compressed",
            PostingsStorage::Paged => "paged",
        }
    }
}

impl std::fmt::Display for PostingsStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PostingsStorage {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "plain" => Ok(PostingsStorage::Plain),
            "compressed" => Ok(PostingsStorage::Compressed),
            "paged" => Ok(PostingsStorage::Paged),
            other => Err(format!("unknown storage '{other}' (expected plain|compressed|paged)")),
        }
    }
}

/// Storage selection plus the paged backend's knobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageConfig {
    pub storage: PostingsStorage,
    /// RAM budget for sealed-block payloads under [`PostingsStorage::Paged`];
    /// `0` means [`StorageConfig::DEFAULT_PAGE_BUDGET`].
    pub page_budget_bytes: usize,
    /// Directory for the spill file (default: the system temp directory).
    pub spill_dir: Option<PathBuf>,
}

impl StorageConfig {
    /// 64 MiB — roomy for every benchmark cell; tiny budgets are for tests.
    pub const DEFAULT_PAGE_BUDGET: usize = 64 << 20;

    pub fn new(storage: PostingsStorage) -> Self {
        StorageConfig { storage, ..Self::default() }
    }

    pub fn plain() -> Self {
        Self::default()
    }

    /// The effective page budget (resolving the `0` default).
    pub fn page_budget(&self) -> usize {
        if self.page_budget_bytes == 0 {
            Self::DEFAULT_PAGE_BUDGET
        } else {
            self.page_budget_bytes
        }
    }
}

/// Point-in-time storage counters, surfaced on the server's `/stats` and in
/// the bench reports. Page counters are zero for unpaged storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Estimated heap bytes held by the index (lists + records + tables);
    /// for paged storage, spilled payloads are excluded — that is the point.
    pub index_bytes: u64,
    /// Sealed-block pages currently RAM-resident.
    pub hot_pages: u64,
    /// Sealed-block pages currently on disk only.
    pub cold_pages: u64,
    /// Reads that had to fault a page back from the spill file.
    pub page_faults: u64,
}

impl StorageStats {
    /// Fold another index's counters into this one (sharded aggregation).
    pub fn merge(&mut self, other: &StorageStats) {
        self.index_bytes += other.index_bytes;
        self.hot_pages += other.hot_pages;
        self.cold_pages += other.cold_pages;
        self.page_faults += other.page_faults;
    }
}

/// The contract every postings backend satisfies — the seam the engines
/// read through. Semantics (and the tests pinning them) come from
/// [`PostingsList`]: ID-ordered slots with stable positions, tombstones as
/// zero-weight slots that keep their query id, `seek` as "first position
/// `>= from` with id `>= target`". Mutations take the index's shared
/// [`StoreContext`] (codec + pager) so lists themselves stay policy-free.
pub trait PostingsStore {
    /// Slots, including tombstones.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tombstoned slots.
    fn tombstones(&self) -> usize;

    /// Live postings.
    fn live(&self) -> usize;

    /// The slot at `pos` (tombstones read as weight `0.0`).
    fn get(&self, pos: usize) -> Posting;

    /// Append a live posting; `qid` must exceed every id present.
    fn push(&mut self, qid: QueryId, weight: f32, cx: &StoreContext);

    /// Tombstone the slot at `pos` (idempotent; position stays valid).
    fn tombstone(&mut self, pos: usize);

    /// Position of `qid` (live or tombstoned), if present.
    fn position_of(&self, qid: QueryId) -> Option<usize>;

    /// First position `>= from` with id `>= target`, or `len()`.
    fn seek(&self, from: usize, target: QueryId) -> usize;

    /// First **live** position `>= from` with id `>= target`, or `len()`.
    fn seek_live(&self, from: usize, target: QueryId) -> usize;

    /// Visit every slot in position order (tombstones as zero weights).
    fn for_each_slot(&self, f: &mut dyn FnMut(QueryId, f32));

    /// Visit every live posting in position order.
    fn for_each_live(&self, f: &mut dyn FnMut(QueryId, f32));

    /// Drop tombstones, appending survivors to `out` in order; positions
    /// restart from zero afterwards (callers refresh their cached ones).
    fn compact(&mut self, out: &mut Vec<Posting>, cx: &StoreContext);

    /// RAM bytes owned by this list, excluding `size_of::<Self>()` (the
    /// containing table accounts for its slots).
    fn heap_bytes(&self) -> usize;
}

impl PostingsStore for PostingsList {
    fn len(&self) -> usize {
        PostingsList::len(self)
    }

    fn tombstones(&self) -> usize {
        PostingsList::tombstones(self)
    }

    fn live(&self) -> usize {
        PostingsList::live(self)
    }

    fn get(&self, pos: usize) -> Posting {
        PostingsList::get(self, pos)
    }

    fn push(&mut self, qid: QueryId, weight: f32, _cx: &StoreContext) {
        PostingsList::push(self, qid, weight)
    }

    fn tombstone(&mut self, pos: usize) {
        PostingsList::tombstone(self, pos)
    }

    fn position_of(&self, qid: QueryId) -> Option<usize> {
        PostingsList::position_of(self, qid)
    }

    fn seek(&self, from: usize, target: QueryId) -> usize {
        PostingsList::seek(self, from, target)
    }

    fn seek_live(&self, from: usize, target: QueryId) -> usize {
        PostingsList::seek_live(self, from, target)
    }

    fn for_each_slot(&self, f: &mut dyn FnMut(QueryId, f32)) {
        for p in self.as_slice() {
            f(p.qid, p.weight);
        }
    }

    fn for_each_live(&self, f: &mut dyn FnMut(QueryId, f32)) {
        for p in self.iter_live() {
            f(p.qid, p.weight);
        }
    }

    fn compact(&mut self, out: &mut Vec<Posting>, _cx: &StoreContext) {
        out.extend_from_slice(PostingsList::compact(self));
    }

    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<Posting>()
    }
}

impl PostingsStore for CompressedList {
    fn len(&self) -> usize {
        CompressedList::len(self)
    }

    fn tombstones(&self) -> usize {
        CompressedList::tombstones(self)
    }

    fn live(&self) -> usize {
        CompressedList::live(self)
    }

    fn get(&self, pos: usize) -> Posting {
        let (qid, weight) = CompressedList::get(self, pos);
        Posting { qid: QueryId(qid), weight }
    }

    fn push(&mut self, qid: QueryId, weight: f32, cx: &StoreContext) {
        CompressedList::push(self, qid.0, weight, cx)
    }

    fn tombstone(&mut self, pos: usize) {
        CompressedList::tombstone(self, pos)
    }

    fn position_of(&self, qid: QueryId) -> Option<usize> {
        CompressedList::position_of(self, qid.0)
    }

    fn seek(&self, from: usize, target: QueryId) -> usize {
        CompressedList::seek(self, from, target.0)
    }

    fn seek_live(&self, from: usize, target: QueryId) -> usize {
        CompressedList::seek_live(self, from, target.0)
    }

    fn for_each_slot(&self, f: &mut dyn FnMut(QueryId, f32)) {
        CompressedList::for_each_slot(self, |q, w| f(QueryId(q), w));
    }

    fn for_each_live(&self, f: &mut dyn FnMut(QueryId, f32)) {
        CompressedList::for_each_live(self, |q, w| f(QueryId(q), w));
    }

    fn compact(&mut self, out: &mut Vec<Posting>, cx: &StoreContext) {
        let mut raw = Vec::new();
        self.compact_into(&mut raw, cx);
        out.extend(raw.into_iter().map(|(q, w)| Posting { qid: QueryId(q), weight: w }));
    }

    fn heap_bytes(&self) -> usize {
        CompressedList::heap_bytes(self)
    }
}

/// Borrowed view of one postings list under whichever backend the index
/// was built with. Statically dispatched (an enum of references, not a
/// `dyn` pointer) so the plain path stays exactly as cheap as before the
/// seam existed.
#[derive(Clone, Copy)]
pub enum ListRef<'a> {
    Plain(&'a PostingsList),
    Compressed(&'a CompressedList),
}

macro_rules! dispatch_ref {
    ($self:expr, $list:ident => $body:expr) => {
        match $self {
            ListRef::Plain($list) => $body,
            ListRef::Compressed($list) => $body,
        }
    };
}

impl ListRef<'_> {
    /// Slots, including tombstones.
    #[inline]
    pub fn len(&self) -> usize {
        dispatch_ref!(self, l => PostingsStore::len(*l))
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tombstoned slots.
    #[inline]
    pub fn tombstones(&self) -> usize {
        dispatch_ref!(self, l => PostingsStore::tombstones(*l))
    }

    /// Live postings.
    #[inline]
    pub fn live(&self) -> usize {
        dispatch_ref!(self, l => PostingsStore::live(*l))
    }

    /// The slot at `pos` (tombstones read as weight `0.0`).
    #[inline]
    pub fn get(&self, pos: usize) -> Posting {
        dispatch_ref!(self, l => PostingsStore::get(*l, pos))
    }

    /// Position of `qid` (live or tombstoned), if present.
    #[inline]
    pub fn position_of(&self, qid: QueryId) -> Option<usize> {
        dispatch_ref!(self, l => PostingsStore::position_of(*l, qid))
    }

    /// First position `>= from` with id `>= target`, or `len()`.
    #[inline]
    pub fn seek(&self, from: usize, target: QueryId) -> usize {
        dispatch_ref!(self, l => PostingsStore::seek(*l, from, target))
    }

    /// First live position `>= from` with id `>= target`, or `len()`.
    #[inline]
    pub fn seek_live(&self, from: usize, target: QueryId) -> usize {
        dispatch_ref!(self, l => PostingsStore::seek_live(*l, from, target))
    }

    /// Visit every slot in position order (tombstones as zero weights).
    pub fn for_each_slot(&self, mut f: impl FnMut(QueryId, f32)) {
        dispatch_ref!(self, l => PostingsStore::for_each_slot(*l, &mut f))
    }

    /// Visit every live posting in position order.
    pub fn for_each_live(&self, mut f: impl FnMut(QueryId, f32)) {
        dispatch_ref!(self, l => PostingsStore::for_each_live(*l, &mut f))
    }
}

/// The index's list table: one homogeneous `Vec` per backend, so each
/// backend pays its own per-list footprint and nothing more.
#[derive(Debug, Clone)]
pub(crate) enum Lists {
    Plain(Vec<PostingsList>),
    Compressed(Vec<CompressedList>),
}

/// Growth step, in lists, of the compressed table. The plain table keeps
/// `Vec`'s doubling (the historical layout); the compressed backends grow
/// in exact chunks instead — at hundreds of thousands of lists, doubling
/// slack on the table itself would rival the postings it holds.
const LISTS_CHUNK: usize = 1024;

impl Lists {
    pub(crate) fn new(storage: PostingsStorage) -> Lists {
        match storage {
            PostingsStorage::Plain => Lists::Plain(Vec::new()),
            _ => Lists::Compressed(Vec::new()),
        }
    }

    /// Number of lists.
    pub(crate) fn len(&self) -> usize {
        match self {
            Lists::Plain(v) => v.len(),
            Lists::Compressed(v) => v.len(),
        }
    }

    /// Append a fresh empty list.
    pub(crate) fn push_list(&mut self) {
        match self {
            Lists::Plain(v) => v.push(PostingsList::new()),
            Lists::Compressed(v) => {
                if v.len() == v.capacity() {
                    v.reserve_exact(LISTS_CHUNK);
                }
                v.push(CompressedList::new());
            }
        }
    }

    /// Borrow list `idx` for reading.
    #[inline]
    pub(crate) fn get(&self, idx: u32) -> ListRef<'_> {
        match self {
            Lists::Plain(v) => ListRef::Plain(&v[idx as usize]),
            Lists::Compressed(v) => ListRef::Compressed(&v[idx as usize]),
        }
    }

    /// Append a live posting to list `idx`.
    #[inline]
    pub(crate) fn push_posting(&mut self, idx: u32, qid: QueryId, weight: f32, cx: &StoreContext) {
        match self {
            Lists::Plain(v) => v[idx as usize].push(qid, weight),
            Lists::Compressed(v) => v[idx as usize].push(qid.0, weight, cx),
        }
    }

    /// Tombstone slot `pos` of list `idx`.
    #[inline]
    pub(crate) fn tombstone(&mut self, idx: u32, pos: usize) {
        match self {
            Lists::Plain(v) => v[idx as usize].tombstone(pos),
            Lists::Compressed(v) => v[idx as usize].tombstone(pos),
        }
    }

    /// Compact list `idx`, appending survivors to `out`.
    pub(crate) fn compact_list(&mut self, idx: u32, out: &mut Vec<Posting>, cx: &StoreContext) {
        match self {
            Lists::Plain(v) => PostingsStore::compact(&mut v[idx as usize], out, cx),
            Lists::Compressed(v) => PostingsStore::compact(&mut v[idx as usize], out, cx),
        }
    }

    /// RAM bytes of the table and every list it holds: the backing array
    /// is counted at capacity times the *actual* per-list element size —
    /// the accounting the per-element-enum design would have made
    /// impossible to keep honest.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Lists::Plain(v) => {
                v.capacity() * std::mem::size_of::<PostingsList>()
                    + v.iter().map(PostingsStore::heap_bytes).sum::<usize>()
            }
            Lists::Compressed(v) => {
                v.capacity() * std::mem::size_of::<CompressedList>()
                    + v.iter().map(PostingsStore::heap_bytes).sum::<usize>()
            }
        }
    }

    /// Pin every RAM-resident page of every list (no-op unless paged).
    pub(crate) fn collect_resident_pins(&self, out: &mut Vec<PagePin>) {
        if let Lists::Compressed(v) = self {
            for l in v {
                l.collect_resident_pins(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_round_trips_through_strings() {
        for s in PostingsStorage::ALL {
            assert_eq!(s.name().parse::<PostingsStorage>().unwrap(), s);
        }
        assert!("mmap".parse::<PostingsStorage>().is_err());
    }

    /// Both backends satisfy the same `PostingsStore` contract on the same
    /// operation sequence.
    #[test]
    fn backends_agree_through_the_trait() {
        let cx = StoreContext::raw();
        let mut plain = PostingsList::new();
        let mut comp = CompressedList::new();
        {
            let both: [&mut dyn PostingsStore; 2] = [&mut plain, &mut comp];
            for l in both {
                for i in 0..200u32 {
                    l.push(QueryId(i * 3), 0.25 + i as f32, &cx);
                }
                for p in (0..200).step_by(7) {
                    l.tombstone(p);
                }
            }
        }
        let (plain, comp): (&dyn PostingsStore, &dyn PostingsStore) = (&plain, &comp);
        assert_eq!(plain.len(), comp.len());
        assert_eq!(plain.live(), comp.live());
        for pos in 0..plain.len() {
            assert_eq!(plain.get(pos), comp.get(pos));
        }
        for from in 0..plain.len() {
            for t in [0u32, 100, 300, 700] {
                assert_eq!(plain.seek(from, QueryId(t)), comp.seek(from, QueryId(t)));
                assert_eq!(plain.seek_live(from, QueryId(t)), comp.seek_live(from, QueryId(t)));
            }
        }
    }

    /// The table-level dispatch exists to keep per-backend footprints
    /// independent: a plain slot must stay the size of a bare
    /// `PostingsList`, not of the fattest backend.
    #[test]
    fn table_slots_cost_their_own_backend_only() {
        let mut plain = Lists::new(PostingsStorage::Plain);
        let mut comp = Lists::new(PostingsStorage::Compressed);
        for _ in 0..100 {
            plain.push_list();
            comp.push_list();
        }
        let plain_cap = match &plain {
            Lists::Plain(v) => v.capacity(),
            _ => unreachable!(),
        };
        let comp_cap = match &comp {
            Lists::Compressed(v) => v.capacity(),
            _ => unreachable!(),
        };
        assert_eq!(plain.heap_bytes(), plain_cap * std::mem::size_of::<PostingsList>());
        assert_eq!(comp.heap_bytes(), comp_cap * std::mem::size_of::<CompressedList>());
        assert_eq!(comp_cap, LISTS_CHUNK, "compressed table grows in exact chunks");
    }
}
