//! Exact list maxima under lazy maintenance: a versioned max-heap.
//!
//! RIO's global bound (paper Eq. 2) needs `max_q w_t(q)/S_k(q)` per list,
//! and TPS needs a global `max_q 1/S_k(q)`. These maxima *decrease* whenever
//! a query's `S_k` grows, which a plain running max cannot track. The
//! versioned heap makes every update a push; entries carry the version of
//! the query's threshold at push time, and stale tops are popped lazily at
//! peek. Amortized O(log n) per update, O(1)+pops per peek, and the heap
//! self-compacts when stale entries pile up.

use ctk_common::{OrdF64, QueryId};
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    value: OrdF64,
    qid: QueryId,
    version: u32,
}

/// Lazy exact maximum over `(qid, value)` pairs with external versioning.
#[derive(Debug, Default)]
pub struct VersionedMaxTracker {
    heap: BinaryHeap<HeapEntry>,
    /// Heap size right after the last compaction; when the heap grows past
    /// a multiple of this, we compact.
    baseline: usize,
}

impl VersionedMaxTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `qid`'s tracked value is now `value`, at `version`.
    /// Older entries for the same query become stale automatically.
    pub fn push(&mut self, qid: QueryId, version: u32, value: f64) {
        self.heap.push(HeapEntry { value: OrdF64::new(value), qid, version });
    }

    /// Current maximum over entries whose `(qid, version)` is still current
    /// according to `is_current`. Returns `-inf` when empty.
    pub fn peek_max(&mut self, mut is_current: impl FnMut(QueryId, u32) -> bool) -> f64 {
        while let Some(top) = self.heap.peek() {
            if is_current(top.qid, top.version) {
                return top.value.get();
            }
            self.heap.pop();
        }
        f64::NEG_INFINITY
    }

    /// Number of heap entries, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop stale entries when the heap has grown well past the live set.
    /// Call opportunistically (e.g. once per stream event batch).
    pub fn maybe_compact(&mut self, mut is_current: impl FnMut(QueryId, u32) -> bool) {
        if self.heap.len() < 64 || self.heap.len() < 4 * self.baseline.max(16) {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let live: Vec<HeapEntry> =
            entries.into_iter().filter(|e| is_current(e.qid, e.version)).collect();
        self.heap = BinaryHeap::from(live);
        self.baseline = self.heap.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctk_common::FxHashMap;

    /// Shared helper: a map qid -> (version, value) acts as ground truth.
    struct Truth {
        map: FxHashMap<QueryId, (u32, f64)>,
    }

    impl Truth {
        fn new() -> Self {
            Truth { map: FxHashMap::default() }
        }
        fn set(&mut self, t: &mut VersionedMaxTracker, qid: QueryId, value: f64) {
            let e = self.map.entry(qid).or_insert((0, f64::NEG_INFINITY));
            e.0 += 1;
            e.1 = value;
            t.push(qid, e.0, value);
        }
        fn max(&self) -> f64 {
            self.map.values().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
        }
        fn checker(&self) -> impl FnMut(QueryId, u32) -> bool + '_ {
            |qid, ver| self.map.get(&qid).is_some_and(|&(v, _)| v == ver)
        }
    }

    #[test]
    fn tracks_decreasing_values() {
        let mut t = VersionedMaxTracker::new();
        let mut truth = Truth::new();
        truth.set(&mut t, QueryId(1), 10.0);
        truth.set(&mut t, QueryId(2), 5.0);
        assert_eq!(t.peek_max(truth.checker()), 10.0);
        truth.set(&mut t, QueryId(1), 1.0); // the max shrinks
        assert_eq!(t.peek_max(truth.checker()), 5.0);
        truth.set(&mut t, QueryId(2), 0.5);
        assert_eq!(t.peek_max(truth.checker()), 1.0);
    }

    #[test]
    fn empty_is_neg_inf() {
        let mut t = VersionedMaxTracker::new();
        assert_eq!(t.peek_max(|_, _| true), f64::NEG_INFINITY);
    }

    #[test]
    fn randomized_against_truth() {
        let mut t = VersionedMaxTracker::new();
        let mut truth = Truth::new();
        let mut state = 3u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..2000 {
            let qid = QueryId((rng() % 50) as u32);
            let val = (rng() % 1000) as f64 / 10.0;
            truth.set(&mut t, qid, val);
            assert_eq!(t.peek_max(truth.checker()), truth.max());
        }
    }

    #[test]
    fn compaction_bounds_memory() {
        let mut t = VersionedMaxTracker::new();
        let mut truth = Truth::new();
        for round in 0..200 {
            for q in 0..20u32 {
                truth.set(&mut t, QueryId(q), (round * 20 + q) as f64 * 0.001);
            }
            t.maybe_compact(truth.checker());
        }
        assert!(t.len() < 1000, "heap should stay near the live set size, got {}", t.len());
        assert_eq!(t.peek_max(truth.checker()), truth.max());
    }

    #[test]
    fn removed_queries_disappear() {
        let mut t = VersionedMaxTracker::new();
        let mut truth = Truth::new();
        truth.set(&mut t, QueryId(1), 42.0);
        truth.set(&mut t, QueryId(2), 7.0);
        truth.map.remove(&QueryId(1)); // unregistered: no version is current
        assert_eq!(t.peek_max(truth.checker()), 7.0);
    }
}
