//! Exact zone maxima via an iterative range-max segment tree.
//!
//! This is the "exact" implementation of MRIO's `UB*` (DESIGN.md §2): point
//! updates and range queries are both O(log n), and appends are amortized
//! O(log n) (capacity doubles like a `Vec`). Tombstones are point updates to
//! `-inf`, so they never contribute to a zone bound.

use crate::zone::ZoneMax;

/// Iterative segment tree over `len` values with range-max queries.
#[derive(Debug, Clone)]
pub struct MaxSegTree {
    /// `tree[cap..cap+len]` are the leaves; internal node `i` covers
    /// `2i`/`2i+1`. Unused slots hold `-inf`.
    tree: Vec<f64>,
    cap: usize,
    len: usize,
}

impl Default for MaxSegTree {
    fn default() -> Self {
        MaxSegTree { tree: vec![f64::NEG_INFINITY; 2], cap: 1, len: 0 }
    }
}

impl MaxSegTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from existing values.
    pub fn from_values(vals: &[f64]) -> Self {
        let mut t = MaxSegTree::new();
        t.rebuild(vals);
        t
    }

    fn grow_to(&mut self, min_cap: usize) {
        let mut cap = self.cap;
        while cap < min_cap {
            cap *= 2;
        }
        if cap == self.cap {
            return;
        }
        let mut tree = vec![f64::NEG_INFINITY; 2 * cap];
        tree[cap..cap + self.len].copy_from_slice(&self.tree[self.cap..self.cap + self.len]);
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        self.tree = tree;
        self.cap = cap;
    }
}

impl ZoneMax for MaxSegTree {
    fn append(&mut self, u: f64) {
        if self.len == self.cap {
            self.grow_to(self.cap * 2);
        }
        let pos = self.len;
        self.len += 1;
        self.update(pos, u);
    }

    fn update(&mut self, pos: usize, u: f64) {
        assert!(pos < self.len, "segment tree update out of bounds");
        let mut i = self.cap + pos;
        self.tree[i] = u;
        i /= 2;
        while i >= 1 {
            let m = self.tree[2 * i].max(self.tree[2 * i + 1]);
            if self.tree[i] == m {
                break; // ancestors unchanged
            }
            self.tree[i] = m;
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    fn range_max(&mut self, lo: usize, hi: usize) -> f64 {
        self.range_max_frozen(lo, hi)
    }

    fn range_max_frozen(&self, lo: usize, hi: usize) -> f64 {
        let (lo, hi) = (lo.min(self.len), hi.min(self.len));
        if lo >= hi {
            return f64::NEG_INFINITY;
        }
        let mut best = f64::NEG_INFINITY;
        let (mut l, mut r) = (self.cap + lo, self.cap + hi);
        while l < r {
            if l & 1 == 1 {
                best = best.max(self.tree[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                best = best.max(self.tree[r]);
            }
            l /= 2;
            r /= 2;
        }
        best
    }

    fn global_max(&mut self) -> f64 {
        if self.len == 0 {
            f64::NEG_INFINITY
        } else {
            self.tree[1]
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn rebuild(&mut self, vals: &[f64]) {
        let cap = vals.len().next_power_of_two().max(1);
        let mut tree = vec![f64::NEG_INFINITY; 2 * cap];
        tree[cap..cap + vals.len()].copy_from_slice(vals);
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        self.tree = tree;
        self.cap = cap;
        self.len = vals.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{ScanZoneMax, ZoneMax};

    #[test]
    fn matches_reference_on_static_data() {
        let vals: Vec<f64> = (0..37).map(|i| ((i * 7919) % 101) as f64).collect();
        let mut tree = MaxSegTree::from_values(&vals);
        let mut oracle = ScanZoneMax::default();
        oracle.rebuild(&vals);
        for lo in 0..=vals.len() {
            for hi in lo..=vals.len() {
                assert_eq!(tree.range_max(lo, hi), oracle.range_max(lo, hi), "[{lo},{hi})");
            }
        }
        assert_eq!(tree.global_max(), oracle.global_max());
    }

    #[test]
    fn append_and_update_stay_consistent() {
        let mut tree = MaxSegTree::new();
        let mut oracle = ScanZoneMax::default();
        let mut state = 1u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..500 {
            if step % 3 == 0 || tree.len() == 0 {
                let v = rng();
                tree.append(v);
                oracle.append(v);
            } else {
                let pos = (rng() * tree.len() as f64) as usize % tree.len();
                let v = if step % 7 == 0 { f64::NEG_INFINITY } else { rng() };
                tree.update(pos, v);
                oracle.update(pos, v);
            }
            let n = tree.len();
            let lo = step % (n + 1);
            let hi = (lo + step * 3 / 2) % (n + 1);
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            assert_eq!(tree.range_max(lo, hi), oracle.range_max(lo, hi));
            assert_eq!(tree.global_max(), oracle.global_max());
        }
    }

    #[test]
    fn infinity_sentinel_is_propagated() {
        let mut tree = MaxSegTree::from_values(&[1.0, 2.0, 3.0]);
        tree.update(1, f64::INFINITY);
        assert_eq!(tree.global_max(), f64::INFINITY);
        assert_eq!(tree.range_max(0, 1), 1.0);
        tree.update(1, 0.5);
        assert_eq!(tree.global_max(), 3.0);
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut tree = MaxSegTree::new();
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.global_max(), f64::NEG_INFINITY);
        assert_eq!(tree.range_max(0, 5), f64::NEG_INFINITY);
    }
}
