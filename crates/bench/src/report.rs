//! Result tables and file emission.
//!
//! Every binary prints a markdown table mirroring the paper's figure series
//! and drops machine-readable CSV/JSON next to it under `results/`.

use crate::runner::RunResult;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-oriented table: one row per sweep point, one column per
/// algorithm.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub row_label: String,
    pub columns: Vec<String>,
    pub rows: Vec<(String, Vec<f64>)>,
    pub unit: String,
}

impl Table {
    pub fn new(title: &str, row_label: &str, columns: &[&str], unit: &str) -> Self {
        Table {
            title: title.to_string(),
            row_label: row_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            unit: unit.to_string(),
        }
    }

    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} ({})\n", self.title, self.unit);
        let _ = write!(out, "| {} |", self.row_label);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "| {label} |");
            for v in vals {
                let _ = write!(out, " {} |", format_sig(*v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.row_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Format with ~4 significant digits, keeping small values readable.
pub fn format_sig(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Write CSV to `results/<name>.csv` (directory created if needed).
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Write full run results as JSON to `results/<name>.json`.
pub fn write_json(name: &str, results: &[RunResult]) -> std::io::Result<std::path::PathBuf> {
    write_json_report(name, &results)
}

/// Write any serializable report as JSON to `results/<name>.json` —
/// the machine-readable side channel every bench binary emits so CI can
/// archive throughput numbers as build artifacts.
pub fn write_json_report<T: serde::Serialize>(
    name: &str,
    report: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(report)?)?;
    Ok(path)
}

/// Schema version of the `sweep_shards` report format.
///
/// * **v5** (current): cells carry a `batching` axis (`"fixed"` /
///   `"adaptive"`) — `--adaptive` sweeps an AIMD-chunked ingestion cell
///   next to the fixed-window ones (`batch` is 0 for adaptive cells: the
///   controller, not the flag, chooses the chunk).
/// * **v4**: cells carry a `storage` axis (`"plain"` /
///   `"compressed"` / `"paged"`) plus the memory-footprint counters
///   `index_bytes` and `bytes_per_query`; the report records the swept
///   `storage_modes` and the pager budget.
/// * **v3**: cells carry a `queries` axis (the sweep runs at
///   several query populations) plus the doc-mode walk's skip counters;
///   the single-threaded reference becomes per-population (`singles`).
/// * **v2**: `schema_version` tag; cells carry a `mode` axis (`"query"` /
///   `"doc"`) alongside `shards × batch`; one query population
///   (`num_queries`) and one `single_docs_per_sec` per report.
/// * **v1**: untagged (no `schema_version` field), query mode only.
///
/// The writer refuses to overwrite a report tagged with a version it does
/// not recognize (see [`existing_report_schema`]), so a future format never
/// gets silently clobbered by an old binary. The `compare_reports` gate
/// still *reads* v2, v3 and v4 baselines (a v2 report is a v3 report with
/// one population cell; a v3 report is a v4 report whose cells all ran
/// plain storage; a v4 report is a v5 report whose cells all ran fixed
/// batching).
pub const SWEEP_SHARDS_SCHEMA_VERSION: u32 = 5;

/// The `schema_version` of an existing `results/<name>.json` report:
/// `None` when the file does not exist, `Some(1)` for pre-versioned
/// (untagged) reports, `Some(v)` for tagged ones. Writers compare this
/// against the versions they understand before overwriting.
pub fn existing_report_schema(name: &str) -> std::io::Result<Option<u32>> {
    let path = Path::new("results").join(format!("{name}.json"));
    let contents = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    #[derive(serde::Deserialize)]
    struct Probe {
        schema_version: u32,
    }
    // Untagged (or unparseable) files predate versioning: treat as v1.
    Ok(Some(serde_json::from_str::<Probe>(&contents).map(|p| p.schema_version).unwrap_or(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("Fig 1(a)", "queries", &["RTA", "MRIO"], "ms");
        t.push_row("25000", vec![1.5, 0.1]);
        t.push_row("50000", vec![3.2, 0.22]);
        let md = t.to_markdown();
        assert!(md.contains("| queries | RTA | MRIO |"));
        assert!(md.contains("| 25000 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("queries,RTA,MRIO\n"));
        assert!(csv.contains("50000,3.2,0.22"));
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(format_sig(1234.5), "1234"); // round-half-even
        assert_eq!(format_sig(12.34), "12.3");
        assert_eq!(format_sig(0.5), "0.500");
        assert_eq!(format_sig(0.01234), "0.01234");
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new("x", "r", &["a", "b"], "ms");
        t.push_row("1", vec![1.0]);
    }

    #[test]
    fn report_schema_probe_reads_tagged_untagged_and_absent() {
        assert_eq!(existing_report_schema("no_such_report_ever").unwrap(), None);

        let dir = Path::new("results");
        std::fs::create_dir_all(dir).unwrap();
        let name = "schema_probe_test";
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, r#"{"cells": []}"#).unwrap();
        assert_eq!(existing_report_schema(name).unwrap(), Some(1), "untagged reads as v1");
        std::fs::write(&path, r#"{"schema_version": 7, "cells": []}"#).unwrap();
        assert_eq!(existing_report_schema(name).unwrap(), Some(7));
        std::fs::remove_file(&path).unwrap();
    }
}
