//! Experiment configuration.
//!
//! Defaults reproduce the paper's setup scaled to a laptop (DESIGN.md §3):
//! Wikipedia-like topical corpus, k = 10, λ = 1e-3, query counts swept over
//! a 16× range. `Scale::Full` switches to the paper's 0.5M–4M sweep.

use ctk_stream::{CorpusConfig, QueryWorkload, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Sweep magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Laptop scale: 25k–400k queries (default).
    Laptop,
    /// Paper scale: 0.5M–4M queries (needs ~10 GB and patience).
    Full,
    /// Tiny scale for smoke tests and CI.
    Smoke,
}

impl Scale {
    /// The query-count sweep of Figure 1 at this scale.
    pub fn query_counts(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![2_000, 4_000],
            Scale::Laptop => vec![25_000, 50_000, 100_000, 200_000],
            Scale::Full => vec![500_000, 1_000_000, 2_000_000, 4_000_000],
        }
    }

    pub fn warmup_events(self) -> usize {
        match self {
            Scale::Smoke => 300,
            Scale::Laptop => 1_500,
            Scale::Full => 3_000,
        }
    }

    pub fn measured_events(self) -> usize {
        match self {
            Scale::Smoke => 100,
            Scale::Laptop => 300,
            Scale::Full => 200,
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "laptop" => Some(Scale::Laptop),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// One experiment cell: a corpus, a query workload, and stream sizes.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub corpus: CorpusConfig,
    pub workload: WorkloadConfig,
    pub num_queries: usize,
    pub warmup_events: usize,
    pub measured_events: usize,
    /// Decay parameter shared by all engines.
    pub lambda: f64,
    /// Emulate a long-running deployment by seeding every query's top-k
    /// with its best score over a pre-stream sample (DESIGN.md §3): the
    /// paper measures after streaming millions of documents, where result
    /// churn per event is tiny and thresholds are tight. 0 disables.
    pub steady_state_sample: usize,
}

impl ExperimentConfig {
    /// The paper's Figure-1 configuration for one sweep point.
    pub fn fig1(workload: QueryWorkload, num_queries: usize, scale: Scale) -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::default(),
            workload: WorkloadConfig { workload, ..WorkloadConfig::default() },
            num_queries,
            warmup_events: scale.warmup_events(),
            measured_events: scale.measured_events(),
            lambda: 1e-4,
            steady_state_sample: 1_500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_sweep() {
        assert_eq!(Scale::parse("laptop"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Full.query_counts(), vec![500_000, 1_000_000, 2_000_000, 4_000_000]);
        assert!(Scale::Smoke.warmup_events() < Scale::Laptop.warmup_events());
    }

    #[test]
    fn fig1_defaults_match_paper_setup() {
        let c = ExperimentConfig::fig1(QueryWorkload::Uniform, 1000, Scale::Smoke);
        assert_eq!(c.workload.k, 10);
        assert_eq!(c.lambda, 1e-4);
        assert_eq!(c.num_queries, 1000);
    }
}
