//! CI perf-regression gate over `sweep_shards` reports.
//!
//! ```text
//! cargo run -p ctk-bench --release --bin compare_reports -- \
//!     --baseline results/sweep_shards_baseline.json \
//!     --current  results/sweep_shards.json \
//!     [--tolerance 0.30] [--absolute]
//! ```
//!
//! Joins the two reports on `(mode, shards, batch)` and fails (exit 1)
//! when any cell's throughput dropped by more than `tolerance` (default
//! 30%) versus the baseline. By default the compared metric is the
//! **normalized** throughput `docs_per_sec / single_docs_per_sec` of each
//! report — CI runners and developer machines differ wildly in absolute
//! speed, but each report carries its own single-threaded reference
//! measured in the same process on the same workload, so the ratio is the
//! noise-tolerant signal: it regresses only when the *sharded path itself*
//! got slower relative to the engine. `--absolute` switches to raw
//! docs/sec (useful when baseline and current come from the same machine).
//!
//! Exit codes: `0` pass, `1` regression, `2` unusable input (missing file,
//! unrecognized schema version, or reports measured under different
//! workload configurations — those deltas would be meaningless).

use ctk_bench::report::format_sig;
use ctk_bench::SWEEP_SHARDS_SCHEMA_VERSION;
use serde::Deserialize;

#[derive(Deserialize)]
struct Cell {
    mode: String,
    shards: usize,
    batch: usize,
    docs_per_sec: f64,
}

#[derive(Deserialize)]
struct Report {
    schema_version: u32,
    num_queries: usize,
    measured_docs: usize,
    window: usize,
    single_docs_per_sec: f64,
    cells: Vec<Cell>,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("compare_reports: {msg}");
    eprintln!(
        "usage: compare_reports --baseline <report.json> --current <report.json> \
         [--tolerance 0.30] [--absolute]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Report {
    let contents = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_exit(&format!("cannot read {path}: {e}")));
    let report: Report = serde_json::from_str(&contents)
        .unwrap_or_else(|e| usage_exit(&format!("{path} is not a sweep_shards report: {e}")));
    if report.schema_version != SWEEP_SHARDS_SCHEMA_VERSION {
        usage_exit(&format!(
            "{path} has schema_version {} (this gate understands {}); \
             regenerate it with the current sweep_shards binary",
            report.schema_version, SWEEP_SHARDS_SCHEMA_VERSION
        ));
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| usage_exit("--baseline is required"));
    let current_path =
        arg_value(&args, "--current").unwrap_or_else(|| usage_exit("--current is required"));
    let tolerance: f64 = match arg_value(&args, "--tolerance") {
        None => 0.30,
        Some(s) => match s.parse() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => usage_exit("--tolerance must be a fraction in [0, 1)"),
        },
    };
    let absolute = args.iter().any(|a| a == "--absolute");

    let base = load(&baseline_path);
    let cur = load(&current_path);

    // Deltas are only meaningful at equal workload configuration.
    let base_cfg = (base.num_queries, base.measured_docs, base.window);
    let cur_cfg = (cur.num_queries, cur.measured_docs, cur.window);
    if base_cfg != cur_cfg {
        usage_exit(&format!(
            "workload configs differ: baseline (queries, docs, window) = {base_cfg:?}, \
             current = {cur_cfg:?}; regenerate the baseline at the gate's configuration"
        ));
    }

    let metric = |report: &Report, cell: &Cell| {
        if absolute {
            cell.docs_per_sec
        } else {
            cell.docs_per_sec / report.single_docs_per_sec
        }
    };
    let metric_name = if absolute { "docs/sec" } else { "docs/sec vs single" };

    println!("### Perf gate: {metric_name}, tolerance -{:.0}%\n", tolerance * 100.0);
    println!("| mode | shards | batch | baseline | current | delta | status |");
    println!("|---|---|---|---|---|---|---|");
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for bc in &base.cells {
        let Some(cc) = cur
            .cells
            .iter()
            .find(|c| c.mode == bc.mode && c.shards == bc.shards && c.batch == bc.batch)
        else {
            println!("| {} | {} | {} | — | — | — | MISSING |", bc.mode, bc.shards, bc.batch);
            missing += 1;
            continue;
        };
        let (b, c) = (metric(&base, bc), metric(&cur, cc));
        let delta = c / b - 1.0;
        let regressed = delta < -tolerance;
        if regressed {
            regressions += 1;
        }
        println!(
            "| {} | {} | {} | {} | {} | {:+.1}% | {} |",
            bc.mode,
            bc.shards,
            bc.batch,
            format_sig(b),
            format_sig(c),
            delta * 100.0,
            if regressed { "REGRESSION" } else { "ok" }
        );
    }
    for cc in &cur.cells {
        let known = base
            .cells
            .iter()
            .any(|b| b.mode == cc.mode && b.shards == cc.shards && b.batch == cc.batch);
        if !known {
            println!(
                "| {} | {} | {} | — | {} | — | new (no baseline) |",
                cc.mode,
                cc.shards,
                cc.batch,
                format_sig(metric(&cur, cc))
            );
        }
    }
    println!();

    if missing > 0 {
        eprintln!(
            "compare_reports: {missing} baseline cell(s) absent from the current report — \
             the gate cannot vouch for them; align the sweep configurations"
        );
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "compare_reports: {regressions} cell(s) regressed more than {:.0}% on {metric_name}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("compare_reports: all {} cells within tolerance", base.cells.len());
}
